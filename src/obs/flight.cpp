#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace swraman::obs::flight {

namespace detail {
std::atomic<bool> g_flight_enabled{false};
}  // namespace detail

namespace {

// One ring slot. Payload fields are relaxed atomics and the slot seq is a
// seqlock: odd while the owner thread is writing, bumped to even when the
// record is stable. Readers that observe a torn write (odd or changed seq)
// skip the slot — no lock is ever taken on the record path.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ordinal{0};  // per-thread record number, from 1
  std::atomic<std::uint64_t> t_ns{0};
  std::atomic<std::uint64_t> tag[3]{};    // kTagBytes packed little-endian
  std::atomic<double> a{0.0};
  std::atomic<double> b{0.0};
};

struct Ring {
  std::uint32_t tid = 0;
  std::atomic<std::uint64_t> head{0};  // records ever written
  Slot slots[kRingSlots];
};

struct GlobalState {
  std::mutex mutex;                  // ring list + dump bookkeeping
  std::vector<Ring*> rings;          // leaked (dead threads keep their tail)
  std::string dump_dir_override;
  bool dump_dir_overridden = false;
  std::uint64_t dump_count = 0;
  std::string last_dump_path;
  std::map<std::string, double> counter_baseline;
};

GlobalState& state() {
  static GlobalState* s = new GlobalState;
  return *s;
}

Ring& ring() {
  thread_local Ring* r = [] {
    auto* fresh = new Ring;
    fresh->tid = thread_id();
    GlobalState& s = state();
    const std::scoped_lock lock(s.mutex);
    s.rings.push_back(fresh);
    return fresh;
  }();
  return *r;
}

void pack_tag(const char* tag, std::uint64_t out[3]) {
  char buf[kTagBytes] = {};
  std::snprintf(buf, sizeof(buf), "%s", tag == nullptr ? "" : tag);
  for (std::size_t i = 0; i < 3; ++i) out[i] = 0;
  for (std::size_t i = 0; i < kTagBytes; ++i) {
    out[i / 8] |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(buf[i]))
                  << (8 * (i % 8));
  }
}

std::string unpack_tag(const std::uint64_t in[3]) {
  std::string out;
  for (std::size_t i = 0; i < kTagBytes; ++i) {
    const char c =
        static_cast<char>((in[i / 8] >> (8 * (i % 8))) & 0xffu);
    if (c == '\0') break;
    out += c;
  }
  return out;
}

std::string sanitize(const std::string& reason) {
  std::string out;
  for (const char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("unknown") : out;
}

bool env_truthy(const char* v) {
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "off" && s != "false" && s != "OFF" && s != "no";
}

struct EnvInit {
  EnvInit() {
    state();
    if (env_truthy(std::getenv("SWRAMAN_FLIGHT"))) set_enabled(true);
  }
};
const EnvInit g_env_init;

}  // namespace

void set_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

void record(const char* tag, double a, double b) {
  if (!enabled()) return;
  Ring& r = ring();
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  Slot& s = r.slots[h % kRingSlots];
  const std::uint64_t q = s.seq.load(std::memory_order_relaxed);
  s.seq.store(q + 1, std::memory_order_relaxed);  // odd: write in flight
  std::atomic_thread_fence(std::memory_order_release);
  std::uint64_t packed[3];
  pack_tag(tag, packed);
  s.ordinal.store(h + 1, std::memory_order_relaxed);
  s.t_ns.store(now_ns(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < 3; ++i) {
    s.tag[i].store(packed[i], std::memory_order_relaxed);
  }
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.seq.store(q + 2, std::memory_order_release);  // even: stable
  r.head.store(h + 1, std::memory_order_release);
}

std::vector<Event> snapshot() {
  GlobalState& g = state();
  std::vector<Ring*> rings;
  {
    const std::scoped_lock lock(g.mutex);
    rings = g.rings;
  }
  std::vector<Event> out;
  for (Ring* r : rings) {
    for (Slot& s : r->slots) {
      const std::uint64_t q1 = s.seq.load(std::memory_order_acquire);
      if ((q1 & 1) != 0) continue;  // torn: writer mid-flight
      Event e;
      e.seq = s.ordinal.load(std::memory_order_relaxed);
      e.t_ns = s.t_ns.load(std::memory_order_relaxed);
      std::uint64_t packed[3];
      for (std::size_t i = 0; i < 3; ++i) {
        packed[i] = s.tag[i].load(std::memory_order_relaxed);
      }
      e.a = s.a.load(std::memory_order_relaxed);
      e.b = s.b.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t q2 = s.seq.load(std::memory_order_relaxed);
      if (q1 != q2 || e.seq == 0) continue;  // torn or never written
      e.tid = r->tid;
      e.tag = unpack_tag(packed);
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.seq < b.seq;
  });
  return out;
}

std::string dump(const std::string& reason) {
  if (!enabled()) return {};
  const std::vector<Event> events = snapshot();
  const auto counters = Registry::instance().counter_values();

  GlobalState& g = state();
  const std::scoped_lock lock(g.mutex);
  std::string dir;
  if (g.dump_dir_overridden) {
    dir = g.dump_dir_override;
  } else if (const char* v = std::getenv("SWRAMAN_FLIGHT_DIR")) {
    dir = v;
  }
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "flight-" + sanitize(reason) + ".json";

  std::string out;
  out.reserve(events.size() * 96 + 512);
  out += "{\n  \"schema\": \"swraman-flight-v1\",\n";
  out += "  \"generated\": \"" + json_escape(log::timestamp_utc_now()) +
         "\",\n";
  out += "  \"reason\": \"" + json_escape(reason) + "\",\n";
  out += "  \"dump_seq\": " + std::to_string(g.dump_count + 1) + ",\n";
  out += "  \"events\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    out += "    {\"t_ns\": " + std::to_string(e.t_ns) +
           ", \"tid\": " + std::to_string(e.tid) +
           ", \"seq\": " + std::to_string(e.seq) + ", \"tag\": \"" +
           json_escape(e.tag) + "\", \"a\": " + json_num(e.a) +
           ", \"b\": " + json_num(e.b) + '}';
    out += (i + 1 < events.size()) ? ",\n" : "\n";
  }
  out += "  ],\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ", ";
    first = false;
    const auto prev = g.counter_baseline.find(name);
    const double delta =
        v - (prev == g.counter_baseline.end() ? 0.0 : prev->second);
    out += '"' + json_escape(name) + "\": {\"value\": " + json_num(v) +
           ", \"delta\": " + json_num(delta) + '}';
  }
  out += "}\n}\n";

  if (!write_text_file(path, out)) return {};
  g.counter_baseline = counters;
  ++g.dump_count;
  g.last_dump_path = path;
  return path;
}

void set_dump_dir(const std::string& dir) {
  GlobalState& g = state();
  const std::scoped_lock lock(g.mutex);
  g.dump_dir_override = dir;
  g.dump_dir_overridden = true;
}

std::uint64_t dump_count() {
  GlobalState& g = state();
  const std::scoped_lock lock(g.mutex);
  return g.dump_count;
}

std::string last_dump_path() {
  GlobalState& g = state();
  const std::scoped_lock lock(g.mutex);
  return g.last_dump_path;
}

void reset_for_testing() {
  GlobalState& g = state();
  const std::scoped_lock lock(g.mutex);
  for (Ring* r : g.rings) {
    r->head.store(0, std::memory_order_relaxed);
    for (Slot& s : r->slots) {
      s.ordinal.store(0, std::memory_order_relaxed);
      s.seq.store(0, std::memory_order_relaxed);
    }
  }
  g.dump_count = 0;
  g.last_dump_path.clear();
  g.counter_baseline.clear();
}

}  // namespace swraman::obs::flight
