#pragma once

#include <cstddef>
#include <vector>

#include "grid/batch.hpp"

// Algorithm 1 of the paper: greedy distribution of integration batches over
// MPI processes. Each batch goes to the process currently holding the fewest
// integration points, balancing point counts (the integration cost unit)
// rather than batch counts.

namespace swraman::grid {

struct BatchAssignment {
  // owner[i] = process that owns batch i.
  std::vector<std::size_t> owner;
  // points_per_process[p] = total integration points assigned to p.
  std::vector<std::size_t> points_per_process;

  [[nodiscard]] std::size_t max_points() const;
  [[nodiscard]] std::size_t min_points() const;
  // max/mean point ratio; 1.0 is perfect balance.
  [[nodiscard]] double imbalance() const;
};

// Core of Algorithm 1, exposed for any work-unit type: assigns each
// weighted item (in order) to the worker currently carrying the least
// weight. `initial_load` pre-loads the workers (e.g. work they already
// own); ties break on the lowest worker id. Returns owner[i] per item.
// Also used by the fault-tolerance layer to redistribute a dead CPE's
// share over the survivors.
std::vector<std::size_t> assign_greedy(
    const std::vector<std::size_t>& weights, std::size_t n_workers,
    const std::vector<std::size_t>* initial_load = nullptr);

// Paper Algorithm 1. Deterministic: ties broken by lowest process id.
BatchAssignment balance_batches(const std::vector<Batch>& batches,
                                std::size_t n_processes);

// Baselines for the ablation bench.
BatchAssignment round_robin_batches(const std::vector<Batch>& batches,
                                    std::size_t n_processes);
BatchAssignment random_batches(const std::vector<Batch>& batches,
                               std::size_t n_processes, unsigned seed);

}  // namespace swraman::grid
