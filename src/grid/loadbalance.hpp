#pragma once

#include <cstddef>
#include <vector>

#include "grid/batch.hpp"

// Algorithm 1 of the paper: greedy distribution of integration batches over
// MPI processes. Each batch goes to the process currently holding the fewest
// integration points, balancing point counts (the integration cost unit)
// rather than batch counts.

namespace swraman::grid {

struct BatchAssignment {
  // owner[i] = process that owns batch i.
  std::vector<std::size_t> owner;
  // points_per_process[p] = total integration points assigned to p.
  std::vector<std::size_t> points_per_process;

  [[nodiscard]] std::size_t max_points() const;
  [[nodiscard]] std::size_t min_points() const;
  // max/mean point ratio; 1.0 is perfect balance.
  [[nodiscard]] double imbalance() const;
};

// Paper Algorithm 1. Deterministic: ties broken by lowest process id.
BatchAssignment balance_batches(const std::vector<Batch>& batches,
                                std::size_t n_processes);

// Baselines for the ablation bench.
BatchAssignment round_robin_batches(const std::vector<Batch>& batches,
                                    std::size_t n_processes);
BatchAssignment random_batches(const std::vector<Batch>& batches,
                               std::size_t n_processes, unsigned seed);

}  // namespace swraman::grid
