#include "grid/ylm.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::grid {

void real_ylm(const Vec3& u, int lmax, std::vector<double>& out,
              YlmWorkspace& ws) {
  SWRAMAN_REQUIRE(lmax >= 0, "real_ylm: lmax >= 0");
  out.assign(n_lm(lmax), 0.0);

  const double r = u.norm();
  double c = 1.0;  // cos(theta)
  double s = 0.0;  // sin(theta)
  double cphi = 1.0;
  double sphi = 0.0;
  if (r > 0.0) {
    c = u.z / r;
    const double rho = std::hypot(u.x, u.y);
    s = rho / r;
    if (rho > 0.0) {
      cphi = u.x / rho;
      sphi = u.y / rho;
    }
  }

  // Fully normalized associated Legendre Q_l^m (no Condon-Shortley phase):
  //   Y_l0 = Q_l0, Y_l(+-m) = sqrt(2) Q_lm {cos,sin}(m phi).
  // Recurrences are stable upward in l for fixed m.
  const int nl = lmax + 1;
  std::vector<double>& q = ws.q;
  q.assign(static_cast<std::size_t>(nl * nl), 0.0);
  const auto qi = [nl](int l, int m) {
    return static_cast<std::size_t>(l * nl + m);
  };

  q[qi(0, 0)] = std::sqrt(1.0 / kFourPi);
  for (int m = 1; m <= lmax; ++m) {
    q[qi(m, m)] = std::sqrt((2.0 * m + 1.0) / (2.0 * m)) * s * q[qi(m - 1, m - 1)];
  }
  for (int m = 0; m < lmax; ++m) {
    q[qi(m + 1, m)] = std::sqrt(2.0 * m + 3.0) * c * q[qi(m, m)];
  }
  for (int m = 0; m <= lmax; ++m) {
    for (int l = m + 2; l <= lmax; ++l) {
      const double a =
          std::sqrt((4.0 * l * l - 1.0) / (static_cast<double>(l) * l - m * m));
      const double b = std::sqrt(
          (static_cast<double>(l - 1) * (l - 1) - m * m) /
          (4.0 * static_cast<double>(l - 1) * (l - 1) - 1.0));
      q[qi(l, m)] = a * (c * q[qi(l - 1, m)] - b * q[qi(l - 2, m)]);
    }
  }

  // Azimuthal factors cos(m phi), sin(m phi) by the angle-addition recurrence.
  std::vector<double>& cm = ws.cm;
  std::vector<double>& sm = ws.sm;
  cm.assign(static_cast<std::size_t>(lmax) + 1, 1.0);
  sm.assign(static_cast<std::size_t>(lmax) + 1, 0.0);
  for (int m = 1; m <= lmax; ++m) {
    cm[m] = cm[m - 1] * cphi - sm[m - 1] * sphi;
    sm[m] = sm[m - 1] * cphi + cm[m - 1] * sphi;
  }

  const double sqrt2 = std::sqrt(2.0);
  for (int l = 0; l <= lmax; ++l) {
    out[lm_index(l, 0)] = q[qi(l, 0)];
    for (int m = 1; m <= l; ++m) {
      const double qlm = q[qi(l, m)];
      out[lm_index(l, m)] = sqrt2 * qlm * cm[m];
      out[lm_index(l, -m)] = sqrt2 * qlm * sm[m];
    }
  }
}

void real_ylm(const Vec3& u, int lmax, std::vector<double>& out) {
  YlmWorkspace ws;
  real_ylm(u, lmax, out, ws);
}

std::vector<double> real_ylm(const Vec3& u, int lmax) {
  std::vector<double> out;
  real_ylm(u, lmax, out);
  return out;
}

}  // namespace swraman::grid
