#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

// Angular integration grids on the unit sphere. Two families:
//
//  * Lebedev grids (octahedral symmetry, the grids FHI-aims uses; Delley,
//    J. Comput. Chem. 17, 1152 (1996)): tabulated generator sets for the
//    6/14/26/38/50-point rules, exact for spherical harmonics up to the
//    design order.
//
//  * Gauss-product grids (Gauss-Legendre in cos(theta) x uniform phi):
//    constructively exact to any requested order; used above the tabulated
//    Lebedev range. (Deviation from the paper noted in DESIGN.md: identical
//    exactness guarantees, slightly more points per order.)
//
// Weights sum to 4*pi, i.e. integral_S2 f dOmega ~= sum_i w_i f(u_i).

namespace swraman::grid {

struct AngularGrid {
  std::vector<Vec3> points;      // unit vectors
  std::vector<double> weights;   // sum to 4*pi
  int design_order = 0;          // exact for Y_lm with l <= design_order
};

// Available tabulated Lebedev point counts in ascending order.
const std::vector<std::size_t>& lebedev_sizes();

// Tabulated Lebedev rule by point count (6, 14, 26, 38, 50). Throws for
// unsupported counts.
AngularGrid lebedev_grid(std::size_t n_points);

// Gauss-product rule exact for spherical harmonics up to `order`.
AngularGrid product_grid(int order);

// Smallest available rule exact up to `order`: Lebedev when a tabulated rule
// suffices, Gauss-product beyond.
AngularGrid angular_grid_for_order(int order);

}  // namespace swraman::grid
