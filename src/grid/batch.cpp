#include "grid/batch.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace swraman::grid {

namespace {

Vec3 center_of_mass(const std::vector<Vec3>& points,
                    const std::vector<std::size_t>& ids) {
  Vec3 c;
  for (std::size_t id : ids) c += points[id];
  return c * (1.0 / static_cast<double>(ids.size()));
}

}  // namespace

Vec3 principal_axis(const std::vector<Vec3>& points,
                    const std::vector<std::size_t>& ids) {
  SWRAMAN_REQUIRE(!ids.empty(), "principal_axis: empty point set");
  const Vec3 com = center_of_mass(points, ids);

  // 3x3 covariance.
  double c[3][3] = {};
  for (std::size_t id : ids) {
    const Vec3 d = points[id] - com;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) c[i][j] += d[i] * d[j];
  }

  // Power iteration — the dominant eigenvector is the cut-plane normal.
  Vec3 v{1.0, 0.577, 0.317};  // arbitrary, unlikely to be orthogonal
  for (int iter = 0; iter < 50; ++iter) {
    Vec3 w{c[0][0] * v.x + c[0][1] * v.y + c[0][2] * v.z,
           c[1][0] * v.x + c[1][1] * v.y + c[1][2] * v.z,
           c[2][0] * v.x + c[2][1] * v.y + c[2][2] * v.z};
    const double n = w.norm();
    if (n < 1e-30) return {0.0, 0.0, 1.0};  // degenerate cloud: any normal
    w *= 1.0 / n;
    if ((w - v).norm() < 1e-12) return w;
    v = w;
  }
  return v;
}

std::vector<Batch> make_batches(const MolecularGrid& grid,
                                const BatchingOptions& options) {
  SWRAMAN_REQUIRE(options.target_batch_size >= 1, "batch: target size >= 1");
  SWRAMAN_TRACE_SPAN(span, "grid.make_batches");
  std::vector<Batch> batches;
  if (grid.points.empty()) return batches;
  if (span.active()) {
    span.attr("points", static_cast<double>(grid.points.size()));
    span.attr("target_batch_size",
              static_cast<double>(options.target_batch_size));
  }

  const std::size_t limit = static_cast<std::size_t>(
      std::ceil(options.slack * static_cast<double>(options.target_batch_size)));

  std::vector<std::vector<std::size_t>> work;
  work.emplace_back(grid.points.size());
  std::iota(work.back().begin(), work.back().end(), 0);

  while (!work.empty()) {
    std::vector<std::size_t> ids = std::move(work.back());
    work.pop_back();

    if (ids.size() <= limit) {
      Batch b;
      b.center = center_of_mass(grid.points, ids);
      b.point_ids = std::move(ids);
      batches.push_back(std::move(b));
      continue;
    }

    // Cut plane: through the center of mass, normal along the principal
    // axis; median split yields two even halves (paper Sec. 3.1).
    const Vec3 normal = principal_axis(grid.points, ids);
    std::vector<double> proj(ids.size());
    for (std::size_t k = 0; k < ids.size(); ++k) {
      proj[k] = dot(grid.points[ids[k]], normal);
    }
    std::vector<std::size_t> order(ids.size());
    std::iota(order.begin(), order.end(), 0);
    const std::size_t half = ids.size() / 2;
    std::nth_element(order.begin(), order.begin() + static_cast<long>(half),
                     order.end(), [&proj](std::size_t a, std::size_t b) {
                       return proj[a] < proj[b];
                     });

    std::vector<std::size_t> lo;
    std::vector<std::size_t> hi;
    lo.reserve(half);
    hi.reserve(ids.size() - half);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      (k < half ? lo : hi).push_back(ids[order[k]]);
    }
    work.push_back(std::move(lo));
    work.push_back(std::move(hi));
  }
  if (span.active()) span.attr("batches", static_cast<double>(batches.size()));
  return batches;
}

std::vector<BatchSlice> slice_batches(const std::vector<Batch>& batches,
                                      std::size_t n_slices) {
  std::vector<BatchSlice> slices;
  if (batches.empty() || n_slices == 0) return slices;
  std::size_t remaining = 0;
  for (const Batch& b : batches) remaining += b.size();

  BatchSlice cur;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    cur.points += batches[i].size();
    cur.last = i + 1;
    const std::size_t slices_left = n_slices - slices.size();
    // Close the slice once it carries its share of what was left when it
    // opened — unless it is the last allowed slice, which takes the rest.
    const std::size_t target =
        (remaining + slices_left - 1) / std::max<std::size_t>(slices_left, 1);
    if (slices_left > 1 && cur.points >= target && i + 1 < batches.size()) {
      remaining -= cur.points;
      slices.push_back(cur);
      cur = BatchSlice{i + 1, i + 1, 0};
    }
  }
  if (cur.last > cur.first) slices.push_back(cur);
  return slices;
}

}  // namespace swraman::grid
