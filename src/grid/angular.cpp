#include "grid/angular.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/quadrature.hpp"

namespace swraman::grid {

namespace {

void add_point(AngularGrid& g, double x, double y, double z, double w) {
  g.points.push_back({x, y, z});
  g.weights.push_back(w * kFourPi);  // tabulated weights are normalized to 1
}

// Octahedral generator classes (Lebedev's a1/a2/a3/b/c sets).
void gen_a1(AngularGrid& g, double w) {
  for (int s : {-1, 1}) {
    add_point(g, s, 0, 0, w);
    add_point(g, 0, s, 0, w);
    add_point(g, 0, 0, s, w);
  }
}

void gen_a2(AngularGrid& g, double w) {
  const double c = 1.0 / std::sqrt(2.0);
  for (int s1 : {-1, 1})
    for (int s2 : {-1, 1}) {
      add_point(g, s1 * c, s2 * c, 0, w);
      add_point(g, s1 * c, 0, s2 * c, w);
      add_point(g, 0, s1 * c, s2 * c, w);
    }
}

void gen_a3(AngularGrid& g, double w) {
  const double c = 1.0 / std::sqrt(3.0);
  for (int s1 : {-1, 1})
    for (int s2 : {-1, 1})
      for (int s3 : {-1, 1}) add_point(g, s1 * c, s2 * c, s3 * c, w);
}

// 24 points (+-l, +-l, +-m) with m = sqrt(1 - 2 l^2), all coordinate slots.
void gen_b(AngularGrid& g, double l, double w) {
  const double m = std::sqrt(1.0 - 2.0 * l * l);
  for (int s1 : {-1, 1})
    for (int s2 : {-1, 1})
      for (int s3 : {-1, 1}) {
        add_point(g, s1 * l, s2 * l, s3 * m, w);
        add_point(g, s1 * l, s2 * m, s3 * l, w);
        add_point(g, s1 * m, s2 * l, s3 * l, w);
      }
}

// 24 points (+-p, +-q, 0) with q = sqrt(1 - p^2), all orderings.
void gen_c(AngularGrid& g, double p, double w) {
  const double q = std::sqrt(1.0 - p * p);
  for (int s1 : {-1, 1})
    for (int s2 : {-1, 1}) {
      add_point(g, s1 * p, s2 * q, 0, w);
      add_point(g, s1 * q, s2 * p, 0, w);
      add_point(g, s1 * p, 0, s2 * q, w);
      add_point(g, s1 * q, 0, s2 * p, w);
      add_point(g, 0, s1 * p, s2 * q, w);
      add_point(g, 0, s1 * q, s2 * p, w);
    }
}

}  // namespace

const std::vector<std::size_t>& lebedev_sizes() {
  static const std::vector<std::size_t> sizes{6, 14, 26, 38, 50};
  return sizes;
}

AngularGrid lebedev_grid(std::size_t n_points) {
  AngularGrid g;
  switch (n_points) {
    case 6:
      g.design_order = 3;
      gen_a1(g, 1.0 / 6.0);
      break;
    case 14:
      g.design_order = 5;
      gen_a1(g, 1.0 / 15.0);
      gen_a3(g, 3.0 / 40.0);
      break;
    case 26:
      g.design_order = 7;
      gen_a1(g, 1.0 / 21.0);
      gen_a2(g, 4.0 / 105.0);
      gen_a3(g, 9.0 / 280.0);
      break;
    case 38:
      g.design_order = 9;
      gen_a1(g, 1.0 / 105.0);
      gen_a3(g, 9.0 / 280.0);
      gen_c(g, 0.4597008433809831, 1.0 / 35.0);
      break;
    case 50:
      g.design_order = 11;
      gen_a1(g, 4.0 / 315.0);
      gen_a2(g, 64.0 / 2835.0);
      gen_a3(g, 27.0 / 1280.0);
      gen_b(g, 1.0 / std::sqrt(11.0), 14641.0 / 725760.0);
      break;
    default:
      SWRAMAN_REQUIRE(false, "lebedev_grid: unsupported point count");
  }
  SWRAMAN_ASSERT(g.points.size() == n_points, "lebedev generator count");
  return g;
}

AngularGrid product_grid(int order) {
  SWRAMAN_REQUIRE(order >= 0, "product_grid: order >= 0");
  AngularGrid g;
  g.design_order = order;
  const std::size_t n_theta = static_cast<std::size_t>(order / 2 + 1);
  const std::size_t n_phi = static_cast<std::size_t>(order + 1);
  const Quadrature1D gl = gauss_legendre(n_theta);
  const double wphi = kTwoPi / static_cast<double>(n_phi);
  for (std::size_t i = 0; i < n_theta; ++i) {
    const double ct = gl.nodes[i];
    const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
    for (std::size_t j = 0; j < n_phi; ++j) {
      const double phi = wphi * static_cast<double>(j);
      g.points.push_back({st * std::cos(phi), st * std::sin(phi), ct});
      g.weights.push_back(gl.weights[i] * wphi);
    }
  }
  return g;
}

AngularGrid angular_grid_for_order(int order) {
  SWRAMAN_REQUIRE(order >= 0, "angular_grid_for_order: order >= 0");
  struct Entry {
    int order;
    std::size_t n;
  };
  static const Entry lebedev[] = {{3, 6}, {5, 14}, {7, 26}, {9, 38}, {11, 50}};
  for (const Entry& e : lebedev) {
    if (order <= e.order) return lebedev_grid(e.n);
  }
  return product_grid(order);
}

}  // namespace swraman::grid
