#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/vec3.hpp"

// Atom-centered all-electron integration grids (paper Sec. 3.1, Fig. 3):
// per-atom radial shells (Becke-mapped Gauss-Chebyshev nodes) carrying
// pruned angular (Lebedev / Gauss-product) grids, glued into a single
// molecular grid by Becke's partition of unity so that
//
//   integral f(r) d3r ~= sum_i w_i f(r_i).

namespace swraman::grid {

struct AtomSite {
  int z = 1;
  Vec3 pos;
};

// Grid quality presets mirroring FHI-aims' "light" / "tight" / "really
// tight" defaults (coarser absolute sizes; relative structure preserved).
enum class GridLevel { Light, Tight, ReallyTight };

// Partition-of-unity scheme stitching the atomic grids together. Becke's
// pairwise cell functions are the classical choice; Hirshfeld (stockholder)
// weights from free-atom densities are what FHI-aims actually uses and cost
// O(N) per point instead of O(N^2).
enum class PartitionScheme { Becke, Hirshfeld };

struct GridSettings {
  GridLevel level = GridLevel::Light;
  // Overrides; <= 0 means "use the level default".
  int n_radial = 0;        // radial shells per atom
  int angular_order = 0;   // max angular design order (outer shells)
  bool prune = true;       // reduce angular order near the nucleus
  PartitionScheme partition = PartitionScheme::Becke;
  // Free-atom density evaluator for the Hirshfeld scheme: density(z, r).
  // Defaults to a built-in Slater-type model when unset; the SCF engine
  // wires in the real species densities.
  std::function<double(int, double)> free_atom_density;
};

// One radial integration shell of one atom: a contiguous block of points in
// the flat arrays sharing the same radius, carrying a complete angular
// quadrature (weights sum to 4*pi). The multipole Poisson solver projects
// densities onto Y_lm shell by shell.
struct ShellInfo {
  int atom = 0;
  double radius = 0.0;
  double w_radial = 0.0;         // radial weight including r^2
  int angular_order = 0;         // design order of the shell's angular rule
  std::size_t first_point = 0;
  std::size_t n_points = 0;
};

struct MolecularGrid {
  std::vector<Vec3> points;
  std::vector<double> weights;         // radial x angular x partition
  std::vector<double> partition;       // Becke weight alone (per point)
  std::vector<double> angular_weight;  // angular weight alone (per point)
  std::vector<int> owner_atom;         // atom whose shell generated the point
  std::vector<ShellInfo> shells;
  std::vector<AtomSite> atoms;

  [[nodiscard]] std::size_t size() const { return points.size(); }
};

// Number of radial shells / angular order implied by settings for element z.
int radial_count(const GridSettings& s, int z);
int angular_order(const GridSettings& s);

// Becke partition weight of atom `a` at point r (normalized over atoms),
// with atomic-size adjustments from Bragg-Slater radii.
double becke_weight(const std::vector<AtomSite>& atoms, std::size_t a,
                    const Vec3& r);

// Hirshfeld (stockholder) weight: w_a = n_a^free / sum_b n_b^free using the
// supplied free-atom density model.
double hirshfeld_weight(
    const std::vector<AtomSite>& atoms, std::size_t a, const Vec3& r,
    const std::function<double(int, double)>& free_atom_density);

// Builds the full molecular integration grid.
MolecularGrid build_molecular_grid(const std::vector<AtomSite>& atoms,
                                   const GridSettings& settings);

}  // namespace swraman::grid
