#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"
#include "grid/atom_grid.hpp"

// Grid-adapted cut-plane batching (paper Sec. 3.1, Fig. 3; Havu et al.,
// J. Comput. Phys. 228, 8367): the molecular grid is recursively bisected by
// planes through the batch's center of mass, oriented along the principal
// axis of the point distribution, until every batch holds roughly the target
// number of points (the paper uses 100-300).

namespace swraman::grid {

struct Batch {
  std::vector<std::size_t> point_ids;  // indices into MolecularGrid arrays
  Vec3 center;                         // center of mass of the batch points

  [[nodiscard]] std::size_t size() const { return point_ids.size(); }
};

struct BatchingOptions {
  std::size_t target_batch_size = 200;
  // Bisection stops when a set has at most ceil(1.5 * target) points.
  double slack = 1.5;
};

// Splits the grid points into spatially compact batches. Every point appears
// in exactly one batch.
std::vector<Batch> make_batches(const MolecularGrid& grid,
                                const BatchingOptions& options);

// Principal axis (largest-variance direction) of a point set; used as the
// cut-plane normal. Exposed for testing.
Vec3 principal_axis(const std::vector<Vec3>& points,
                    const std::vector<std::size_t>& ids);

// A contiguous run of batches [first, last), used as the work granularity
// of communication/compute pipelining: a consumer processes one slice of
// batches while collectives started for earlier slices are in flight.
struct BatchSlice {
  std::size_t first = 0;   // index of the first batch in the run
  std::size_t last = 0;    // one past the last batch
  std::size_t points = 0;  // total grid points in the run
};

// Partitions the batch list into at most n_slices contiguous runs balanced
// by point count (greedy: a slice closes once it reaches its share of the
// remaining points). Every batch lands in exactly one slice; fewer than
// n_slices are returned when there are fewer (non-empty) batches.
std::vector<BatchSlice> slice_batches(const std::vector<Batch>& batches,
                                      std::size_t n_slices);

}  // namespace swraman::grid
