#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"
#include "grid/atom_grid.hpp"

// Grid-adapted cut-plane batching (paper Sec. 3.1, Fig. 3; Havu et al.,
// J. Comput. Phys. 228, 8367): the molecular grid is recursively bisected by
// planes through the batch's center of mass, oriented along the principal
// axis of the point distribution, until every batch holds roughly the target
// number of points (the paper uses 100-300).

namespace swraman::grid {

struct Batch {
  std::vector<std::size_t> point_ids;  // indices into MolecularGrid arrays
  Vec3 center;                         // center of mass of the batch points

  [[nodiscard]] std::size_t size() const { return point_ids.size(); }
};

struct BatchingOptions {
  std::size_t target_batch_size = 200;
  // Bisection stops when a set has at most ceil(1.5 * target) points.
  double slack = 1.5;
};

// Splits the grid points into spatially compact batches. Every point appears
// in exactly one batch.
std::vector<Batch> make_batches(const MolecularGrid& grid,
                                const BatchingOptions& options);

// Principal axis (largest-variance direction) of a point set; used as the
// cut-plane normal. Exposed for testing.
Vec3 principal_axis(const std::vector<Vec3>& points,
                    const std::vector<std::size_t>& ids);

}  // namespace swraman::grid
