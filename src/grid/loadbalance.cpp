#include "grid/loadbalance.hpp"

#include <algorithm>
#include <random>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace swraman::grid {

std::size_t BatchAssignment::max_points() const {
  return points_per_process.empty()
             ? 0
             : *std::max_element(points_per_process.begin(),
                                 points_per_process.end());
}

std::size_t BatchAssignment::min_points() const {
  return points_per_process.empty()
             ? 0
             : *std::min_element(points_per_process.begin(),
                                 points_per_process.end());
}

double BatchAssignment::imbalance() const {
  if (points_per_process.empty()) return 1.0;
  std::size_t total = 0;
  for (std::size_t p : points_per_process) total += p;
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(points_per_process.size());
  return static_cast<double>(max_points()) / mean;
}

std::vector<std::size_t> assign_greedy(
    const std::vector<std::size_t>& weights, std::size_t n_workers,
    const std::vector<std::size_t>* initial_load) {
  SWRAMAN_REQUIRE(n_workers >= 1, "assign_greedy: n_workers >= 1");
  SWRAMAN_REQUIRE(initial_load == nullptr ||
                      initial_load->size() == n_workers,
                  "assign_greedy: initial_load size mismatch");
  std::vector<std::size_t> load =
      initial_load ? *initial_load : std::vector<std::size_t>(n_workers, 0);
  std::vector<std::size_t> owner(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    // "the new batch is always sent to the process with the minimal number
    // of points" (paper Algorithm 1).
    std::size_t jmin = 0;
    for (std::size_t j = 1; j < n_workers; ++j) {
      if (load[j] < load[jmin]) jmin = j;
    }
    owner[i] = jmin;
    load[jmin] += weights[i];
  }
  return owner;
}

BatchAssignment balance_batches(const std::vector<Batch>& batches,
                                std::size_t n_processes) {
  SWRAMAN_REQUIRE(n_processes >= 1, "balance_batches: n_processes >= 1");
  std::vector<std::size_t> weights(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    weights[i] = batches[i].size();
  }
  SWRAMAN_TRACE_SPAN(span, "grid.balance_batches");
  BatchAssignment a;
  a.owner = assign_greedy(weights, n_processes);
  a.points_per_process.assign(n_processes, 0);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    a.points_per_process[a.owner[i]] += weights[i];
  }
  if (span.active()) {
    span.attr("batches", static_cast<double>(batches.size()));
    span.attr("processes", static_cast<double>(n_processes));
    span.attr("imbalance", a.imbalance());
    obs::gauge_set("grid.imbalance", a.imbalance());
  }
  return a;
}

BatchAssignment round_robin_batches(const std::vector<Batch>& batches,
                                    std::size_t n_processes) {
  SWRAMAN_REQUIRE(n_processes >= 1, "round_robin_batches: n_processes >= 1");
  BatchAssignment a;
  a.owner.resize(batches.size());
  a.points_per_process.assign(n_processes, 0);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const std::size_t p = i % n_processes;
    a.owner[i] = p;
    a.points_per_process[p] += batches[i].size();
  }
  return a;
}

BatchAssignment random_batches(const std::vector<Batch>& batches,
                               std::size_t n_processes, unsigned seed) {
  SWRAMAN_REQUIRE(n_processes >= 1, "random_batches: n_processes >= 1");
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> dist(0, n_processes - 1);
  BatchAssignment a;
  a.owner.resize(batches.size());
  a.points_per_process.assign(n_processes, 0);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const std::size_t p = dist(rng);
    a.owner[i] = p;
    a.points_per_process[p] += batches[i].size();
  }
  return a;
}

}  // namespace swraman::grid
