#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

// Real spherical harmonics Y_lm on the unit sphere, with the standard
// quantum-chemistry ordering and normalization:
//
//   integral Y_lm Y_l'm' dOmega = delta_ll' delta_mm'
//
// Real harmonics are indexed by (l, m) with m = -l..l; m < 0 are the
// sin(|m| phi) combinations, m > 0 the cos(m phi) ones. The flat index is
// lm_index(l, m) = l*(l+1) + m, covering 0..(lmax+1)^2 - 1.

namespace swraman::grid {

constexpr std::size_t lm_index(int l, int m) {
  return static_cast<std::size_t>(l * (l + 1) + m);
}

constexpr std::size_t n_lm(int lmax) {
  return static_cast<std::size_t>((lmax + 1) * (lmax + 1));
}

// Scratch buffers for real_ylm: hold one per thread and the evaluation
// never heap-allocates after the first call (the hot Hartree / FMM
// per-point paths depend on this).
struct YlmWorkspace {
  std::vector<double> q;   // associated-Legendre table
  std::vector<double> cm;  // cos(m phi)
  std::vector<double> sm;  // sin(m phi)
};

// Evaluates all real Y_lm for l = 0..lmax at unit direction u into out
// (resized to n_lm(lmax)). u does not need to be normalized; the zero vector
// maps to the north pole.
void real_ylm(const Vec3& u, int lmax, std::vector<double>& out,
              YlmWorkspace& ws);

// Convenience overload with internal scratch (allocates per call).
void real_ylm(const Vec3& u, int lmax, std::vector<double>& out);

// Convenience wrapper returning the vector.
std::vector<double> real_ylm(const Vec3& u, int lmax);

}  // namespace swraman::grid
