#include "grid/atom_grid.hpp"

#include <cmath>

#include "common/elements.hpp"
#include "common/error.hpp"
#include "common/quadrature.hpp"
#include "grid/angular.hpp"

namespace swraman::grid {

namespace {

// Becke's cell smoothing: f(mu) = 1.5 mu - 0.5 mu^3, iterated three times.
double becke_step(double mu) {
  for (int k = 0; k < 3; ++k) mu = 1.5 * mu - 0.5 * mu * mu * mu;
  return 0.5 * (1.0 - mu);
}

// Atomic-size adjustment (Becke 1988, appendix): shifts the cell boundary
// towards the smaller atom. chi = R_a / R_b from Bragg-Slater radii.
double size_adjusted_mu(double mu, double chi) {
  const double u = (chi - 1.0) / (chi + 1.0);
  double a = u / (u * u - 1.0);
  if (a > 0.5) a = 0.5;
  if (a < -0.5) a = -0.5;
  return mu + a * (1.0 - mu * mu);
}

}  // namespace

int radial_count(const GridSettings& s, int z) {
  if (s.n_radial > 0) return s.n_radial;
  int base = 0;
  switch (s.level) {
    case GridLevel::Light:
      base = 30;
      break;
    case GridLevel::Tight:
      base = 45;
      break;
    case GridLevel::ReallyTight:
      base = 60;
      break;
  }
  // Heavier atoms need more shells to resolve core oscillations.
  if (z > 10) base += 10;
  if (z > 18) base += 10;
  if (z > 36) base += 10;
  return base;
}

int angular_order(const GridSettings& s) {
  if (s.angular_order > 0) return s.angular_order;
  switch (s.level) {
    case GridLevel::Light:
      return 11;
    case GridLevel::Tight:
      return 17;
    case GridLevel::ReallyTight:
      return 23;
  }
  return 11;
}

double becke_weight(const std::vector<AtomSite>& atoms, std::size_t a,
                    const Vec3& r) {
  SWRAMAN_REQUIRE(a < atoms.size(), "becke_weight: atom index");
  const std::size_t n = atoms.size();
  if (n == 1) return 1.0;

  double total = 0.0;
  double target = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double p = 1.0;
    const double ri = distance(r, atoms[i].pos);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double rj = distance(r, atoms[j].pos);
      const double rij = distance(atoms[i].pos, atoms[j].pos);
      double mu = (ri - rj) / rij;
      const double chi = element(atoms[i].z).bragg_radius_bohr /
                         element(atoms[j].z).bragg_radius_bohr;
      mu = size_adjusted_mu(mu, chi);
      p *= becke_step(mu);
    }
    total += p;
    if (i == a) target = p;
  }
  if (total <= 0.0) return 0.0;
  return target / total;
}

double hirshfeld_weight(
    const std::vector<AtomSite>& atoms, std::size_t a, const Vec3& r,
    const std::function<double(int, double)>& free_atom_density) {
  SWRAMAN_REQUIRE(a < atoms.size(), "hirshfeld_weight: atom index");
  if (atoms.size() == 1) return 1.0;
  double total = 0.0;
  double target = 0.0;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const double n =
        free_atom_density(atoms[i].z, distance(r, atoms[i].pos));
    total += n;
    if (i == a) target = n;
  }
  if (total <= 1e-300) {
    // Far from every atom: fall back to the nearest-atom cell.
    std::size_t nearest = 0;
    for (std::size_t i = 1; i < atoms.size(); ++i) {
      if (distance(r, atoms[i].pos) < distance(r, atoms[nearest].pos)) {
        nearest = i;
      }
    }
    return nearest == a ? 1.0 : 0.0;
  }
  return target / total;
}

namespace {

// Slater-type free-atom density model used when no tabulated densities are
// supplied: n(r) ~ Z exp(-2 r / r_bragg), adequate as a stockholder weight.
double model_free_density(int z, double r) {
  const double scale = element(z).bragg_radius_bohr;
  return static_cast<double>(z) * std::exp(-2.0 * r / scale);
}

}  // namespace

MolecularGrid build_molecular_grid(const std::vector<AtomSite>& atoms,
                                   const GridSettings& settings) {
  SWRAMAN_REQUIRE(!atoms.empty(), "build_molecular_grid: no atoms");
  const auto partition_weight = [&](std::size_t a, const Vec3& p) {
    if (settings.partition == PartitionScheme::Becke) {
      return becke_weight(atoms, a, p);
    }
    if (settings.free_atom_density) {
      return hirshfeld_weight(atoms, a, p, settings.free_atom_density);
    }
    return hirshfeld_weight(atoms, a, p, model_free_density);
  };
  MolecularGrid grid;
  grid.atoms = atoms;

  const int ang_order = angular_order(settings);
  const AngularGrid outer = angular_grid_for_order(ang_order);
  // Pruned angular grids: coarse near the nucleus where the integrand is
  // nearly spherical, full order outside.
  const AngularGrid inner = angular_grid_for_order(5);
  const AngularGrid mid = angular_grid_for_order(std::min(ang_order, 11));

  for (std::size_t a = 0; a < atoms.size(); ++a) {
    const AtomSite& atom = atoms[a];
    const double r_m = 0.5 * element(atom.z).bragg_radius_bohr +
                       0.35;  // Becke map scale, clipped away from zero
    const int n_rad = radial_count(settings, atom.z);
    const Quadrature1D rad =
        becke_radial(static_cast<std::size_t>(n_rad), r_m);

    // becke_radial returns descending radii; iterate ascending so the shell
    // list is ordered for the radial Poisson integrals.
    for (std::size_t ir = rad.nodes.size(); ir-- > 0;) {
      const double r = rad.nodes[ir];
      if (r > 12.0) continue;  // beyond any basis-function extent
      const AngularGrid* ang = &outer;
      if (settings.prune) {
        if (r < 0.15 * r_m) {
          ang = &inner;
        } else if (r < 0.6 * r_m) {
          ang = &mid;
        }
      }
      ShellInfo shell;
      shell.atom = static_cast<int>(a);
      shell.radius = r;
      shell.w_radial = rad.weights[ir];
      shell.angular_order = ang->design_order;
      shell.first_point = grid.points.size();
      shell.n_points = ang->points.size();
      for (std::size_t ia = 0; ia < ang->points.size(); ++ia) {
        const Vec3 p = atom.pos + r * ang->points[ia];
        // becke_radial weights already include r^2 and angular weights sum
        // to 4*pi, so their product integrates d3r; the Becke partition
        // weight stitches the atomic grids into one molecular rule. Shells
        // are kept complete (no per-point pruning) so angular projections
        // onto Y_lm stay exact.
        const double part = partition_weight(a, p);
        grid.points.push_back(p);
        grid.weights.push_back(rad.weights[ir] * ang->weights[ia] * part);
        grid.partition.push_back(part);
        grid.angular_weight.push_back(ang->weights[ia]);
        grid.owner_atom.push_back(static_cast<int>(a));
      }
      grid.shells.push_back(shell);
    }
  }
  return grid;
}

}  // namespace swraman::grid
