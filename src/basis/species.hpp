#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/radial_mesh.hpp"
#include "common/spline.hpp"

// Per-element basis data ("species" in FHI-aims parlance). A species holds
// radial basis functions tabulated on a logarithmic mesh, the free-atom
// density (superposition initial guess), and — for the pseudized variant —
// the local ionic pseudopotential. Three backends:
//
//   * NAO: numeric atom-centered orbitals from the self-consistent atomic
//     solver (the paper's all-electron basis),
//   * GTO: contracted-Gaussian radial functions (even-tempered fits plus
//     split-valence and polarization Gaussians), the "Gaussian code"
//     stand-in of Figs 11/16,
//   * pseudized NAO: valence-only orbitals + ionic pseudopotential, the
//     "Quantum ESPRESSO" stand-in of Fig 10.

namespace swraman::basis {

enum class Backend { Nao, Gto };

enum class Tier {
  Minimal,   // occupied atomic shells only
  Standard,  // minimal + one polarization shell (l_max + 1)
  Extended,  // standard + confined split-valence copies
};

struct RadialFn {
  int l = 0;
  int n = 0;              // shell label (principal qn or synthetic counter)
  double cutoff = 0.0;    // R(r) == 0 for r > cutoff
  IndexSpline shape;      // R(r) on the species mesh (spline in mesh index)
  std::string label;
};

struct Species {
  int z = 0;
  Backend backend = Backend::Nao;
  Tier tier = Tier::Standard;
  bool pseudized = false;
  double z_valence = 0.0;     // electrons contributed to the molecule
  double z_nuclear = 0.0;     // point charge used when not pseudized
  RadialMesh mesh;
  std::vector<RadialFn> fns;
  IndexSpline free_density;   // spherical free-atom (or valence) density
  double density_cutoff = 0.0;
  IndexSpline v_ion;          // pseudized: local ionic potential (incl. tail)
  bool has_v_ion = false;

  [[nodiscard]] int lmax() const;
  // Total basis functions including m degeneracy: sum over fns of (2l+1).
  [[nodiscard]] std::size_t n_basis_functions() const;
  // Radial value at distance r (0 beyond cutoff).
  [[nodiscard]] double radial_value(const RadialFn& fn, double r) const;
  // Free-atom density at r.
  [[nodiscard]] double density_value(double r) const;
  // Ionic potential at r (requires has_v_ion).
  [[nodiscard]] double v_ion_value(double r) const;
};

struct SpeciesOptions {
  Backend backend = Backend::Nao;
  Tier tier = Tier::Standard;
  bool pseudized = false;
};

// Builds (or fetches from the process-wide cache) the species for element z.
const Species& species(int z, const SpeciesOptions& options = {});

// Uncached builder, exposed for tests.
Species build_species(int z, const SpeciesOptions& options);

// Least-squares even-tempered Gaussian fit r^l sum_k c_k exp(-a_k r^2) of a
// radial function tabulated on `mesh`. Exposed for tests.
std::vector<double> fit_gaussians(const RadialMesh& mesh,
                                  const std::vector<double>& radial, int l,
                                  const std::vector<double>& exponents);

}  // namespace swraman::basis
