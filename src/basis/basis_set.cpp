#include "basis/basis_set.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "grid/ylm.hpp"

namespace swraman::basis {

BasisSet::BasisSet(std::vector<grid::AtomSite> atoms,
                   const SpeciesOptions& options)
    : atoms_(std::move(atoms)), options_(options) {
  SWRAMAN_REQUIRE(!atoms_.empty(), "BasisSet: no atoms");
  species_.reserve(atoms_.size());
  for (const grid::AtomSite& atom : atoms_) {
    species_.push_back(&species(atom.z, options_));
  }
  for (std::size_t a = 0; a < atoms_.size(); ++a) {
    const Species& sp = *species_[a];
    for (std::size_t f = 0; f < sp.fns.size(); ++f) {
      const int l = sp.fns[f].l;
      for (int m = -l; m <= l; ++m) {
        fns_.push_back({static_cast<int>(a), static_cast<int>(f), l, m});
      }
    }
  }
}

const Species& BasisSet::species_of(std::size_t atom) const {
  SWRAMAN_REQUIRE(atom < species_.size(), "species_of: atom index");
  return *species_[atom];
}

double BasisSet::n_electrons() const {
  double n = 0.0;
  for (const Species* sp : species_) n += sp->z_valence;
  return n;
}

double BasisSet::max_cutoff() const {
  double c = 0.0;
  for (const Species* sp : species_) {
    for (const RadialFn& fn : sp->fns) c = std::max(c, fn.cutoff);
  }
  return c;
}

std::vector<std::size_t> BasisSet::local_functions(const Vec3& center,
                                                   double radius) const {
  std::vector<std::size_t> ids;
  for (std::size_t k = 0; k < fns_.size(); ++k) {
    const Fn& fn = fns_[k];
    const Species& sp = *species_[static_cast<std::size_t>(fn.atom)];
    const double cutoff = sp.fns[static_cast<std::size_t>(fn.species_fn)].cutoff;
    const double d =
        distance(center, atoms_[static_cast<std::size_t>(fn.atom)].pos);
    if (d <= cutoff + radius) ids.push_back(k);
  }
  return ids;
}

void BasisSet::evaluate(const std::vector<std::size_t>& fn_ids,
                        const Vec3* points, std::size_t n_points,
                        linalg::Matrix& values,
                        linalg::Matrix* laplacians) const {
  values = linalg::Matrix(fn_ids.size(), n_points);
  if (laplacians != nullptr) {
    *laplacians = linalg::Matrix(fn_ids.size(), n_points);
  }
  if (fn_ids.empty() || n_points == 0) return;

  // Group selected functions by atom so Y_lm is computed once per
  // (point, atom) pair.
  std::vector<std::vector<std::size_t>> by_atom(atoms_.size());
  int lmax = 0;
  for (std::size_t k = 0; k < fn_ids.size(); ++k) {
    const Fn& fn = fns_[fn_ids[k]];
    by_atom[static_cast<std::size_t>(fn.atom)].push_back(k);
    lmax = std::max(lmax, fn.l);
  }

  std::vector<double> ylm;
  for (std::size_t p = 0; p < n_points; ++p) {
    const Vec3& x = points[p];
    for (std::size_t a = 0; a < atoms_.size(); ++a) {
      if (by_atom[a].empty()) continue;
      const Species& sp = *species_[a];
      const Vec3 d = x - atoms_[a].pos;
      double r = d.norm();
      // Points essentially on the nucleus: clamp into the mesh.
      r = std::max(r, sp.mesh.r_min());
      grid::real_ylm(d, lmax, ylm);

      const double t = sp.mesh.fractional_index(r);
      const double alpha = sp.mesh.alpha();
      for (std::size_t k : by_atom[a]) {
        const Fn& fn = fns_[fn_ids[k]];
        const RadialFn& rf = sp.fns[static_cast<std::size_t>(fn.species_fn)];
        if (r >= rf.cutoff) continue;  // matrices start zeroed
        const double y = ylm[grid::lm_index(fn.l, fn.m)];
        const double rv = rf.shape.value(t);
        values(k, p) = rv * y;
        if (laplacians != nullptr) {
          // Chain rule from index space: R' = R_t/(alpha r),
          // R'' = (R_tt/alpha^2 - R_t/alpha)/r^2.
          const double rt = rf.shape.derivative(t);
          const double rtt = rf.shape.second_derivative(t);
          const double r1 = rt / (alpha * r);
          const double r2 = (rtt / (alpha * alpha) - rt / alpha) / (r * r);
          const double ll = static_cast<double>(fn.l) * (fn.l + 1);
          (*laplacians)(k, p) = (r2 + 2.0 * r1 / r - ll * rv / (r * r)) * y;
        }
      }
    }
  }
}

double BasisSet::free_atom_density(const Vec3& point) const {
  double n = 0.0;
  for (std::size_t a = 0; a < atoms_.size(); ++a) {
    const double r = distance(point, atoms_[a].pos);
    n += species_[a]->density_value(r);
  }
  return n;
}

}  // namespace swraman::basis
