#include "basis/species.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

#include "atomic/atom_solver.hpp"
#include "atomic/pseudo.hpp"
#include "common/constants.hpp"
#include "common/elements.hpp"
#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace swraman::basis {

namespace {

// Cutoff radius: last radius at which |R| exceeds the drop tolerance.
double find_cutoff(const RadialMesh& mesh, const std::vector<double>& radial,
                   double tol = 1e-6) {
  double cutoff = mesh.r(2);
  double rmax_val = 0.0;
  for (double v : radial) rmax_val = std::max(rmax_val, std::abs(v));
  for (std::size_t i = 0; i < radial.size(); ++i) {
    if (std::abs(radial[i]) > tol * rmax_val) cutoff = mesh.r(i);
  }
  return std::min(cutoff * 1.05, mesh.r_max());
}

RadialFn make_fn(const RadialMesh& mesh, std::vector<double> radial, int l,
                 int n, std::string label) {
  RadialFn fn;
  fn.l = l;
  fn.n = n;
  fn.label = std::move(label);
  fn.cutoff = find_cutoff(mesh, radial);
  // Zero the tail beyond the cutoff so the spline itself vanishes there.
  for (std::size_t i = 0; i < radial.size(); ++i) {
    if (mesh.r(i) > fn.cutoff) radial[i] = 0.0;
  }
  fn.shape = IndexSpline(radial);
  return fn;
}

std::vector<double> orbital_radial(const RadialMesh& mesh,
                                   const std::vector<double>& u) {
  std::vector<double> radial(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) radial[i] = u[i] / mesh.r(i);
  return radial;
}

// Normalizes integral R^2 r^2 dr = 1 on the mesh.
void normalize_radial(const RadialMesh& mesh, std::vector<double>& radial) {
  std::vector<double> f(radial.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = radial[i] * radial[i] * mesh.r(i) * mesh.r(i);
  }
  const double norm = std::sqrt(mesh.integrate(f));
  SWRAMAN_REQUIRE(norm > 0.0, "normalize_radial: zero norm");
  for (double& v : radial) v /= norm;
}

// Adds a polarization function: lowest state of angular momentum l_pol in
// the atomic potential plus a strong confinement well.
void add_polarization(Species& sp, const std::vector<double>& potential,
                      int l_pol, int n_label) {
  const RadialMesh& mesh = sp.mesh;
  std::vector<double> v = potential;
  const double onset = 3.0;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const double r = mesh.r(i);
    if (r > onset) {
      const double t = r - onset;
      v[i] += 1.5 * t * t * t * t;
    }
  }
  const std::vector<atomic::RadialState> states =
      atomic::solve_radial(mesh, v, l_pol, 1);
  std::vector<double> radial = orbital_radial(mesh, states[0].u);
  normalize_radial(mesh, radial);
  sp.fns.push_back(make_fn(mesh, std::move(radial), l_pol, n_label,
                           "pol-l" + std::to_string(l_pol)));
}

Species build_nao(int z, const SpeciesOptions& options) {
  Species sp;
  sp.z = z;
  sp.backend = Backend::Nao;
  sp.tier = options.tier;
  sp.pseudized = options.pseudized;

  atomic::AtomSolverOptions aopt;
  aopt.confinement_strength = 0.5;
  aopt.confinement_onset = 8.0;
  const atomic::AtomicSolution sol = atomic::solve_atom(z, aopt);
  sp.mesh = sol.mesh;

  int lmax_occ = 0;
  if (!options.pseudized) {
    sp.z_valence = static_cast<double>(z);
    sp.z_nuclear = static_cast<double>(z);
    for (const atomic::AtomicOrbital& orb : sol.orbitals) {
      std::vector<double> radial = orbital_radial(sp.mesh, orb.u);
      normalize_radial(sp.mesh, radial);
      sp.fns.push_back(make_fn(sp.mesh, std::move(radial), orb.l, orb.n,
                               element(z).symbol + std::to_string(orb.n) +
                                   "spdf"[orb.l % 4]));
      lmax_occ = std::max(lmax_occ, orb.l);
    }
    std::vector<double> dens = sol.density;
    sp.density_cutoff = find_cutoff(sp.mesh, dens, 1e-9);
    sp.free_density = IndexSpline(dens);
  } else {
    const atomic::PseudoAtom ps = atomic::pseudize(sol);
    sp.z_valence = ps.z_valence;
    sp.z_nuclear = ps.z_valence;
    for (const atomic::AtomicOrbital& orb : ps.valence) {
      std::vector<double> radial = orbital_radial(sp.mesh, orb.u);
      normalize_radial(sp.mesh, radial);
      sp.fns.push_back(make_fn(sp.mesh, std::move(radial), orb.l, orb.n,
                               element(z).symbol + std::to_string(orb.n) +
                                   "spdf"[orb.l % 4] + std::string("-ps")));
      lmax_occ = std::max(lmax_occ, orb.l);
    }
    std::vector<double> dens = ps.valence_density;
    sp.density_cutoff = find_cutoff(sp.mesh, dens, 1e-9);
    sp.free_density = IndexSpline(dens);
    sp.v_ion = IndexSpline(ps.v_ion);
    sp.has_v_ion = true;
  }

  // The effective potential the extra functions are generated in: the
  // all-electron KS potential, or the screened pseudopotential.
  std::vector<double> vgen = sol.potential;
  if (options.pseudized) {
    // Screened pseudo potential: v_ion + V_H[n_v] + v_xc[n_v] equals the AE
    // KS potential outside the core by construction; regenerate from parts.
    const atomic::PseudoAtom ps = atomic::pseudize(sol);
    const std::vector<double> vh =
        atomic::radial_hartree(sp.mesh, ps.valence_density);
    vgen.resize(sp.mesh.size());
    for (std::size_t i = 0; i < sp.mesh.size(); ++i) {
      vgen[i] = ps.v_ion[i] + vh[i] +
                xc::evaluate(xc::Functional::LdaPw92, ps.valence_density[i]).v;
    }
  }

  if (options.tier != Tier::Minimal) {
    add_polarization(sp, vgen, lmax_occ + 1, 90);
  }
  if (options.tier == Tier::Extended) {
    // Confined split-valence copies of the outermost s and p channels.
    for (int l = 0; l <= std::min(lmax_occ, 1); ++l) {
      add_polarization(sp, vgen, l, 91);
    }
  }
  return sp;
}

// Even-tempered exponent ladder covering the core-to-tail range of element z.
std::vector<double> even_tempered_exponents(int z, int l) {
  const double a_min = (l == 0) ? 0.06 : 0.10;
  const double a_max = 2.5 * static_cast<double>(z) * z + 2.0;
  std::vector<double> a;
  for (double x = a_min; x < a_max; x *= 3.2) a.push_back(x);
  a.push_back(a_max);
  return a;
}

Species build_gto(int z, const SpeciesOptions& options) {
  // Start from the NAO species and refit every radial shape onto
  // contracted Gaussians; then add split-valence and polarization
  // primitives in the 6-31G** spirit.
  SpeciesOptions nao_opt = options;
  nao_opt.backend = Backend::Nao;
  Species sp = build_nao(z, nao_opt);
  sp.backend = Backend::Gto;

  const RadialMesh& mesh = sp.mesh;
  std::vector<RadialFn> gto_fns;
  int pol_l = 0;
  for (const RadialFn& fn : sp.fns) pol_l = std::max(pol_l, fn.l);

  for (const RadialFn& fn : sp.fns) {
    // Tabulate the NAO shape, fit, re-tabulate the contracted Gaussian.
    std::vector<double> radial(mesh.size());
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      radial[i] = sp.radial_value(fn, mesh.r(i));
    }
    const std::vector<double> expo = even_tempered_exponents(z, fn.l);
    const std::vector<double> coef = fit_gaussians(mesh, radial, fn.l, expo);
    std::vector<double> fitted(mesh.size(), 0.0);
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      const double r = mesh.r(i);
      double s = 0.0;
      for (std::size_t k = 0; k < expo.size(); ++k) {
        s += coef[k] * std::exp(-expo[k] * r * r);
      }
      fitted[i] = s * std::pow(r, fn.l);
    }
    normalize_radial(mesh, fitted);
    gto_fns.push_back(
        make_fn(mesh, std::move(fitted), fn.l, fn.n, fn.label + "-gto"));

    // Split valence: one diffuse primitive per valence shell (l <= pol_l-1
    // heuristic keeps polarization shells un-split).
    const bool is_polarization = fn.label.rfind("pol", 0) == 0;
    const bool is_core =
        !sp.pseudized && !atomic::is_valence_shell(z, fn.n, fn.l);
    if (!is_polarization && !is_core) {
      const double a_diff = (fn.l == 0) ? 0.18 : 0.25;
      std::vector<double> diffuse(mesh.size());
      for (std::size_t i = 0; i < mesh.size(); ++i) {
        const double r = mesh.r(i);
        diffuse[i] = std::pow(r, fn.l) * std::exp(-a_diff * r * r);
      }
      normalize_radial(mesh, diffuse);
      gto_fns.push_back(make_fn(mesh, std::move(diffuse), fn.l, fn.n + 80,
                                fn.label + "-sv"));
    }
  }
  sp.fns = std::move(gto_fns);
  return sp;
}

}  // namespace

int Species::lmax() const {
  int l = 0;
  for (const RadialFn& fn : fns) l = std::max(l, fn.l);
  return l;
}

std::size_t Species::n_basis_functions() const {
  std::size_t n = 0;
  for (const RadialFn& fn : fns) n += static_cast<std::size_t>(2 * fn.l + 1);
  return n;
}

double Species::radial_value(const RadialFn& fn, double r) const {
  if (r >= fn.cutoff) return 0.0;
  return fn.shape.value(mesh.fractional_index(r));
}

double Species::density_value(double r) const {
  if (r >= density_cutoff) return 0.0;
  return std::max(0.0, free_density.value(mesh.fractional_index(r)));
}

double Species::v_ion_value(double r) const {
  SWRAMAN_REQUIRE(has_v_ion, "v_ion_value: species is not pseudized");
  if (r >= mesh.r_max()) return -z_valence / r;
  return v_ion.value(mesh.fractional_index(r));
}

std::vector<double> fit_gaussians(const RadialMesh& mesh,
                                  const std::vector<double>& radial, int l,
                                  const std::vector<double>& exponents) {
  SWRAMAN_REQUIRE(radial.size() == mesh.size(), "fit_gaussians: size");
  SWRAMAN_REQUIRE(!exponents.empty(), "fit_gaussians: no exponents");
  const std::size_t k = exponents.size();
  // Weighted linear least squares: weight r^2 dr (the norm metric).
  linalg::Matrix a(k, k);
  std::vector<double> b(k, 0.0);
  std::vector<double> g(k);
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const double r = mesh.r(i);
    const double w = r * r * mesh.weight(i);
    const double rl = std::pow(r, l);
    for (std::size_t p = 0; p < k; ++p) {
      g[p] = rl * std::exp(-exponents[p] * r * r);
    }
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t q = 0; q <= p; ++q) a(p, q) += w * g[p] * g[q];
      b[p] += w * g[p] * radial[i];
    }
  }
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t q = p + 1; q < k; ++q) a(p, q) = a(q, p);
  // Tikhonov regularization keeps near-collinear ladders solvable.
  for (std::size_t p = 0; p < k; ++p) a(p, p) += 1e-10 * (1.0 + a(p, p));
  return linalg::Lu(a).solve(b);
}

Species build_species(int z, const SpeciesOptions& options) {
  SWRAMAN_REQUIRE(z >= 1 && z <= 54, "build_species: Z in [1, 54]");
  SWRAMAN_REQUIRE(!(options.pseudized && options.backend == Backend::Gto),
                  "build_species: pseudized GTO backend not supported");
  if (options.backend == Backend::Gto) return build_gto(z, options);
  return build_nao(z, options);
}

const Species& species(int z, const SpeciesOptions& options) {
  using Key = std::tuple<int, int, int, bool>;
  static std::map<Key, Species> cache;
  static std::mutex mutex;
  const Key key{z, static_cast<int>(options.backend),
                static_cast<int>(options.tier), options.pseudized};
  const std::scoped_lock lock(mutex);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, build_species(z, options)).first;
  }
  return it->second;
}

}  // namespace swraman::basis
