#pragma once

#include <cstddef>
#include <vector>

#include "basis/species.hpp"
#include "common/vec3.hpp"
#include "grid/atom_grid.hpp"
#include "linalg/matrix.hpp"

// Molecular basis set: the union of atom-centered species functions
// chi_{I,nlm}(r) = R_{I,nl}(|r - R_I|) Y_lm(r - R_I), flattened into a
// global index. Evaluation is locality-aware: every radial function carries
// a hard cutoff, so only functions whose center lies within reach of a
// batch are touched (this is what keeps chains like H(C2H4)nH linear-ish
// in cost and is the sparsity the paper's batch integration exploits).

namespace swraman::basis {

class BasisSet {
 public:
  struct Fn {
    int atom = 0;       // atom index in the molecule
    int species_fn = 0; // index into Species::fns
    int l = 0;
    int m = 0;          // -l..l, ordering matches grid::lm_index
  };

  BasisSet(std::vector<grid::AtomSite> atoms, const SpeciesOptions& options);

  [[nodiscard]] std::size_t size() const { return fns_.size(); }
  [[nodiscard]] const std::vector<Fn>& functions() const { return fns_; }
  [[nodiscard]] const std::vector<grid::AtomSite>& atoms() const {
    return atoms_;
  }
  [[nodiscard]] const Species& species_of(std::size_t atom) const;
  [[nodiscard]] const SpeciesOptions& options() const { return options_; }

  // Electrons in the neutral molecule (valence-only when pseudized).
  [[nodiscard]] double n_electrons() const;

  // Largest radial cutoff over all functions.
  [[nodiscard]] double max_cutoff() const;

  // Indices of functions that can be nonzero within `radius` of `center`.
  [[nodiscard]] std::vector<std::size_t> local_functions(
      const Vec3& center, double radius) const;

  // Evaluates the selected functions at the given points:
  //   values(k, p) = chi_{fn_ids[k]}(points[p]).
  // If laplacians is non-null it receives nabla^2 chi in the same layout.
  void evaluate(const std::vector<std::size_t>& fn_ids, const Vec3* points,
                std::size_t n_points, linalg::Matrix& values,
                linalg::Matrix* laplacians) const;

  // Superposition-of-free-atoms density at a point (SCF initial guess).
  [[nodiscard]] double free_atom_density(const Vec3& point) const;

 private:
  std::vector<grid::AtomSite> atoms_;
  SpeciesOptions options_;
  std::vector<const Species*> species_;  // per atom
  std::vector<Fn> fns_;
};

}  // namespace swraman::basis
