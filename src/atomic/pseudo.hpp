#pragma once

#include <vector>

#include "atomic/atom_solver.hpp"

// Valence-only pseudization of a converged all-electron atom — the
// "Quantum ESPRESSO stand-in" used by the Fig. 10 benchmark (DESIGN.md S7).
// The all-electron valence orbitals are replaced by nodeless pseudo-orbitals
// (smooth r^{l+1} e^{b r^2} core continuation matched in value and
// logarithmic derivative at a core radius), and the self-consistent KS
// potential is unscreened by the pseudo-valence density to yield a local
// ionic pseudopotential that is finite at the origin.

namespace swraman::atomic {

struct PseudoAtom {
  int z = 0;                 // true nuclear charge (bookkeeping)
  double z_valence = 0.0;    // electrons kept in the valence
  RadialMesh mesh;
  std::vector<AtomicOrbital> valence;   // pseudized orbitals
  std::vector<double> valence_density;  // n_v(r)
  std::vector<double> v_ion;            // local ionic pseudopotential
};

struct PseudizeOptions {
  // Core radius as a multiple of the outermost-node radius (orbitals with
  // nodes) or of the density-peak radius (nodeless orbitals).
  double core_radius_scale = 1.1;
  xc::Functional functional = xc::Functional::LdaPw92;
};

PseudoAtom pseudize(const AtomicSolution& all_electron,
                    const PseudizeOptions& options = {});

// True if shell (n, l) belongs to the valence of element z (outermost s/p
// plus open d/f), matching valence_electron_count in common/elements.
bool is_valence_shell(int z, int n, int l);

}  // namespace swraman::atomic
