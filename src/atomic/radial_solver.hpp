#pragma once

#include <cstddef>
#include <vector>

#include "common/radial_mesh.hpp"

// Radial Schroedinger eigensolver on a logarithmic mesh. For a spherically
// symmetric potential V(r) and angular momentum l, solves
//
//   [-1/2 d2/dr2 + l(l+1)/(2 r^2) + V(r)] u(r) = E u(r),   u = r R(r),
//
// by the standard log-mesh transformation u = sqrt(r) v(x), r = r0 e^{a x},
// which yields a symmetric tridiagonal eigenproblem after scaling by the
// diagonal metric r^2. Eigenvalues come from the implicit QL algorithm;
// the few needed eigenvectors from shifted inverse iteration.

namespace swraman::atomic {

struct RadialState {
  int l = 0;
  int node_count = 0;        // radial nodes; principal n = node_count + l + 1
  double energy = 0.0;       // Hartree
  std::vector<double> u;     // u(r_i) = r R(r_i), normalized: integral u^2 dr = 1
};

// Returns the `n_states` lowest eigenstates for angular momentum l in the
// potential v (tabulated on mesh). States are ordered by energy.
std::vector<RadialState> solve_radial(const RadialMesh& mesh,
                                      const std::vector<double>& v, int l,
                                      std::size_t n_states);

}  // namespace swraman::atomic
