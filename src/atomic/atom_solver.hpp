#pragma once

#include <vector>

#include "atomic/radial_solver.hpp"
#include "common/elements.hpp"
#include "common/radial_mesh.hpp"
#include "xc/lda.hpp"

// Self-consistent spherical (spin-restricted) LDA solution of a free atom.
// This is the "species generator" of the all-electron NAO method: it
// produces (i) the occupied atomic orbitals that form the minimal basis,
// (ii) the free-atom density used for the superposition initial guess, and
// (iii) the self-consistent atomic potential used to generate confined or
// polarization basis functions.

namespace swraman::atomic {

struct AtomicOrbital {
  int n = 1;                 // principal quantum number
  int l = 0;
  double occ = 0.0;          // total occupation of the (n, l) shell
  double energy = 0.0;       // KS eigenvalue, Hartree
  std::vector<double> u;     // u(r) = r R(r) on the solver mesh
};

struct AtomicSolution {
  int z = 0;
  RadialMesh mesh;
  std::vector<AtomicOrbital> orbitals;   // occupied shells
  std::vector<double> density;           // n(r), spherically averaged
  std::vector<double> hartree;           // V_H[n](r)
  std::vector<double> potential;         // full KS potential -Z/r + V_H + v_xc
  double total_energy = 0.0;             // Hartree
  int scf_iterations = 0;
  bool converged = false;
};

struct AtomSolverOptions {
  xc::Functional functional = xc::Functional::LdaPw92;
  std::size_t mesh_points = 500;
  double mesh_rmax = 30.0;
  double mixing = 0.35;              // linear density mixing
  double energy_tol = 1e-8;          // Hartree
  int max_iterations = 200;
  // Optional smooth confinement potential added beyond r_onset (generates
  // localized NAO basis functions); 0 disables.
  double confinement_strength = 0.0;
  double confinement_onset = 8.0;    // Bohr
};

// Solves the neutral atom with nuclear charge z (ground-state configuration
// from common/elements).
AtomicSolution solve_atom(int z, const AtomSolverOptions& options = {});

// Radial Hartree potential of a spherical density n(r) (electrons /
// volume * 4 pi r^2 integrated): V_H(r) = q(<r)/r + integral_r^inf n 4 pi s ds.
std::vector<double> radial_hartree(const RadialMesh& mesh,
                                   const std::vector<double>& density);

}  // namespace swraman::atomic
