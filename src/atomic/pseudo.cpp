#include "atomic/pseudo.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::atomic {

bool is_valence_shell(int z, int n, int l) {
  const ElementData& e = element(z);
  int n_max_sp = 0;
  for (const Shell& sh : e.configuration) {
    if (sh.l <= 1 && sh.n > n_max_sp) n_max_sp = sh.n;
  }
  for (const Shell& sh : e.configuration) {
    if (sh.n != n || sh.l != l) continue;
    if (sh.l <= 1) return sh.n == n_max_sp;
    if (sh.l == 2) return sh.occ < 10.0;
    if (sh.l == 3) return sh.occ < 14.0;
  }
  return false;
}

namespace {

// Outermost node radius of u(r), or 0 when nodeless.
double outermost_node_radius(const RadialMesh& mesh,
                             const std::vector<double>& u) {
  double umax = 0.0;
  for (double v : u) umax = std::max(umax, std::abs(v));
  const double floor = 1e-6 * umax;
  double r_node = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (std::abs(u[i]) < floor) continue;
    if (prev != 0.0 && u[i] * prev < 0.0) r_node = mesh.r(i);
    prev = u[i];
  }
  return r_node;
}

double peak_radius(const RadialMesh& mesh, const std::vector<double>& u) {
  std::size_t imax = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (std::abs(u[i]) > std::abs(u[imax])) imax = i;
  }
  return mesh.r(imax);
}

}  // namespace

PseudoAtom pseudize(const AtomicSolution& ae, const PseudizeOptions& options) {
  PseudoAtom ps;
  ps.z = ae.z;
  ps.mesh = ae.mesh;
  const RadialMesh& mesh = ps.mesh;
  const std::size_t np = mesh.size();

  for (const AtomicOrbital& orb : ae.orbitals) {
    if (!is_valence_shell(ae.z, orb.n, orb.l)) continue;
    AtomicOrbital v = orb;

    // Core radius.
    const double r_node = outermost_node_radius(mesh, orb.u);
    const double rc = (r_node > 0.0)
                          ? options.core_radius_scale * r_node
                          : 0.55 * peak_radius(mesh, orb.u);

    // Index of first mesh point beyond rc.
    std::size_t ic = 0;
    while (ic + 1 < np && mesh.r(ic) < rc) ++ic;
    SWRAMAN_REQUIRE(ic > 2 && ic + 2 < np,
                    "pseudize: core radius outside mesh interior");

    // Match p(r) = A r^{l+1} exp(b r^2) to u and u' at r_c: the logarithmic
    // derivative fixes b, the value fixes A.
    const double r0 = mesh.r(ic);
    const double u0 = orb.u[ic];
    // Centered log-mesh derivative du/dr = (du/di) / (alpha r).
    const double du =
        (orb.u[ic + 1] - orb.u[ic - 1]) / 2.0 / (mesh.alpha() * r0);
    SWRAMAN_REQUIRE(std::abs(u0) > 1e-12, "pseudize: node at core radius");
    const double logder = du / u0;
    const double b =
        (logder - static_cast<double>(orb.l + 1) / r0) / (2.0 * r0);
    const double a = u0 / (std::pow(r0, orb.l + 1) * std::exp(b * r0 * r0));

    for (std::size_t i = 0; i < ic; ++i) {
      const double r = mesh.r(i);
      v.u[i] = a * std::pow(r, orb.l + 1) * std::exp(b * r * r);
    }
    // Renormalize (pseudization changes the core norm).
    std::vector<double> u2(np);
    for (std::size_t i = 0; i < np; ++i) u2[i] = v.u[i] * v.u[i];
    const double norm = std::sqrt(mesh.integrate(u2));
    for (double& x : v.u) x /= norm;

    ps.valence.push_back(std::move(v));
    ps.z_valence += orb.occ;
  }
  SWRAMAN_REQUIRE(!ps.valence.empty(), "pseudize: no valence shells found");

  // Pseudo-valence density.
  ps.valence_density.assign(np, 0.0);
  for (const AtomicOrbital& v : ps.valence) {
    for (std::size_t i = 0; i < np; ++i) {
      const double r = mesh.r(i);
      ps.valence_density[i] += v.occ * v.u[i] * v.u[i] / (kFourPi * r * r);
    }
  }

  // Unscreen: v_ion = V_KS - V_H[n_v] - v_xc[n_v]; then smooth the deep
  // core region with a parabola matched in value and slope at the smallest
  // valence core radius so the result is finite at the origin.
  const std::vector<double> vh = radial_hartree(mesh, ps.valence_density);
  ps.v_ion.resize(np);
  for (std::size_t i = 0; i < np; ++i) {
    ps.v_ion[i] = ae.potential[i] - vh[i] -
                  xc::evaluate(options.functional, ps.valence_density[i]).v;
  }
  // Smoothing radius: half the Bragg radius (well inside the valence).
  const double r_smooth = 0.3 * element(ae.z).bragg_radius_bohr;
  std::size_t is = 0;
  while (is + 1 < np && mesh.r(is) < r_smooth) ++is;
  if (is > 2 && is + 2 < np) {
    const double r0 = mesh.r(is);
    const double v0 = ps.v_ion[is];
    const double dv =
        (ps.v_ion[is + 1] - ps.v_ion[is - 1]) / 2.0 / (mesh.alpha() * r0);
    const double c2 = dv / (2.0 * r0);
    const double c0 = v0 - c2 * r0 * r0;
    for (std::size_t i = 0; i < is; ++i) {
      const double r = mesh.r(i);
      ps.v_ion[i] = c0 + c2 * r * r;
    }
  }
  return ps;
}

}  // namespace swraman::atomic
