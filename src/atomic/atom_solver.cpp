#include "atomic/atom_solver.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::atomic {

std::vector<double> radial_hartree(const RadialMesh& mesh,
                                   const std::vector<double>& density) {
  const std::size_t n = mesh.size();
  SWRAMAN_REQUIRE(density.size() == n, "radial_hartree: size mismatch");

  // Running integrals q(r) = integral_0^r n 4 pi s^2 ds and
  // p(r) = integral_r^inf n 4 pi s ds by cumulative trapezoid, plus the
  // analytic inner-sphere contribution below the first mesh point.
  std::vector<double> q(n, 0.0);
  std::vector<double> p(n, 0.0);
  q[0] = density[0] * kFourPi * mesh.r(0) * mesh.r(0) * mesh.r(0) / 3.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double dr = mesh.r(i) - mesh.r(i - 1);
    const double fi = density[i] * kFourPi * mesh.r(i) * mesh.r(i);
    const double fim = density[i - 1] * kFourPi * mesh.r(i - 1) * mesh.r(i - 1);
    q[i] = q[i - 1] + 0.5 * (fi + fim) * dr;
  }
  for (std::size_t i = n - 1; i-- > 0;) {
    const double dr = mesh.r(i + 1) - mesh.r(i);
    const double fi = density[i] * kFourPi * mesh.r(i);
    const double fip = density[i + 1] * kFourPi * mesh.r(i + 1);
    p[i] = p[i + 1] + 0.5 * (fi + fip) * dr;
  }

  std::vector<double> vh(n);
  for (std::size_t i = 0; i < n; ++i) {
    vh[i] = q[i] / mesh.r(i) + p[i];
  }
  return vh;
}

AtomicSolution solve_atom(int z, const AtomSolverOptions& options) {
  const ElementData& elem = element(z);
  AtomicSolution sol;
  sol.z = z;
  sol.mesh = RadialMesh(1e-6 / static_cast<double>(z), options.mesh_rmax,
                        options.mesh_points);
  const RadialMesh& mesh = sol.mesh;
  const std::size_t np = mesh.size();

  // Confinement tail (quartic onset) for basis localization.
  std::vector<double> v_conf(np, 0.0);
  if (options.confinement_strength > 0.0) {
    for (std::size_t i = 0; i < np; ++i) {
      const double r = mesh.r(i);
      if (r > options.confinement_onset) {
        const double t = (r - options.confinement_onset);
        v_conf[i] = options.confinement_strength * t * t * t * t;
      }
    }
  }

  // Group the configuration by l and record how many states per l we need.
  std::map<int, std::vector<Shell>> by_l;
  for (const Shell& sh : elem.configuration) by_l[sh.l].push_back(sh);
  for (auto& [l, shells] : by_l) {
    std::sort(shells.begin(), shells.end(),
              [](const Shell& a, const Shell& b) { return a.n < b.n; });
  }

  // Initial guess: Thomas-Fermi-like screened density ~ exponential with
  // nuclear-charge scale, normalized to z electrons.
  std::vector<double> density(np);
  {
    const double zeta = std::max(1.0, static_cast<double>(z) / 2.0);
    double norm = 0.0;
    for (std::size_t i = 0; i < np; ++i) {
      const double r = mesh.r(i);
      density[i] = std::exp(-2.0 * zeta * r / (1.0 + r));
      norm += density[i] * kFourPi * r * r * mesh.weight(i);
    }
    for (double& d : density) d *= static_cast<double>(z) / norm;
  }

  std::vector<double> v_nuc(np);
  for (std::size_t i = 0; i < np; ++i) v_nuc[i] = -static_cast<double>(z) / mesh.r(i);

  double e_prev = 0.0;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    sol.scf_iterations = iter;

    // Effective potential from the current density.
    std::vector<double> vh = radial_hartree(mesh, density);
    std::vector<double> veff(np);
    std::vector<double> vxc(np), exc(np);
    for (std::size_t i = 0; i < np; ++i) {
      const xc::XcPoint p = xc::evaluate(options.functional, density[i]);
      vxc[i] = p.v;
      exc[i] = p.eps;
      veff[i] = v_nuc[i] + vh[i] + vxc[i] + v_conf[i];
    }

    // Solve each l channel for as many states as the configuration needs.
    sol.orbitals.clear();
    double e_band = 0.0;
    std::vector<double> new_density(np, 0.0);
    for (const auto& [l, shells] : by_l) {
      const std::vector<RadialState> states =
          solve_radial(mesh, veff, l, shells.size());
      for (std::size_t k = 0; k < shells.size(); ++k) {
        AtomicOrbital orb;
        orb.n = shells[k].n;
        orb.l = l;
        orb.occ = shells[k].occ;
        orb.energy = states[k].energy;
        orb.u = states[k].u;
        e_band += orb.occ * orb.energy;
        for (std::size_t i = 0; i < np; ++i) {
          const double r = mesh.r(i);
          new_density[i] += orb.occ * orb.u[i] * orb.u[i] / (kFourPi * r * r);
        }
        sol.orbitals.push_back(std::move(orb));
      }
    }

    // Total energy: E = sum occ*eps - E_H - integral vxc n + E_xc
    // (double-counting corrections evaluated at the *input* density that
    // produced the eigenvalues).
    double e_h = 0.0, e_vxc = 0.0, e_xc = 0.0;
    for (std::size_t i = 0; i < np; ++i) {
      const double r = mesh.r(i);
      const double dvol = kFourPi * r * r * mesh.weight(i);
      e_h += 0.5 * vh[i] * density[i] * dvol;
      e_vxc += vxc[i] * density[i] * dvol;
      e_xc += exc[i] * density[i] * dvol;
    }
    sol.total_energy = e_band - e_h - e_vxc + e_xc;

    const double de = std::abs(sol.total_energy - e_prev);
    e_prev = sol.total_energy;

    // Linear density mixing.
    for (std::size_t i = 0; i < np; ++i) {
      density[i] = (1.0 - options.mixing) * density[i] +
                   options.mixing * new_density[i];
    }

    if (iter > 3 && de < options.energy_tol) {
      sol.converged = true;
      break;
    }
  }

  sol.density = density;
  sol.hartree = radial_hartree(mesh, density);
  sol.potential.resize(np);
  for (std::size_t i = 0; i < np; ++i) {
    sol.potential[i] = v_nuc[i] + sol.hartree[i] +
                       xc::evaluate(options.functional, density[i]).v;
  }
  return sol;
}

}  // namespace swraman::atomic
