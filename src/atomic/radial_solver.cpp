#include "atomic/radial_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

// Numerov shooting on the logarithmic mesh. The substitution
// u = sqrt(r) v(x), r = r0 e^{a x} turns the radial equation into
//
//   v''(x) = g(x) v(x),   g = 2 a^2 r^2 (V_eff - E) + a^2/4,
//
// with V_eff = V + l(l+1)/(2 r^2). Eigenvalues are found by bisection on
// the node count of the outward solution (Sturm oscillation theorem: the
// number of nodes in the classically allowed region equals the number of
// eigenvalues below E); eigenfunctions by gluing outward and inward
// integrations at the outermost classical turning point. This is far more
// robust than diagonalizing the discretized operator, whose ~1e15 dynamic
// range near the nucleus destroys absolute eigenvalue accuracy.

namespace swraman::atomic {

namespace {

struct Workspace {
  std::vector<double> g;       // Numerov coefficient at the trial energy
  std::vector<double> v_out;   // outward solution
  std::vector<double> v_in;    // inward solution
  std::vector<double> veff;    // V + centrifugal
};

// Fills w.g for energy e; returns the outermost classically allowed index.
std::size_t fill_g(const RadialMesh& mesh, const Workspace& w_const,
                   Workspace& w, double e) {
  (void)w_const;
  const std::size_t n = mesh.size();
  const double a = mesh.alpha();
  std::size_t turning = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = mesh.r(i);
    w.g[i] = 2.0 * a * a * r * r * (w.veff[i] - e) + 0.25 * a * a;
    if (w.veff[i] < e) turning = i;
  }
  return turning;
}

// Numerov outward integration up to index m inclusive; returns the node
// count in [0, m]. Renormalizes on overflow to keep values representable.
int integrate_outward(const RadialMesh& mesh, Workspace& w, int l,
                      std::size_t m) {
  const std::size_t n = mesh.size();
  SWRAMAN_ASSERT(m < n, "integrate_outward: match index");
  std::vector<double>& v = w.v_out;
  v.assign(n, 0.0);
  // Regular boundary: u ~ r^{l+1} -> v ~ r^{l+1/2}.
  v[0] = std::pow(mesh.r(0), l + 0.5);
  v[1] = std::pow(mesh.r(1), l + 0.5);

  int nodes = 0;
  const auto numerov_f = [&w](std::size_t i) { return 1.0 - w.g[i] / 12.0; };
  for (std::size_t i = 1; i < m; ++i) {
    const double num =
        (2.0 + 10.0 * w.g[i] / 12.0 * 1.0) * v[i] - numerov_f(i - 1) * v[i - 1];
    double denom = numerov_f(i + 1);
    if (std::abs(denom) < 1e-8) denom = (denom >= 0 ? 1e-8 : -1e-8);
    v[i + 1] = num / denom;
    if (v[i + 1] * v[i] < 0.0) ++nodes;
    const double mag = std::abs(v[i + 1]);
    if (mag > 1e100) {
      for (std::size_t k = 0; k <= i + 1; ++k) v[k] *= 1e-100;
    }
  }
  return nodes;
}

// Numerov inward integration from the decay onset down to index m.
void integrate_inward(const RadialMesh& mesh, Workspace& w, std::size_t m) {
  const std::size_t n = mesh.size();
  std::vector<double>& v = w.v_in;
  v.assign(n, 0.0);

  // Start where the forbidden region is still Numerov-stable (g < 4);
  // beyond that the state is exponentially negligible and left at zero.
  std::size_t start = n - 1;
  while (start > m + 2 && w.g[start] >= 4.0) --start;
  if (start <= m + 2) start = std::min(n - 1, m + 3);

  v[start] = 1e-30;
  if (start >= 1) v[start - 1] = 1e-30 * std::exp(std::sqrt(std::max(w.g[start], 0.0)));

  const auto numerov_f = [&w](std::size_t i) { return 1.0 - w.g[i] / 12.0; };
  for (std::size_t i = start - 1; i > m; --i) {
    const double num =
        (2.0 + 10.0 * w.g[i] / 12.0) * v[i] - numerov_f(i + 1) * v[i + 1];
    double denom = numerov_f(i - 1);
    if (std::abs(denom) < 1e-8) denom = (denom >= 0 ? 1e-8 : -1e-8);
    v[i - 1] = num / denom;
    const double mag = std::abs(v[i - 1]);
    if (mag > 1e100) {
      for (std::size_t k = i - 1; k <= start; ++k) v[k] *= 1e-100;
    }
  }
}

int count_nodes_of(const std::vector<double>& u) {
  double umax = 0.0;
  for (double x : u) umax = std::max(umax, std::abs(x));
  const double floor = 1e-7 * umax;
  int nodes = 0;
  double prev = 0.0;
  for (double x : u) {
    if (std::abs(x) < floor) continue;
    if (prev != 0.0 && x * prev < 0.0) ++nodes;
    prev = x;
  }
  return nodes;
}

}  // namespace

std::vector<RadialState> solve_radial(const RadialMesh& mesh,
                                      const std::vector<double>& v, int l,
                                      std::size_t n_states) {
  const std::size_t n = mesh.size();
  SWRAMAN_REQUIRE(v.size() == n, "solve_radial: potential size mismatch");
  SWRAMAN_REQUIRE(l >= 0, "solve_radial: l >= 0");
  SWRAMAN_REQUIRE(n_states >= 1 && n_states + 2 < n,
                  "solve_radial: state count out of range");

  Workspace w;
  w.g.resize(n);
  w.veff.resize(n);
  const double ll = 0.5 * static_cast<double>(l) * (l + 1);
  for (std::size_t i = 0; i < n; ++i) {
    w.veff[i] = v[i] + ll / (mesh.r(i) * mesh.r(i));
  }

  // Node count of the outward solution integrated through the allowed
  // region and the Numerov-stable part of the forbidden tail (g < 4). By
  // the Sturm oscillation theorem this counts the eigenvalues below e; the
  // divergent tail flips sign exactly at each eigenvalue, so the count
  // includes the crossing the bisection homes in on.
  const auto node_count = [&](double e) -> int {
    const std::size_t turning = fill_g(mesh, w, w, e);
    if (turning < 4) return 0;  // no allowed region: below the spectrum
    std::size_t stable = n - 1;
    while (stable > turning + 2 && w.g[stable] >= 4.0) --stable;
    return integrate_outward(mesh, w, l, std::min(stable, n - 2));
  };

  const double vmin =
      *std::min_element(w.veff.begin() + 1, w.veff.end());

  std::vector<RadialState> states;
  states.reserve(n_states);
  for (std::size_t k = 0; k < n_states; ++k) {
    // Bracket the k-th eigenvalue: N(elo) <= k < N(ehi).
    double elo = vmin - 1.0;
    double ehi = 1.0;
    int guard = 0;
    while (node_count(ehi) < static_cast<int>(k + 1)) {
      ehi = ehi * 2.0 + 10.0;
      SWRAMAN_REQUIRE(++guard < 60, "solve_radial: cannot bracket state");
    }

    // Bisection on the node-count step; converges to the eigenvalue.
    for (int iter = 0; iter < 200; ++iter) {
      const double emid = 0.5 * (elo + ehi);
      if (node_count(emid) >= static_cast<int>(k + 1)) {
        ehi = emid;
      } else {
        elo = emid;
      }
      if (ehi - elo < 1e-12 * (1.0 + std::abs(emid))) break;
    }
    const double e = 0.5 * (elo + ehi);

    // Eigenfunction: outward to the turning point, inward beyond, glued.
    const std::size_t turning = fill_g(mesh, w, w, e);
    const std::size_t m = std::max<std::size_t>(
        4, std::min(turning, n - 6));
    integrate_outward(mesh, w, l, m);
    integrate_inward(mesh, w, m);

    std::vector<double> vv(n, 0.0);
    for (std::size_t i = 0; i <= m; ++i) vv[i] = w.v_out[i];
    const double vm_out = w.v_out[m];
    const double vm_in = w.v_in[m] != 0.0 ? w.v_in[m]
                                          : (w.v_in[m + 1] != 0.0 ? w.v_in[m + 1]
                                                                  : 1.0);
    const double scale = (w.v_in[m] != 0.0 && vm_out != 0.0)
                             ? vm_out / vm_in
                             : 0.0;
    for (std::size_t i = m + 1; i < n; ++i) vv[i] = scale * w.v_in[i];

    RadialState st;
    st.l = l;
    st.energy = e;
    st.u.resize(n);
    for (std::size_t i = 0; i < n; ++i) st.u[i] = vv[i] * std::sqrt(mesh.r(i));

    // Normalize integral u^2 dr = 1.
    std::vector<double> u2(n);
    for (std::size_t i = 0; i < n; ++i) u2[i] = st.u[i] * st.u[i];
    const double norm = std::sqrt(mesh.integrate(u2));
    SWRAMAN_REQUIRE(norm > 0.0, "solve_radial: zero-norm state");
    // Sign convention: positive at the first significant rise.
    double sign = 1.0;
    double umax = 0.0;
    for (double x : st.u) umax = std::max(umax, std::abs(x));
    for (double x : st.u) {
      if (std::abs(x) > 0.1 * umax) {
        sign = x > 0.0 ? 1.0 : -1.0;
        break;
      }
    }
    for (double& x : st.u) x *= sign / norm;
    st.node_count = count_nodes_of(st.u);
    states.push_back(std::move(st));
  }
  return states;
}

}  // namespace swraman::atomic
