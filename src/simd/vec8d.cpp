#include "simd/vec8d.hpp"

namespace swraman::simd {

void axpy(const double* a, const double* x, double* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const Vec8d va = Vec8d::load(a + i);
    const Vec8d vx = Vec8d::load(x + i);
    const Vec8d vy = Vec8d::load(y + i);
    vmad(va, vx, vy).store(y + i);
  }
  for (; i < n; ++i) y[i] += a[i] * x[i];
}

double dot(const double* a, const double* b, std::size_t n) {
  Vec8d acc(0.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc = vmad(Vec8d::load(a + i), Vec8d::load(b + i), acc);
  }
  double s = hsum(acc);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void poly3_eval(const double* s0, const double* s1, const double* s2,
                const double* s3, double t, double* out, std::size_t n) {
  const Vec8d vt(t);
  const Vec8d vt2(t * t);
  const Vec8d vt3(t * t * t);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    // d = s0 + s1*t; d = s2*t^2 + d; d = s3*t^3 + d (three vmads, Fig 7).
    Vec8d d = vmad(Vec8d::load(s1 + i), vt, Vec8d::load(s0 + i));
    d = vmad(Vec8d::load(s2 + i), vt2, d);
    d = vmad(Vec8d::load(s3 + i), vt3, d);
    d.store(out + i);
  }
  for (; i < n; ++i) {
    out[i] = s0[i] + t * (s1[i] + t * (s2[i] + t * s3[i]));
  }
}

}  // namespace swraman::simd
