#pragma once

#include <array>
#include <cstddef>

// Portable 512-bit SIMD vector: 8 packed doubles, modeled on the SW26010Pro
// CPE vector unit (the paper's "simd_vmad" in Fig 7). On commodity hardware
// the element-wise loops compile to the native vector ISA; the type exists so
// kernels can be written in explicit 8-lane form, matching the structure of
// the Sunway implementation, and so the cost model can count vector ops.

namespace swraman::simd {

inline constexpr std::size_t kLanes = 8;

struct alignas(64) Vec8d {
  std::array<double, kLanes> v{};

  Vec8d() = default;
  explicit Vec8d(double s) { v.fill(s); }

  static Vec8d load(const double* p) {
    Vec8d r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }

  // Loads min(n, 8) elements, zero-filling the rest (masked tail load).
  static Vec8d load_partial(const double* p, std::size_t n) {
    Vec8d r;
    const std::size_t m = n < kLanes ? n : kLanes;
    for (std::size_t i = 0; i < m; ++i) r.v[i] = p[i];
    return r;
  }

  void store(double* p) const {
    for (std::size_t i = 0; i < kLanes; ++i) p[i] = v[i];
  }

  void store_partial(double* p, std::size_t n) const {
    const std::size_t m = n < kLanes ? n : kLanes;
    for (std::size_t i = 0; i < m; ++i) p[i] = v[i];
  }

  double& operator[](std::size_t i) { return v[i]; }
  double operator[](std::size_t i) const { return v[i]; }
};

inline Vec8d operator+(Vec8d a, const Vec8d& b) {
  for (std::size_t i = 0; i < kLanes; ++i) a.v[i] += b.v[i];
  return a;
}
inline Vec8d operator-(Vec8d a, const Vec8d& b) {
  for (std::size_t i = 0; i < kLanes; ++i) a.v[i] -= b.v[i];
  return a;
}
inline Vec8d operator*(Vec8d a, const Vec8d& b) {
  for (std::size_t i = 0; i < kLanes; ++i) a.v[i] *= b.v[i];
  return a;
}
inline Vec8d operator*(Vec8d a, double s) {
  for (std::size_t i = 0; i < kLanes; ++i) a.v[i] *= s;
  return a;
}

// Fused multiply-add d = a*b + c — the "simd_vmad" primitive of the paper.
inline Vec8d vmad(const Vec8d& a, const Vec8d& b, const Vec8d& c) {
  Vec8d d;
  for (std::size_t i = 0; i < kLanes; ++i) d.v[i] = a.v[i] * b.v[i] + c.v[i];
  return d;
}

inline double hsum(const Vec8d& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < kLanes; ++i) s += a.v[i];
  return s;
}

// Vectorized y[i] += a[i]*x[i] over n elements with tail handling.
void axpy(const double* a, const double* x, double* y, std::size_t n);

// Vectorized dot product.
double dot(const double* a, const double* b, std::size_t n);

// Vectorized cubic polynomial evaluation over structure-of-arrays
// coefficients: out[i] = s0[i] + s1[i]*t + s2[i]*t^2 + s3[i]*t^3.
// This is the inner loop of the paper's CSI kernel (Algorithm 2, Fig 7).
void poly3_eval(const double* s0, const double* s1, const double* s2,
                const double* s3, double t, double* out, std::size_t n);

}  // namespace swraman::simd
