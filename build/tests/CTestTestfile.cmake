# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_simd[1]_include.cmake")
include("/root/repo/build/tests/test_xc[1]_include.cmake")
include("/root/repo/build/tests/test_scf[1]_include.cmake")
include("/root/repo/build/tests/test_dfpt[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_sunway[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_raman[1]_include.cmake")
include("/root/repo/build/tests/test_hartree[1]_include.cmake")
include("/root/repo/build/tests/test_basis[1]_include.cmake")
include("/root/repo/build/tests/test_atomic[1]_include.cmake")
