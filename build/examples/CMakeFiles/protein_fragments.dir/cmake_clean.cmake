file(REMOVE_RECURSE
  "CMakeFiles/protein_fragments.dir/protein_fragments.cpp.o"
  "CMakeFiles/protein_fragments.dir/protein_fragments.cpp.o.d"
  "protein_fragments"
  "protein_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
