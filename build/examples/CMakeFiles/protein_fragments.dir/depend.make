# Empty dependencies file for protein_fragments.
# This may be replaced when dependencies are built.
