# Empty dependencies file for raman_water.
# This may be replaced when dependencies are built.
