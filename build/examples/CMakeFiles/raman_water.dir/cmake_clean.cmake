file(REMOVE_RECURSE
  "CMakeFiles/raman_water.dir/raman_water.cpp.o"
  "CMakeFiles/raman_water.dir/raman_water.cpp.o.d"
  "raman_water"
  "raman_water.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raman_water.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
