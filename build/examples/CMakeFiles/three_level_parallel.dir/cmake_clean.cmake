file(REMOVE_RECURSE
  "CMakeFiles/three_level_parallel.dir/three_level_parallel.cpp.o"
  "CMakeFiles/three_level_parallel.dir/three_level_parallel.cpp.o.d"
  "three_level_parallel"
  "three_level_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_level_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
