# Empty compiler generated dependencies file for three_level_parallel.
# This may be replaced when dependencies are built.
