file(REMOVE_RECURSE
  "CMakeFiles/swraman_cli.dir/swraman_cli.cpp.o"
  "CMakeFiles/swraman_cli.dir/swraman_cli.cpp.o.d"
  "swraman_cli"
  "swraman_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
