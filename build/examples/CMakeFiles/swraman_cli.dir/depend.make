# Empty dependencies file for swraman_cli.
# This may be replaced when dependencies are built.
