# Empty dependencies file for bench_fig16_aims_vs_gaussian.
# This may be replaced when dependencies are built.
