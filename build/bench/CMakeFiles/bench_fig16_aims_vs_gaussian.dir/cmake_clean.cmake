file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_aims_vs_gaussian.dir/bench_fig16_aims_vs_gaussian.cpp.o"
  "CMakeFiles/bench_fig16_aims_vs_gaussian.dir/bench_fig16_aims_vs_gaussian.cpp.o.d"
  "bench_fig16_aims_vs_gaussian"
  "bench_fig16_aims_vs_gaussian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_aims_vs_gaussian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
