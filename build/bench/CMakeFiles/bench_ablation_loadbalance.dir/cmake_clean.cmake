file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_loadbalance.dir/bench_ablation_loadbalance.cpp.o"
  "CMakeFiles/bench_ablation_loadbalance.dir/bench_ablation_loadbalance.cpp.o.d"
  "bench_ablation_loadbalance"
  "bench_ablation_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
