file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_h2o_raman.dir/bench_fig11_h2o_raman.cpp.o"
  "CMakeFiles/bench_fig11_h2o_raman.dir/bench_fig11_h2o_raman.cpp.o.d"
  "bench_fig11_h2o_raman"
  "bench_fig11_h2o_raman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_h2o_raman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
