# Empty dependencies file for bench_fig11_h2o_raman.
# This may be replaced when dependencies are built.
