# Empty compiler generated dependencies file for bench_fig14_rbd_dfpt.
# This may be replaced when dependencies are built.
