file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_rbd_dfpt.dir/bench_fig14_rbd_dfpt.cpp.o"
  "CMakeFiles/bench_fig14_rbd_dfpt.dir/bench_fig14_rbd_dfpt.cpp.o.d"
  "bench_fig14_rbd_dfpt"
  "bench_fig14_rbd_dfpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rbd_dfpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
