# Empty compiler generated dependencies file for bench_fig19_rbd_spectrum.
# This may be replaced when dependencies are built.
