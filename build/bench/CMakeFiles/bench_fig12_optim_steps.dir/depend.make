# Empty dependencies file for bench_fig12_optim_steps.
# This may be replaced when dependencies are built.
