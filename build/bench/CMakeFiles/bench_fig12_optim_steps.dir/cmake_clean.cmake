file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_optim_steps.dir/bench_fig12_optim_steps.cpp.o"
  "CMakeFiles/bench_fig12_optim_steps.dir/bench_fig12_optim_steps.cpp.o.d"
  "bench_fig12_optim_steps"
  "bench_fig12_optim_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_optim_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
