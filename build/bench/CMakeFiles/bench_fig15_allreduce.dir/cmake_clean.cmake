file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_allreduce.dir/bench_fig15_allreduce.cpp.o"
  "CMakeFiles/bench_fig15_allreduce.dir/bench_fig15_allreduce.cpp.o.d"
  "bench_fig15_allreduce"
  "bench_fig15_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
