# Empty dependencies file for bench_fig15_allreduce.
# This may be replaced when dependencies are built.
