# Empty compiler generated dependencies file for bench_fig10_dielectric.
# This may be replaced when dependencies are built.
