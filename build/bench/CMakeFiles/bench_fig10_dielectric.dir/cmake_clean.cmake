file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dielectric.dir/bench_fig10_dielectric.cpp.o"
  "CMakeFiles/bench_fig10_dielectric.dir/bench_fig10_dielectric.cpp.o.d"
  "bench_fig10_dielectric"
  "bench_fig10_dielectric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dielectric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
