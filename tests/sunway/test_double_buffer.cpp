#include "sunway/double_buffer.hpp"

#include <random>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sunway/check/check.hpp"

namespace swraman::sunway {
namespace {

struct PipelineCase {
  std::size_t count;
  std::size_t ldm_doubles;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineSweep, MatchesSerialReduction) {
  const PipelineCase c = GetParam();
  std::mt19937 rng(static_cast<unsigned>(c.count));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> dst(c.count);
  std::vector<double> src(c.count);
  std::vector<double> expected(c.count);
  for (std::size_t i = 0; i < c.count; ++i) {
    dst[i] = dist(rng);
    src[i] = dist(rng);
    expected[i] = dst[i] + src[i];
  }
  CpeContext ctx(0, 64, sw26010pro());
  const std::size_t stages = reduce_local_pipelined(
      ctx, dst.data(), src.data(), c.count, c.ldm_doubles);
  EXPECT_GE(stages, 1u);
  for (std::size_t i = 0; i < c.count; ++i) {
    EXPECT_DOUBLE_EQ(dst[i], expected[i]) << "index " << i;
  }
  // The pipeline moved roughly 3x the payload (two reads + one write).
  const double bytes = ctx.counters().dma_bytes;
  EXPECT_GT(bytes, 2.9 * static_cast<double>(c.count) * sizeof(double));
  EXPECT_LT(bytes, 3.6 * static_cast<double>(c.count) * sizeof(double) +
                       4.0 * static_cast<double>(c.ldm_doubles) * 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineSweep,
    ::testing::Values(PipelineCase{10000, 4096}, PipelineCase{4096, 4096},
                      PipelineCase{4097, 4096}, PipelineCase{1023, 4096},
                      PipelineCase{100, 4096}, PipelineCase{3, 16},
                      PipelineCase{65536, 8192}));

TEST(Pipeline, CustomCombineOp) {
  std::vector<double> dst{1.0, 2.0, 3.0, 4.0};
  std::vector<double> src{5.0, 6.0, 7.0, 8.0};
  CpeContext ctx(0, 64, sw26010pro());
  reduce_local_pipelined(ctx, dst.data(), src.data(), 4, 16,
                         [](double* d, const double* s, std::size_t n) {
                           for (std::size_t i = 0; i < n; ++i) {
                             d[i] = std::max(d[i], s[i]);
                           }
                         });
  EXPECT_DOUBLE_EQ(dst[0], 5.0);
  EXPECT_DOUBLE_EQ(dst[3], 8.0);
}

TEST(Pipeline, RespectsLdmCapacity) {
  std::vector<double> dst(100, 0.0);
  std::vector<double> src(100, 1.0);
  CpeContext ctx(0, 64, sw26010pro());
  // 4 x 16384 doubles = 512 KB exceeds the 256 KB scratchpad.
  EXPECT_THROW(
      reduce_local_pipelined(ctx, dst.data(), src.data(), 100, 65536),
      Error);
  EXPECT_THROW(
      reduce_local_pipelined(ctx, dst.data(), src.data(), 100, 4), Error);
}

TEST(Pipeline, ReplyWordProtocol) {
  CpeContext ctx(0, 64, sw26010pro());
  ReplyWord reply;
  std::vector<double> host(8, 1.0);
  ctx.ldm().reset();
  double* tile = ctx.ldm().allocate<double>(8);
  dma_get_async(ctx, tile, host.data(), 8, reply);
  if (check::enabled()) {
    // Checked mode (SWRAMAN_CHECK=1) genuinely defers: the reply word
    // advances when dma_wait materializes the transfer, and a wait that
    // exceeds the issued count is an unreachable-wait violation.
    EXPECT_EQ(reply.value, 0);
    EXPECT_NO_THROW(dma_wait(reply, 1));
    EXPECT_EQ(reply.value, 1);
    EXPECT_THROW(dma_wait(reply, 2), Error);
    dma_put_async(ctx, tile, host.data(), 8, reply);
    EXPECT_NO_THROW(dma_wait(reply, 2));
    EXPECT_EQ(reply.value, 2);
  } else {
    EXPECT_EQ(reply.value, 1);
    EXPECT_NO_THROW(dma_wait(reply, 1));
    EXPECT_THROW(dma_wait(reply, 2), Error);
    dma_put_async(ctx, tile, host.data(), 8, reply);
    EXPECT_EQ(reply.value, 2);
  }
}

}  // namespace
}  // namespace swraman::sunway
