#include "sunway/kernels.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman::sunway {
namespace {

// A solved multipole potential of a two-center Gaussian density.
struct Fixture {
  grid::MolecularGrid g;
  hartree::MultipolePotential pot;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    const std::vector<grid::AtomSite> atoms = {{8, {0.0, 0.0, 0.0}},
                                               {1, {0.0, 0.0, 1.8}}};
    grid::GridSettings s;
    s.level = grid::GridLevel::Tight;
    Fixture fx{grid::build_molecular_grid(atoms, s), {}};
    const hartree::MultipoleSolver solver(fx.g, 6);
    std::vector<double> n(fx.g.size());
    for (std::size_t p = 0; p < fx.g.size(); ++p) {
      n[p] = std::pow(1.3 / kPi, 1.5) *
                 std::exp(-1.3 * fx.g.points[p].norm2()) +
             std::pow(0.9 / kPi, 1.5) *
                 std::exp(-0.9 * (fx.g.points[p] - Vec3{0, 0, 1.8}).norm2());
    }
    fx.pot = solver.solve(n);
    return fx;
  }();
  return f;
}

std::vector<Vec3> probe_points(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  std::vector<Vec3> pts(n);
  for (Vec3& p : pts) p = {dist(rng), dist(rng), dist(rng) + 1.0};
  return pts;
}

TEST(CsiKernel, TablesMatchPotentialChannels) {
  const CsiTables t = build_csi_tables(fixture().pot);
  EXPECT_EQ(t.atoms.size(), 2u);
  EXPECT_EQ(t.n_lm, 49u);
  EXPECT_GT(t.coeff_bytes(), 10000u);
}

class CsiMode : public ::testing::TestWithParam<ExecMode> {};

TEST_P(CsiMode, MatchesMultipolePotential) {
  const ExecMode mode = GetParam();
  const CsiTables t = build_csi_tables(fixture().pot);
  const std::vector<Vec3> pts = probe_points(200, 5);
  std::vector<double> out(pts.size());
  real_space_potential(t, pts.data(), pts.size(), out.data(), mode);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double ref = fixture().pot.value(pts[i]);
    EXPECT_NEAR(out[i], ref, 1e-9 + 1e-9 * std::abs(ref)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CsiMode,
                         ::testing::Values(ExecMode::Scalar, ExecMode::Simd));

TEST(CsiKernel, CpeExecutionMatchesHost) {
  const CsiTables t = build_csi_tables(fixture().pot);
  const std::vector<Vec3> pts = probe_points(500, 9);
  std::vector<double> host(pts.size());
  std::vector<double> cpe(pts.size());
  real_space_potential(t, pts.data(), pts.size(), host.data(),
                       ExecMode::Simd);
  CpeCluster cluster(sw26010pro());
  real_space_potential_cpe(cluster, t, pts.data(), pts.size(), cpe.data(),
                           ExecMode::Simd);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(cpe[i], host[i]);
  }
  // Operation counting happened.
  const CpeCounters total = cluster.total();
  EXPECT_GT(total.flops, 0.0);
  EXPECT_GT(total.dma_bytes, 0.0);
}

TEST(ReciprocalKernel, MatchesEwaldReciprocal) {
  const hartree::EwaldSystem sys = hartree::zinc_blende_cell(4.0, 0.8);
  const hartree::Ewald ewald(sys, 1.0, 8.0, 8.0);
  const ReciprocalTables t = build_reciprocal_tables(ewald);
  const std::vector<Vec3> pts = probe_points(50, 17);
  std::vector<double> out(pts.size());
  reciprocal_potential(t, pts.data(), pts.size(), out.data());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    // The gather permutation only reorders the sum.
    EXPECT_NEAR(out[i], ewald.reciprocal(pts[i]), 1e-10);
  }
}

TEST(ReciprocalKernel, CpeExecutionMatchesHost) {
  const hartree::EwaldSystem sys = hartree::rock_salt_cell(3.0, 1.0);
  const hartree::Ewald ewald(sys, 1.0, 8.0, 9.0);
  const ReciprocalTables t = build_reciprocal_tables(ewald);
  const std::vector<Vec3> pts = probe_points(300, 23);
  std::vector<double> host(pts.size());
  std::vector<double> cpe(pts.size());
  reciprocal_potential(t, pts.data(), pts.size(), host.data());
  CpeCluster cluster(sw26010pro());
  reciprocal_potential_cpe(cluster, t, pts.data(), pts.size(), cpe.data());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(cpe[i], host[i], 1e-11 + 1e-11 * std::abs(host[i]));
  }
}

TEST(BatchKernels, WorkloadsScaleWithBatchShapes) {
  CpeCluster c1(sw26010pro());
  CpeCluster c2(sw26010pro());
  const std::vector<BatchShape> small(50, {40, 200});
  const std::vector<BatchShape> large(50, {80, 200});
  const KernelWorkload w_small = run_density_batches(c1, small);
  const KernelWorkload w_large = run_density_batches(c2, large);
  EXPECT_GT(w_large.total_flops(), 3.0 * w_small.total_flops());

  CpeCluster c3(sw26010pro());
  const KernelWorkload h = run_hamiltonian_batches(c3, small);
  EXPECT_GT(h.total_flops(), 0.0);
  EXPECT_GT(c3.total().rma_bytes, 0.0);  // the scatter-add reduction
}

TEST(BatchKernels, LdmCapacityRespectedForWideBatches) {
  CpeCluster cluster(sw26010pro());
  // 2000 functions x 300 points would blow 256 KB without row tiling.
  const std::vector<BatchShape> wide(4, {2000, 300});
  EXPECT_NO_THROW(run_density_batches(cluster, wide));
}

}  // namespace
}  // namespace swraman::sunway
