#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sunway/check/check.hpp"
#include "sunway/double_buffer.hpp"

// Seeded-violation tests for the deferred-DMA protocol rules. Each test
// reproduces a pipeline bug that the synchronous functional model hides
// (the memcpy completes immediately, so the numerics come out right) and
// asserts that checked mode turns it into an attributed hard error.

namespace swraman::sunway {
namespace {

constexpr std::size_t kN = 64;

struct Checked : ::testing::Test {
  check::ScopedChecking checking;
  CpeContext ctx{5, 64, sw26010pro(), "seeded"};
  std::vector<double> host = std::vector<double>(4 * kN, 1.5);
};

TEST_F(Checked, DeferredCopyMaterializesAtWait) {
  double* tile = ctx.ldm().allocate<double>(kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  EXPECT_EQ(reply.value, 0);             // not complete yet
  EXPECT_EQ(check::live_transfers(), 1);  // but registered in flight
  dma_wait(reply, 1);
  EXPECT_EQ(reply.value, 1);
  EXPECT_EQ(check::live_transfers(), 0);
  EXPECT_EQ(tile[kN - 1], 1.5);  // the copy happened at the wait
}

// The headline rule: a missing dma_wait before touching the tile — the
// bug that produces garbage on SW26010Pro and correct numerics in the
// plain functional model.
TEST_F(Checked, ReadOfUnwaitedTransferIsCaught) {
  double* tile = ctx.ldm().allocate<double>(2 * kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  try {
    ctx.check_ldm_read(tile, kN * sizeof(double), "combine src");
    FAIL() << "un-waited read not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleDmaInFlight);
    EXPECT_NE(std::string(e.what()).find("missing dma_wait"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cpe=5"), std::string::npos);
  }
}

// Same bug expressed through Algorithm 3 itself: a broken variant of the
// double-buffered reduction that combines the block before waiting on
// its reply word.
TEST_F(Checked, MissingWaitInPipelineIsCaught) {
  double* tile = ctx.ldm().allocate<double>(2 * kN);
  std::vector<double> dst(kN, 1.0);
  std::vector<double> src(kN, 2.0);
  ReplyWord reply;
  dma_get_async(ctx, tile, dst.data(), kN, reply);
  dma_get_async(ctx, tile + kN, src.data(), kN, reply);
  // BUG: no dma_wait(reply, 2) here.
  const auto broken_combine = [&] {
    ctx.check_ldm_write(tile, kN * sizeof(double), "combine dst");
    ctx.check_ldm_read(tile + kN, kN * sizeof(double), "combine src");
    sum_op(tile, tile + kN, kN);
  };
  EXPECT_THROW(broken_combine(), CheckViolation);
  EXPECT_EQ(check::violation_counts()[check::kRuleDmaInFlight], 1u);
  // Recover so the fixture teardown sees a quiesced context.
  dma_wait(reply, 2);
}

TEST_F(Checked, OverlappingGetsAreCaught) {
  double* tile = ctx.ldm().allocate<double>(2 * kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  try {
    // Second get overlaps the first by half a block: unordered
    // write-write on hardware.
    dma_get_async(ctx, tile + kN / 2, host.data() + kN, kN, reply);
    FAIL() << "overlap not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleDmaOverlap);
  }
  dma_wait(reply, 1);
}

TEST_F(Checked, PutReadingInFlightGetIsCaught) {
  double* tile = ctx.ldm().allocate<double>(kN);
  std::vector<double> out(kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  // Writing back a tile the engine is still filling.
  EXPECT_THROW(dma_put_async(ctx, tile, out.data(), kN, reply),
               CheckViolation);
  dma_wait(reply, 1);
}

TEST_F(Checked, OverlappingPutsBothReadAreAllowed) {
  double* tile = ctx.ldm().allocate<double>(kN);
  std::vector<double> out_a(kN);
  std::vector<double> out_b(kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  dma_wait(reply, 1);
  dma_put_async(ctx, tile, out_a.data(), kN, reply);
  EXPECT_NO_THROW(dma_put_async(ctx, tile, out_b.data(), kN, reply));
  dma_wait(reply, 3);
  EXPECT_EQ(out_a[0], 1.5);
  EXPECT_EQ(out_b[0], 1.5);
}

TEST_F(Checked, SyncDmaOverlappingInFlightIsCaught) {
  double* tile = ctx.ldm().allocate<double>(kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  try {
    ctx.dma_get(tile, host.data() + kN, kN);  // races the pending get
    FAIL() << "sync/async overlap not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleDmaOverlap);
  }
  dma_wait(reply, 1);
}

TEST_F(Checked, UnreachableWaitIsCaught) {
  double* tile = ctx.ldm().allocate<double>(kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  try {
    dma_wait(reply, 2);  // only one transfer was ever issued
    FAIL() << "unreachable wait not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleDmaWaitUnreachable);
    // Diagnostics carry actual and expected values.
    EXPECT_NE(std::string(e.what()).find("expected reply value 2"),
              std::string::npos);
  }
}

// Satellite: an over-incremented reply word used to slip through the
// `>=` assert; checked mode flags value > expected as a protocol
// violation (a stale wait races the engine on hardware).
TEST_F(Checked, OverIncrementedReplyWordIsCaught) {
  double* tile = ctx.ldm().allocate<double>(2 * kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  dma_get_async(ctx, tile + kN, host.data() + kN, kN, reply);
  dma_wait(reply, 2);
  EXPECT_EQ(reply.value, 2);
  try {
    dma_wait(reply, 1);  // stale: the word is already past 1
    FAIL() << "reply overrun not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleDmaReplyOverrun);
    EXPECT_NE(std::string(e.what()).find("already at 2"),
              std::string::npos);
  }
}

TEST_F(Checked, TransferLeakedPastFinishIsCaught) {
  double* tile = ctx.ldm().allocate<double>(kN);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), kN, reply);
  try {
    ctx.finish();  // kernel "returns" with the transfer still in flight
    FAIL() << "leaked transfer not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleDmaUnwaited);
    EXPECT_NE(std::string(e.what()).find("dma_wait never ran"),
              std::string::npos);
  }
  // The violation drained the shadow queue: nothing stays live.
  EXPECT_EQ(check::live_transfers(), 0);
}

// In unchecked mode dma_wait must keep its eager semantics but now
// reports actual/expected values when the protocol is broken.
TEST(CheckDmaDisabled, WaitDiagnosticsIncludeValues) {
  check::ScopedChecking checking(false);
  ReplyWord reply;
  reply.value = 1;
  try {
    dma_wait(reply, 3);
    FAIL() << "behind-schedule wait not reported";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value=1"), std::string::npos);
    EXPECT_NE(what.find("expected=3"), std::string::npos);
  }
}

}  // namespace
}  // namespace swraman::sunway
