#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/comm.hpp"
#include "sunway/check/check.hpp"

// swcheck coverage for the hierarchical collectives (DESIGN.md S10): the
// intra-node RMA-mesh stage must retire every shadow tile and DMA/RMA
// transfer before the inter-node stage starts on the same data, and an
// iallreduce handle destroyed without wait() must be reported under
// check::kRuleCollAbandoned (without throwing — the detection site is a
// destructor on a communication path).

namespace swraman::parallel {
namespace {

TEST(CheckCollectives, HierarchicalLeavesNoShadowStateBehind) {
  sunway::check::ScopedChecking checking;
  CommConfig cfg;
  cfg.node_size = 2;  // 4 ranks -> two node groups, leaders 0 and 2
  run_spmd(
      4,
      [](Communicator& comm) {
        std::vector<double> data(1537, static_cast<double>(comm.rank() + 1));
        comm.allreduce(data, AllreduceAlgorithm::Hierarchical);
        for (double v : data) {
          ASSERT_DOUBLE_EQ(v, 10.0);  // 1+2+3+4
        }
      },
      cfg);
  // Every intra-node mesh reduction ran fully checked: all LDM tiles and
  // DMA/RMA transfers retired between the levels, no rule tripped.
  EXPECT_EQ(sunway::check::total_violations(), 0u);
  EXPECT_EQ(sunway::check::live_shadow_tiles(), 0);
  EXPECT_EQ(sunway::check::live_transfers(), 0);
}

TEST(CheckCollectives, RepeatedHierarchicalCallsStayClean) {
  sunway::check::ScopedChecking checking;
  CommConfig cfg;
  cfg.node_size = 3;  // non-divisor of 7: groups {3, 3, 1}
  run_spmd(
      7,
      [](Communicator& comm) {
        for (int round = 0; round < 5; ++round) {
          std::vector<double> data(211, 1.0);
          comm.allreduce(data, AllreduceAlgorithm::Hierarchical);
          ASSERT_DOUBLE_EQ(data[0], 7.0);
        }
      },
      cfg);
  EXPECT_EQ(sunway::check::total_violations(), 0u);
  EXPECT_EQ(sunway::check::live_shadow_tiles(), 0);
  EXPECT_EQ(sunway::check::live_transfers(), 0);
}

TEST(CheckCollectives, AbandonedIallreduceIsReported) {
  sunway::check::ScopedChecking checking;
  run_spmd(2, [](Communicator& comm) {
    AllreduceRequest req =
        comm.iallreduce({static_cast<double>(comm.rank())},
                        AllreduceAlgorithm::Linear);
    ASSERT_TRUE(req.valid());
    // Dropped without wait(): the destructor still completes the exchange
    // (the peer must not deadlock) and files the violation.
  });
  const auto counts = sunway::check::violation_counts();
  ASSERT_TRUE(counts.count(sunway::check::kRuleCollAbandoned));
  EXPECT_EQ(counts.at(sunway::check::kRuleCollAbandoned), 2u);  // both ranks
}

TEST(CheckCollectives, WaitedRequestIsNotAViolation) {
  sunway::check::ScopedChecking checking;
  run_spmd(2, [](Communicator& comm) {
    AllreduceRequest req =
        comm.iallreduce({1.0, 2.0}, AllreduceAlgorithm::Hierarchical);
    const std::vector<double> out = req.wait();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 4.0);
  });
  EXPECT_EQ(sunway::check::total_violations(), 0u);
}

TEST(CheckCollectives, AbandonmentIsSilentWhenCheckingDisabled) {
  // Production runs (checking off) only count the event; no tally entry.
  sunway::check::ScopedChecking checking(false);
  run_spmd(2, [](Communicator& comm) {
    AllreduceRequest req = comm.iallreduce(
        {static_cast<double>(comm.rank())}, AllreduceAlgorithm::Linear);
    (void)req;
  });
  EXPECT_EQ(sunway::check::total_violations(), 0u);
}

}  // namespace
}  // namespace swraman::parallel
