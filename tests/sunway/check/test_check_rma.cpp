#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sunway/check/check.hpp"
#include "sunway/check/shadow.hpp"
#include "sunway/rma_reduce.hpp"

// Seeded-violation tests for the RMA mesh checker: unconsumed mailbox
// messages and wait-for (row/column bus) deadlock cycles, plus the clean
// path — the paper's Fig. 8 distributed reduction fully accounted.

namespace swraman::sunway {
namespace {

TEST(CheckRma, UnconsumedMessageIsCaught) {
  check::ScopedChecking checking;
  check::RmaMeshChecker mesh(8);
  mesh.record_send(2, 5, 512);
  mesh.record_send(2, 5, 512);
  mesh.record_send(3, 5, 256);
  mesh.record_drain(5);
  mesh.record_send(1, 4, 128);  // delivered after 4's last drain
  EXPECT_EQ(mesh.unconsumed(), 1u);
  try {
    mesh.verify("seeded");
    FAIL() << "unconsumed message not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleRmaUnconsumed);
    EXPECT_NE(std::string(e.what()).find("1->4"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("silently lost"),
              std::string::npos);
  }
  EXPECT_EQ(check::violation_counts()[check::kRuleRmaUnconsumed], 1u);
}

TEST(CheckRma, BalancedMailboxesVerifyClean) {
  check::ScopedChecking checking;
  check::RmaMeshChecker mesh(64);
  for (std::size_t src = 0; src < 64; ++src) {
    mesh.record_send(src, (src * 7 + 3) % 64, 64);
  }
  for (std::size_t dst = 0; dst < 64; ++dst) mesh.record_drain(dst);
  EXPECT_NO_THROW(mesh.verify("clean"));
  EXPECT_EQ(check::total_violations(), 0u);
}

TEST(CheckRma, WaitForCycleIsReportedAsDeadlock) {
  check::ScopedChecking checking;
  check::RmaMeshChecker mesh(64);
  // CPE 9 waits on 17, 17 on 42, 42 back on 9: a cycle across mesh rows
  // that stalls both buses forever on hardware.
  mesh.add_wait(9, 17);
  mesh.add_wait(17, 42);
  mesh.add_wait(42, 9);
  try {
    mesh.check_deadlock();
    FAIL() << "deadlock cycle not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleRmaDeadlock);
    const std::string what = e.what();
    EXPECT_NE(what.find("CPE 9 (row 1, col 1)"), std::string::npos);
    EXPECT_NE(what.find("CPE 42 (row 5, col 2)"), std::string::npos);
  }
}

TEST(CheckRma, AcyclicWaitsAreNotDeadlock) {
  check::ScopedChecking checking;
  check::RmaMeshChecker mesh(64);
  mesh.add_wait(0, 1);
  mesh.add_wait(1, 2);
  mesh.add_wait(0, 2);  // diamond, no cycle
  EXPECT_NO_THROW(mesh.check_deadlock());
}

// The production path: the Fig. 8 reduction's sends and drains balance,
// so a fully checked run is violation-free and exact.
TEST(CheckRma, ArrayReductionRunsCleanUnderCheck) {
  check::ScopedChecking checking;
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::size_t> idx(0, 9999);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<std::vector<Contribution>> contributions(64);
  for (auto& list : contributions) {
    for (int i = 0; i < 500; ++i) list.push_back({idx(rng), val(rng)});
  }
  std::vector<double> arr(10000, 0.0);
  std::vector<double> expected(10000, 0.0);
  serial_array_reduction(contributions, expected);
  const RmaReduceStats stats = rma_array_reduction(contributions, arr);
  EXPECT_GT(stats.rma_messages, 0.0);
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_NEAR(arr[i], expected[i], 1e-12) << i;
  }
  EXPECT_EQ(check::total_violations(), 0u);
}

}  // namespace
}  // namespace swraman::sunway
