#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sunway/check/check.hpp"
#include "sunway/cpe_cluster.hpp"

// Seeded-violation tests for the LDM tile rules: every rule is triggered
// deliberately and must surface as a CheckViolation with the right rule
// tag under checked mode — and pass silently (the latent-bug behavior)
// when checking is off.

namespace swraman::sunway {
namespace {

// Satellite regression: n * sizeof(T) used to wrap before the capacity
// check, letting a huge request pass as a tiny one. (2^61 + 2) * 8 wraps
// to 16 bytes on 64-bit size_t — the unfixed arena would hand out a
// 16-byte block for an 18-quintillion-element "tile".
TEST(LdmArenaOverflow, WrappingRequestIsRejected) {
  LdmArena arena(256 * 1024);
  const std::size_t wrap_n =
      std::numeric_limits<std::size_t>::max() / sizeof(double) + 2;
  EXPECT_THROW(arena.allocate<double>(wrap_n), Error);
  // The near-limit case that overflows only through align_up's + 63.
  const std::size_t align_n =
      std::numeric_limits<std::size_t>::max() / sizeof(double);
  EXPECT_THROW(arena.allocate<double>(align_n), Error);
  // Nothing was booked against the arena by the rejected requests.
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_NO_THROW(arena.allocate<double>(8));
}

TEST(CheckLdm, DmaGetOverrunningTileIsCaught) {
  check::ScopedChecking checking;
  CpeContext ctx(3, 64, sw26010pro(), "seeded");
  double* tile = ctx.ldm().allocate<double>(8);
  std::vector<double> host(16, 1.0);
  try {
    ctx.dma_get(tile, host.data(), 16);  // 16 > the 8 allocated
    FAIL() << "overrun not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleLdmBounds);
    EXPECT_NE(std::string(e.what()).find("cpe=3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("kernel=seeded"),
              std::string::npos);
  }
  EXPECT_EQ(check::violation_counts()[check::kRuleLdmBounds], 1u);
}

TEST(CheckLdm, DmaPutFromForeignPointerIsCaught) {
  check::ScopedChecking checking;
  CpeContext ctx(0, 64, sw26010pro());
  std::vector<double> not_a_tile(8, 0.0);
  std::vector<double> host(8, 0.0);
  try {
    ctx.dma_put(not_a_tile.data(), host.data(), 8);
    FAIL() << "foreign pointer not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleLdmBounds);
  }
}

TEST(CheckLdm, UseAfterResetIsCaughtByGeneration) {
  check::ScopedChecking checking;
  CpeContext ctx(7, 64, sw26010pro(), "seeded");
  double* tile = ctx.ldm().allocate<double>(32);
  std::vector<double> host(32, 2.0);
  ctx.dma_get(tile, host.data(), 32);  // fine while the tile is live
  ctx.ldm().reset();
  try {
    ctx.dma_get(tile, host.data(), 32);  // stale pointer, old generation
    FAIL() << "use-after-reset not caught";
  } catch (const CheckViolation& e) {
    EXPECT_EQ(e.rule(), check::kRuleLdmUseAfterReset);
    EXPECT_NE(std::string(e.what()).find("retired by reset()"),
              std::string::npos);
  }
  EXPECT_EQ(check::violation_counts()[check::kRuleLdmUseAfterReset], 1u);
}

TEST(CheckLdm, FreshAllocationAfterResetIsClean) {
  check::ScopedChecking checking;
  CpeContext ctx(0, 64, sw26010pro());
  (void)ctx.ldm().allocate<double>(32);
  ctx.ldm().reset();
  double* fresh = ctx.ldm().allocate<double>(32);
  std::vector<double> host(32, 3.0);
  EXPECT_NO_THROW(ctx.dma_get(fresh, host.data(), 32));
  EXPECT_EQ(fresh[5], 3.0);
  EXPECT_EQ(check::total_violations(), 0u);
}

TEST(CheckLdm, CombineAccessAnnotationsAreChecked) {
  check::ScopedChecking checking;
  CpeContext ctx(0, 64, sw26010pro());
  double* tile = ctx.ldm().allocate<double>(8);
  EXPECT_NO_THROW(ctx.check_ldm_read(tile, 8 * sizeof(double)));
  EXPECT_THROW(ctx.check_ldm_read(tile, 9 * sizeof(double)),
               CheckViolation);
}

// The latent-bug contract: with checking off, the exact same overrun
// sequence sails through the functional model silently. (This is the
// undetectable bug class the checker exists for; the buffers are sized
// so the unchecked memcpy stays within allocated memory.)
TEST(CheckLdm, DisabledModeStaysSilent) {
  check::ScopedChecking checking(false);
  CpeContext ctx(0, 64, sw26010pro());
  // 8 doubles requested; the 64-byte alignment granule makes the
  // unchecked overrun land in padding instead of tripping anything.
  double* tile = ctx.ldm().allocate<double>(4);
  std::vector<double> host(8, 1.0);
  EXPECT_NO_THROW(ctx.dma_get(tile, host.data(), 8));
  ctx.ldm().reset();
  EXPECT_EQ(check::total_violations(), 0u);
}

}  // namespace
}  // namespace swraman::sunway
