#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "robustness/fault.hpp"
#include "sunway/check/check.hpp"
#include "sunway/double_buffer.hpp"

// Checked-mode interplay with the fault-injection framework: retries and
// CPE-death adoption must leave the shadow state exact — no transfer
// registered twice, no tile leaked with its dead owner.

namespace swraman::sunway {
namespace {

// A sunway.dma.fail retry charges the DMA engine again but must not
// double-register the in-flight transfer record.
TEST(CheckFaults, DmaFailRetryRegistersTransferOnce) {
  check::ScopedChecking checking;
  fault::ScopedFaults faults;
  fault::FaultSpec spec;
  spec.fire_at = 1;  // first visit of the site fails, retry succeeds
  fault::FaultInjector::instance().configure(fault::kDmaFail, spec);

  CpeContext ctx(0, 64, sw26010pro(), "faulted");
  double* tile = ctx.ldm().allocate<double>(16);
  std::vector<double> host(16, 4.0);
  ReplyWord reply;
  dma_get_async(ctx, tile, host.data(), 16, reply);
  // Exactly one in-flight record despite the retried issue...
  EXPECT_EQ(check::live_transfers(), 1);
  // ...while the engine was charged for both attempts.
  EXPECT_EQ(ctx.counters().dma_transfers, 2.0);
  dma_wait(reply, 1);
  EXPECT_EQ(reply.value, 1);
  EXPECT_EQ(tile[7], 4.0);
  EXPECT_EQ(check::live_transfers(), 0);
  ctx.finish();  // quiesced: the retry left nothing behind
  EXPECT_EQ(check::total_violations(), 0u);
}

// A retry storm that exhausts the budget throws TimeoutError before the
// transfer is registered: the shadow queue must stay empty.
TEST(CheckFaults, ExhaustedDmaRetriesLeaveNoShadowRecord) {
  check::ScopedChecking checking;
  fault::ScopedFaults faults;
  fault::FaultSpec spec;
  spec.probability = 1.0;  // every attempt fails
  fault::FaultInjector::instance().configure(fault::kDmaFail, spec);

  CpeContext ctx(0, 64, sw26010pro(), "faulted");
  double* tile = ctx.ldm().allocate<double>(16);
  std::vector<double> host(16, 0.0);
  ReplyWord reply;
  EXPECT_THROW(dma_get_async(ctx, tile, host.data(), 16, reply),
               TimeoutError);
  EXPECT_EQ(check::live_transfers(), 0);
  EXPECT_NO_THROW(ctx.finish());
}

// A CPE killed by sunway.cpe.death has its logical run adopted by a
// survivor; the dead CPE's shadow tiles and transfer records must be
// fully released once the cluster run completes.
TEST(CheckFaults, CpeDeathAdoptionLeaksNoShadowState) {
  check::ScopedChecking checking;
  fault::ScopedFaults faults;
  fault::FaultSpec spec;
  spec.fire_at = 1;  // the first CPE visited dies
  fault::FaultInjector::instance().configure(fault::kCpeDeath, spec);

  CpeCluster cluster(sw26010pro());
  const std::size_t n = 4096;
  std::vector<double> in(n, 2.0);
  std::vector<double> out(n, 0.0);
  cluster.run("adopted", [&](CpeContext& ctx) {
    const auto [lo, hi] = ctx.my_slice(n);
    if (lo >= hi) return;
    ctx.ldm().reset();
    double* tile = ctx.ldm().allocate<double>(hi - lo);
    ReplyWord reply;
    dma_get_async(ctx, tile, in.data() + lo, hi - lo, reply);
    dma_wait(reply, 1);
    for (std::size_t k = 0; k < hi - lo; ++k) tile[k] *= 3.0;
    ctx.charge_flops(static_cast<double>(hi - lo));
    ctx.dma_put(tile, out.data() + lo, hi - lo);
  });
  EXPECT_EQ(cluster.n_dead(), 1);
  // The adopted run produced the dead CPE's slice too.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], 6.0) << i;
  }
  // All shadow state — including the dead CPE's — was released.
  EXPECT_EQ(check::live_shadow_tiles(), 0);
  EXPECT_EQ(check::live_transfers(), 0);
  EXPECT_EQ(check::total_violations(), 0u);
}

}  // namespace
}  // namespace swraman::sunway
