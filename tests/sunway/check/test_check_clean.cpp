#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "sunway/check/check.hpp"
#include "sunway/double_buffer.hpp"
#include "sunway/kernels.hpp"

// The flip side of the seeded-violation suite: every paper kernel and
// the Algorithm-3 pipelined reduction respect the protocol, so a fully
// checked execution (deferred DMA, tile registry, quiesce-at-finish)
// must finish with zero violations AND bit-identical numerics.

namespace swraman::sunway {
namespace {

std::vector<Vec3> probe_points(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  std::vector<Vec3> pts(n);
  for (Vec3& p : pts) p = {dist(rng), dist(rng), dist(rng) + 1.0};
  return pts;
}

TEST(CheckClean, ReduceLocalPipelinedAllShapes) {
  check::ScopedChecking checking;
  const struct {
    std::size_t count;
    std::size_t ldm;
  } shapes[] = {{10000, 4096}, {4096, 4096}, {4097, 4096}, {1023, 4096},
                {100, 4096},   {3, 16},      {65536, 8192}};
  for (const auto& c : shapes) {
    std::mt19937 rng(static_cast<unsigned>(c.count));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> dst(c.count);
    std::vector<double> src(c.count);
    std::vector<double> expected(c.count);
    for (std::size_t i = 0; i < c.count; ++i) {
      dst[i] = dist(rng);
      src[i] = dist(rng);
      expected[i] = dst[i] + src[i];
    }
    CpeContext ctx(0, 64, sw26010pro(), "reduce_local_pipelined");
    reduce_local_pipelined(ctx, dst.data(), src.data(), c.count, c.ldm);
    ctx.finish();
    for (std::size_t i = 0; i < c.count; ++i) {
      ASSERT_DOUBLE_EQ(dst[i], expected[i])
          << "count=" << c.count << " index " << i;
    }
  }
  EXPECT_EQ(check::total_violations(), 0u);
  EXPECT_EQ(check::live_transfers(), 0);
}

TEST(CheckClean, Kernel1RealSpacePotential) {
  check::ScopedChecking checking;
  // Compact two-atom CSI table (synthetic spline channels are enough to
  // exercise the tiled CPE path; numerics must match the host exactly).
  const std::vector<grid::AtomSite> atoms = {{8, {0.0, 0.0, 0.0}},
                                             {1, {0.0, 0.0, 1.8}}};
  grid::GridSettings s;
  s.level = grid::GridLevel::Light;
  const grid::MolecularGrid g = grid::build_molecular_grid(atoms, s);
  const hartree::MultipoleSolver solver(g, 4);
  std::vector<double> n(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n[p] = std::pow(1.3 / kPi, 1.5) * std::exp(-1.3 * g.points[p].norm2());
  }
  const hartree::MultipolePotential pot = solver.solve(n);
  const CsiTables t = build_csi_tables(pot);

  const std::vector<Vec3> pts = probe_points(400, 9);
  std::vector<double> host(pts.size());
  std::vector<double> cpe(pts.size());
  real_space_potential(t, pts.data(), pts.size(), host.data(),
                       ExecMode::Simd);
  CpeCluster cluster(sw26010pro());
  real_space_potential_cpe(cluster, t, pts.data(), pts.size(), cpe.data(),
                           ExecMode::Simd);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_DOUBLE_EQ(cpe[i], host[i]) << i;
  }
  EXPECT_EQ(check::total_violations(), 0u);
}

TEST(CheckClean, Kernel2ReciprocalPotential) {
  check::ScopedChecking checking;
  const hartree::EwaldSystem sys = hartree::rock_salt_cell(3.0, 1.0);
  const hartree::Ewald ewald(sys, 1.0, 8.0, 9.0);
  const ReciprocalTables t = build_reciprocal_tables(ewald);
  const std::vector<Vec3> pts = probe_points(200, 23);
  std::vector<double> host(pts.size());
  std::vector<double> cpe(pts.size());
  reciprocal_potential(t, pts.data(), pts.size(), host.data());
  CpeCluster cluster(sw26010pro());
  reciprocal_potential_cpe(cluster, t, pts.data(), pts.size(), cpe.data());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_DOUBLE_EQ(cpe[i], host[i]) << i;
  }
  EXPECT_EQ(check::total_violations(), 0u);
}

TEST(CheckClean, BatchKernelsN1AndH1) {
  check::ScopedChecking checking;
  CpeCluster c1(sw26010pro());
  CpeCluster c2(sw26010pro());
  const std::vector<BatchShape> batches(50, {40, 200});
  const KernelWorkload n1 = run_density_batches(c1, batches);
  const KernelWorkload h1 = run_hamiltonian_batches(c2, batches);
  EXPECT_GT(n1.total_flops(), 0.0);
  EXPECT_GT(h1.total_flops(), 0.0);
  EXPECT_EQ(check::total_violations(), 0u);
  EXPECT_EQ(check::live_shadow_tiles(), 0);
  EXPECT_EQ(check::live_transfers(), 0);
}

}  // namespace
}  // namespace swraman::sunway
