#include "sunway/rma_reduce.hpp"

#include <random>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::sunway {
namespace {

std::vector<std::vector<Contribution>> random_contributions(
    std::size_t n_cpes, std::size_t array_size, std::size_t per_cpe,
    unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> idx(0, array_size - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<std::vector<Contribution>> c(n_cpes);
  for (auto& list : c) {
    list.resize(per_cpe);
    for (Contribution& x : list) {
      x.index = idx(rng);
      x.value = val(rng);
    }
  }
  return c;
}

struct RmaCase {
  std::size_t n_cpes;
  std::size_t array_size;
  std::size_t per_cpe;
};

class RmaReduceSweep : public ::testing::TestWithParam<RmaCase> {};

TEST_P(RmaReduceSweep, MatchesSerialReduction) {
  const RmaCase c = GetParam();
  const auto contributions =
      random_contributions(c.n_cpes, c.array_size, c.per_cpe, 11);
  std::vector<double> expected(c.array_size, 0.5);
  serial_array_reduction(contributions, expected);
  std::vector<double> got(c.array_size, 0.5);
  const RmaReduceStats stats = rma_array_reduction(contributions, got);
  for (std::size_t i = 0; i < c.array_size; ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-11) << "index " << i;
  }
  EXPECT_DOUBLE_EQ(stats.updates,
                   static_cast<double>(c.n_cpes * c.per_cpe));
  EXPECT_GT(stats.rma_messages, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RmaReduceSweep,
    ::testing::Values(RmaCase{64, 100000, 5000}, RmaCase{64, 512, 100},
                      RmaCase{8, 64, 1000}, RmaCase{1, 1000, 100},
                      RmaCase{64, 63, 10}));

TEST(RmaReduce, BufferCapacityControlsMessageCount) {
  const auto contributions = random_contributions(64, 10000, 2000, 3);
  std::vector<double> a(10000, 0.0);
  std::vector<double> b(10000, 0.0);
  RmaReduceOptions small;
  small.send_buffer_entries = 8;
  RmaReduceOptions large;
  large.send_buffer_entries = 512;
  const RmaReduceStats s_small = rma_array_reduction(contributions, a, small);
  const RmaReduceStats s_large = rma_array_reduction(contributions, b, large);
  // Smaller buffers flush more often.
  EXPECT_GT(s_small.rma_messages, s_large.rma_messages);
  // Same data volume either way.
  EXPECT_DOUBLE_EQ(s_small.updates, s_large.updates);
}

TEST(RmaReduce, BlockCacheLimitsDmaTraffic) {
  // Sorted (spatially local) contributions exercise the block cache: few
  // block swaps; random contributions force many.
  const std::size_t n = 64ull * 2048 * 4;
  std::vector<std::vector<Contribution>> sorted(64);
  for (std::size_t cpe = 0; cpe < 64; ++cpe) {
    for (std::size_t k = 0; k < 1000; ++k) {
      sorted[cpe].push_back({(cpe * 1000 + k) % n, 1.0});
    }
    std::sort(sorted[cpe].begin(), sorted[cpe].end(),
              [](const Contribution& a, const Contribution& b) {
                return a.index < b.index;
              });
  }
  const auto random = random_contributions(64, n, 1000, 77);
  std::vector<double> a(n, 0.0);
  std::vector<double> b(n, 0.0);
  const RmaReduceStats s_sorted = rma_array_reduction(sorted, a);
  const RmaReduceStats s_random = rma_array_reduction(random, b);
  EXPECT_LT(s_sorted.dma_block_transfers, s_random.dma_block_transfers);
}

TEST(RmaReduce, RejectsOutOfRangeIndex) {
  std::vector<std::vector<Contribution>> c(2);
  c[0].push_back({100, 1.0});
  std::vector<double> arr(10, 0.0);
  EXPECT_THROW(rma_array_reduction(c, arr), Error);
  EXPECT_THROW(serial_array_reduction(c, arr), Error);
}

TEST(RmaReduce, IndexValidationReportsIndexAndSize) {
  // Regression: the error must name the offending index and the target
  // size so a corrupted contribution stream is diagnosable from the log.
  std::vector<std::vector<Contribution>> c(1);
  c[0].push_back({42, 1.0});
  std::vector<double> arr(7, 0.0);
  const auto check_message = [](const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("42"), std::string::npos) << what;
    EXPECT_NE(what.find("7"), std::string::npos) << what;
  };
  try {
    rma_array_reduction(c, arr);
    FAIL() << "rma_array_reduction accepted an out-of-range index";
  } catch (const Error& e) {
    check_message(e);
  }
  try {
    serial_array_reduction(c, arr);
    FAIL() << "serial_array_reduction accepted an out-of-range index";
  } catch (const Error& e) {
    check_message(e);
  }
}

TEST(RmaReduce, IndexValidationBoundaries) {
  // index == size is the first invalid value; size - 1 is the last valid.
  std::vector<std::vector<Contribution>> bad(1);
  bad[0].push_back({5, 1.0});
  std::vector<double> arr(5, 0.0);
  EXPECT_THROW(rma_array_reduction(bad, arr), Error);
  EXPECT_THROW(serial_array_reduction(bad, arr), Error);

  std::vector<std::vector<Contribution>> good(1);
  good[0].push_back({4, 2.5});
  std::vector<double> a(5, 0.0);
  std::vector<double> b(5, 0.0);
  rma_array_reduction(good, a);
  serial_array_reduction(good, b);
  EXPECT_DOUBLE_EQ(a[4], 2.5);
  EXPECT_DOUBLE_EQ(b[4], 2.5);

  // Any contribution against an empty target array is invalid.
  std::vector<double> empty;
  EXPECT_THROW(rma_array_reduction(good, empty), Error);
  EXPECT_THROW(serial_array_reduction(good, empty), Error);
}

}  // namespace
}  // namespace swraman::sunway
