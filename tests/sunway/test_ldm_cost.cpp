#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sunway/cost_model.hpp"
#include "sunway/cpe_cluster.hpp"
#include "sunway/ldm.hpp"

namespace swraman::sunway {
namespace {

TEST(LdmArena, AllocatesWithinCapacity) {
  LdmArena ldm(256 * 1024);
  double* a = ldm.allocate<double>(1000);
  ASSERT_NE(a, nullptr);
  a[999] = 3.0;
  EXPECT_DOUBLE_EQ(a[999], 3.0);
  EXPECT_GE(ldm.used(), 8000u);
  EXPECT_LE(ldm.used(), 8192u);
}

TEST(LdmArena, ThrowsOnOverflow) {
  LdmArena ldm(1024);
  EXPECT_NO_THROW(ldm.allocate<double>(100));
  EXPECT_THROW(ldm.allocate<double>(100), Error);
}

TEST(LdmArena, ResetReclaimsSpace) {
  LdmArena ldm(1024);
  ldm.allocate<double>(100);
  ldm.reset();
  EXPECT_EQ(ldm.used(), 0u);
  EXPECT_NO_THROW(ldm.allocate<double>(100));
  // Peak survives reset.
  EXPECT_GE(ldm.peak(), 800u);
}

TEST(CostModel, VariantsImproveMonotonically) {
  // A CSI-like workload: compute-heavy with moderate streaming.
  KernelWorkload w;
  w.name = "csi";
  w.elements = 1e6;
  w.flops_per_element = 700;
  w.stream_bytes_per_element = 180;
  w.irregular_bytes_per_element = 60;
  w.vectorizable_fraction = 0.7;
  const ArchParams sw = sw26010pro();

  const double t_mpe = modeled_time(w, sw, Variant::MpeScalar);
  const double t_tile = modeled_time(w, sw, Variant::CpeTiled);
  const double t_db = modeled_time(w, sw, Variant::CpeTiledDb);
  const double t_simd = modeled_time(w, sw, Variant::CpeTiledDbSimd);
  EXPECT_GT(t_mpe, t_tile);
  EXPECT_GE(t_tile, t_db);
  EXPECT_GE(t_db, t_simd);
  // The overall ballpark of Fig. 12: an order of magnitude or two.
  EXPECT_GT(t_mpe / t_simd, 5.0);
  EXPECT_LT(t_mpe / t_simd, 200.0);
}

TEST(CostModel, DoubleBufferingOverlapsTransfers) {
  // DMA-dominated workload: double buffering hides the compute entirely.
  KernelWorkload w;
  w.elements = 1e6;
  w.flops_per_element = 10;
  w.stream_bytes_per_element = 800;
  const ArchParams sw = sw26010pro();
  const double t_tile = modeled_time(w, sw, Variant::CpeTiled);
  const double t_db = modeled_time(w, sw, Variant::CpeTiledDb);
  EXPECT_LT(t_db, t_tile);
}

TEST(CostModel, SimdHelpsComputeBoundOnly) {
  KernelWorkload compute_bound;
  compute_bound.elements = 1e6;
  compute_bound.flops_per_element = 2000;
  compute_bound.stream_bytes_per_element = 16;
  compute_bound.vectorizable_fraction = 0.9;
  KernelWorkload mem_bound = compute_bound;
  mem_bound.flops_per_element = 5;
  mem_bound.stream_bytes_per_element = 2000;

  const ArchParams sw = sw26010pro();
  const double gain_compute =
      modeled_time(compute_bound, sw, Variant::CpeTiledDb) /
      modeled_time(compute_bound, sw, Variant::CpeTiledDbSimd);
  const double gain_mem = modeled_time(mem_bound, sw, Variant::CpeTiledDb) /
                          modeled_time(mem_bound, sw, Variant::CpeTiledDbSimd);
  EXPECT_GT(gain_compute, 1.5);
  EXPECT_NEAR(gain_mem, 1.0, 1e-9);
}

TEST(CostModel, CpuPerProcessComparison) {
  KernelWorkload w;
  w.elements = 1e7;
  w.flops_per_element = 500;
  w.stream_bytes_per_element = 100;
  // Fig. 14 compares equal MPI-task counts: one Sunway process drives a
  // full core group, one Tianhe-2 process is a single Xeon core (sharing
  // the node's memory bandwidth among 12).
  ArchParams core = xeon_e5_2692v2();
  core.n_pes = 1;
  core.node_mem_bw_gbs /= 12.0;
  const double t_core = modeled_cpu_time(w, core);
  const double t_sw =
      modeled_time(w, sw26010pro(), Variant::CpeTiledDbSimd);
  EXPECT_GT(t_core, 0.0);
  // Per-process: the CG wins by a high-single-digit factor (paper: 7.8-9.7).
  EXPECT_GT(t_core / t_sw, 3.0);
  EXPECT_LT(t_core / t_sw, 40.0);
}

TEST(CostModel, AllreduceModelShape) {
  const ArchParams sw = sw26010pro();
  const double bytes = 8e6;
  // Fig. 15 "before": reduce-scatter + allgather with the local reduction
  // on the MPE; "after": CPE-offloaded pipelined reduction.
  AllreduceModel before;
  before.reduce_scatter = true;
  before.cpe_offload = false;
  AllreduceModel after;
  after.reduce_scatter = true;
  after.cpe_offload = true;
  for (std::size_t p : {256, 1024}) {
    const double t_before = modeled_allreduce_time(bytes, p, sw, before);
    const double t_after = modeled_allreduce_time(bytes, p, sw, after);
    EXPECT_GT(t_before / t_after, 1.5) << "p=" << p;
    EXPECT_LT(t_before / t_after, 6.0) << "p=" << p;
  }
  // Speedup grows with process count (paper Fig. 15's trend).
  const double s256 = modeled_allreduce_time(bytes, 256, sw, before) /
                      modeled_allreduce_time(bytes, 256, sw, after);
  const double s1024 = modeled_allreduce_time(bytes, 1024, sw, before) /
                       modeled_allreduce_time(bytes, 1024, sw, after);
  EXPECT_GT(s1024, s256);
  // Single rank costs nothing.
  EXPECT_DOUBLE_EQ(modeled_allreduce_time(bytes, 1, sw, after), 0.0);
}

TEST(CpeCluster, CountsAggregateAcrossCpes) {
  CpeCluster cluster(sw26010pro());
  cluster.run([](CpeContext& ctx) {
    ctx.charge_flops(100.0);
    std::vector<double> host(64, 1.0);
    ctx.ldm().reset();
    double* tile = ctx.ldm().allocate<double>(64);
    ctx.dma_get(tile, host.data(), 64);
  });
  const CpeCounters total = cluster.total();
  EXPECT_DOUBLE_EQ(total.flops, 6400.0);
  EXPECT_DOUBLE_EQ(total.dma_bytes, 64.0 * 64 * 8);
  EXPECT_DOUBLE_EQ(total.dma_transfers, 64.0);
  const KernelWorkload w = cluster.workload("test", 6400.0, 0.5);
  EXPECT_DOUBLE_EQ(w.flops_per_element, 1.0);
}

TEST(CpeCluster, SliceCoversRangeExactly) {
  CpeCluster cluster(sw26010pro());
  std::vector<int> hits(1000, 0);
  cluster.run([&](CpeContext& ctx) {
    const auto [lo, hi] = ctx.my_slice(1000);
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace swraman::sunway
