#include <gtest/gtest.h>

#include "sunway/arch.hpp"
#include "sunway/cost_model.hpp"

namespace swraman::sunway {
namespace {

TEST(Arch, Sw26010ProParameters) {
  const ArchParams p = sw26010pro();
  EXPECT_EQ(p.n_pes, 64);             // one CPE cluster per CG
  EXPECT_EQ(p.ldm_bytes, 256u * 1024u);
  EXPECT_EQ(p.simd_lanes, 8);         // 512-bit doubles
  EXPECT_GT(p.dma_bw_gbs, 0.0);
  EXPECT_GT(p.mpe_freq_ghz, 0.0);
}

TEST(Arch, XeonParameters) {
  const ArchParams p = xeon_e5_2692v2();
  EXPECT_EQ(p.n_pes, 12);
  EXPECT_EQ(p.simd_lanes, 4);         // 256-bit AVX
  EXPECT_EQ(p.ldm_bytes, 0u);         // cache-based: no scratchpad
  EXPECT_DOUBLE_EQ(p.dma_bw_gbs, 0.0);
}

TEST(Arch, VariantNames) {
  EXPECT_STREQ(variant_name(Variant::MpeScalar), "MPE");
  EXPECT_STREQ(variant_name(Variant::CpeTiled), "Tiling");
  EXPECT_STREQ(variant_name(Variant::CpeTiledDb), "Tiling+DB");
  EXPECT_STREQ(variant_name(Variant::CpeTiledDbSimd), "Tiling+DB+SIMD");
}

TEST(CostModel, ZeroWorkloadCostsNothing) {
  KernelWorkload w;
  w.elements = 0;
  for (Variant v : {Variant::MpeScalar, Variant::CpeTiled,
                    Variant::CpeTiledDb, Variant::CpeTiledDbSimd}) {
    EXPECT_DOUBLE_EQ(modeled_time(w, sw26010pro(), v), 0.0);
  }
  EXPECT_DOUBLE_EQ(modeled_cpu_time(w, xeon_e5_2692v2()), 0.0);
}

TEST(CostModel, TimeScalesLinearlyWithElements) {
  KernelWorkload w;
  w.elements = 1e6;
  w.flops_per_element = 500;
  w.stream_bytes_per_element = 100;
  KernelWorkload w2 = w;
  w2.elements = 2e6;
  // Launch overhead makes it slightly sublinear; ratio within [1.9, 2.0].
  const double r = modeled_time(w2, sw26010pro(), Variant::CpeTiledDbSimd) /
                   modeled_time(w, sw26010pro(), Variant::CpeTiledDbSimd);
  EXPECT_GT(r, 1.85);
  EXPECT_LE(r, 2.0 + 1e-9);
}

TEST(CostModel, ReuseFactorReducesDmaBoundTime) {
  KernelWorkload w;
  w.elements = 1e6;
  w.flops_per_element = 5;
  w.stream_bytes_per_element = 2000;  // firmly DMA-bound
  KernelWorkload reused = w;
  reused.cpe_reuse_factor = 2.0;
  EXPECT_LT(modeled_time(reused, sw26010pro(), Variant::CpeTiledDb),
            0.6 * modeled_time(w, sw26010pro(), Variant::CpeTiledDb));
  // The MPE baseline ignores the scratchpad reuse.
  EXPECT_DOUBLE_EQ(modeled_time(reused, sw26010pro(), Variant::MpeScalar),
                   modeled_time(w, sw26010pro(), Variant::MpeScalar));
}

}  // namespace
}  // namespace swraman::sunway
