#include "fmm/kernel.hpp"

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "grid/ylm.hpp"

// Operator-chain exactness against direct 1/r sums of random point charges,
// plus the analytic truncation bound the backend threads through p / theta.
// Point charges are the sharpest probe: each carries moments of every
// degree, so any phase or normalization slip in one translation shows up
// immediately in the evaluated potential.

namespace swraman::fmm {
namespace {

struct Charges {
  std::vector<Vec3> x;
  std::vector<double> q;

  [[nodiscard]] double direct(const Vec3& t) const {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) v += q[i] / (t - x[i]).norm();
    return v;
  }
};

Charges ball_charges(const Vec3& c, double radius, int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Charges ch;
  for (int i = 0; i < n; ++i) {
    ch.x.push_back({c.x + radius * u(rng), c.y + radius * u(rng),
                    c.z + radius * u(rng)});
    ch.q.push_back(u(rng));
  }
  return ch;
}

TEST(FmmKernel, MonopoleReducesToCoulomb) {
  const FmmKernel K(6);
  FmmKernel::Workspace ws;
  std::vector<Cplx> M(nm_count(6), Cplx{});
  K.p2m(2.5, {0.0, 0.0, 0.0}, M.data(), ws);
  for (const Vec3& d : {Vec3{3.0, 0.0, 0.0}, Vec3{1.0, -2.0, 0.5}}) {
    EXPECT_NEAR(K.m2p(M.data(), d, ws), 2.5 / d.norm(), 1e-14);
  }
}

// The full Greengard chain at p = 12 on charges in a ball of radius ~0.7:
// every translated evaluation must agree with the direct sum to machine
// precision at well-separated targets (the series converge geometrically,
// so at p = 12 the truncation tail is below the double noise floor here).
TEST(FmmKernel, TranslationChainMatchesDirectSum) {
  const int p = 12;
  const FmmKernel K(p);
  FmmKernel::Workspace ws;
  const Vec3 c1{0.1, -0.2, 0.05};
  const Charges ch = ball_charges(c1, 0.4, 20, 1234);
  const std::size_t nm = nm_count(p);

  std::vector<Cplx> M1(nm, Cplx{});
  for (std::size_t i = 0; i < ch.x.size(); ++i) {
    K.p2m(ch.q[i], ch.x[i] - c1, M1.data(), ws);
  }

  const Vec3 far{5.0, 4.0, -3.0};
  EXPECT_NEAR(K.m2p(M1.data(), far - c1, ws), ch.direct(far), 1e-11);

  // M2M: shift the multipole to a nearby center.
  const Vec3 c2{-0.3, 0.25, 0.4};
  std::vector<Cplx> M2(nm, Cplx{});
  K.m2m(M1.data(), c1 - c2, M2.data(), ws);
  EXPECT_NEAR(K.m2p(M2.data(), far - c2, ws), ch.direct(far), 1e-9);

  // M2L: local expansion about a well-separated center.
  const Vec3 ct{6.0, 5.0, -4.0};
  std::vector<Cplx> L1(nm, Cplx{});
  K.m2l(M1.data(), c1 - ct, L1.data(), ws);
  const Vec3 t1{6.3, 4.8, -4.2};
  EXPECT_NEAR(K.l2p(L1.data(), t1 - ct, ws), ch.direct(t1), 1e-11);

  // L2L: push the local expansion to a child center.
  const Vec3 ct2{6.2, 4.9, -4.1};
  std::vector<Cplx> L2(nm, Cplx{});
  K.l2l(L1.data(), ct2 - ct, L2.data(), ws);
  EXPECT_NEAR(K.l2p(L2.data(), t1 - ct2, ws), ch.direct(t1), 1e-11);
}

TEST(FmmKernel, OperatorsAccumulateLinearly) {
  // Running p2m twice with half the charge equals one full-charge p2m;
  // m2l of the summed multipole equals the sum of the m2l's.
  const int p = 8;
  const FmmKernel K(p);
  FmmKernel::Workspace ws;
  const std::size_t nm = nm_count(p);
  const Vec3 d{0.3, -0.2, 0.4};
  std::vector<Cplx> Ma(nm, Cplx{}), Mb(nm, Cplx{});
  K.p2m(1.0, d, Ma.data(), ws);
  K.p2m(0.5, d, Mb.data(), ws);
  K.p2m(0.5, d, Mb.data(), ws);
  for (std::size_t i = 0; i < nm; ++i) {
    EXPECT_NEAR(std::abs(Ma[i] - Mb[i]), 0.0, 1e-14);
  }
}

// Converting an atom's real Delley moments must reproduce the same complex
// multipole that p2m builds from the underlying charges (up to the lmax
// truncation): this is the contract that makes a cell multipole agree with
// MultipolePotential's analytic far field.
TEST(FmmKernel, DelleyMomentConversionMatchesPointMoments) {
  const int p = 12;
  const int lmax = 6;
  const FmmKernel K(p);
  FmmKernel::Workspace ws;
  const Vec3 c1{0.1, -0.2, 0.05};
  const Charges ch = ball_charges(c1, 0.4, 20, 1234);
  const std::size_t nm = nm_count(p);

  std::vector<Cplx> M1(nm, Cplx{});
  for (std::size_t i = 0; i < ch.x.size(); ++i) {
    K.p2m(ch.q[i], ch.x[i] - c1, M1.data(), ws);
  }

  // Real moments q_lm = sum_i q_i r_i^l Y_lm(r_i) in the repo convention.
  std::vector<double> qlm(grid::n_lm(lmax), 0.0);
  std::vector<double> y;
  for (std::size_t i = 0; i < ch.x.size(); ++i) {
    const Vec3 d = ch.x[i] - c1;
    grid::real_ylm(d, lmax, y);
    double rl = 1.0;
    for (int l = 0; l <= lmax; ++l) {
      for (int m = -l; m <= l; ++m) {
        qlm[grid::lm_index(l, m)] += ch.q[i] * rl * y[grid::lm_index(l, m)];
      }
      rl *= d.norm();
    }
  }
  std::vector<Cplx> Ma(nm, Cplx{});
  K.atom_moments_to_multipole(qlm.data(), lmax, Ma.data());
  for (int l = 0; l <= lmax; ++l) {
    for (int m = -l; m <= l; ++m) {
      EXPECT_NEAR(std::abs(Ma[nm_index(l, m)] - M1[nm_index(l, m)]), 0.0,
                  1e-13)
          << "l=" << l << " m=" << m;
    }
  }
}

TEST(FmmKernel, ErrorBoundDominatesObservedErrorAndDecaysWithOrder) {
  const Vec3 c1{0.0, 0.0, 0.0};
  const Charges ch = ball_charges(c1, 0.5, 30, 77);
  double ra = 0.0;
  double qa = 0.0;  // aggregate absolute monopole: the abs_moment for l = 0
  for (std::size_t i = 0; i < ch.x.size(); ++i) {
    ra = std::max(ra, (ch.x[i] - c1).norm());
    qa += std::abs(ch.q[i]);
  }
  const Vec3 ct{4.0, 1.0, -2.0};
  const double rb = 0.6;
  const double dist = (ct - c1).norm();

  std::mt19937 rng(99);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<Vec3> targets;
  for (int i = 0; i < 40; ++i) {
    const Vec3 t{ct.x + rb * u(rng) / 1.8, ct.y + rb * u(rng) / 1.8,
                 ct.z + rb * u(rng) / 1.8};
    if ((t - ct).norm() <= rb) targets.push_back(t);
  }
  ASSERT_GE(targets.size(), 10u);

  double prev_bound = std::numeric_limits<double>::infinity();
  for (int p : {4, 6, 8, 12}) {
    SCOPED_TRACE("p=" + std::to_string(p));
    const FmmKernel K(p);
    FmmKernel::Workspace ws;
    std::vector<Cplx> M(nm_count(p), Cplx{});
    for (std::size_t i = 0; i < ch.x.size(); ++i) {
      K.p2m(ch.q[i], ch.x[i] - c1, M.data(), ws);
    }
    std::vector<Cplx> L(nm_count(p), Cplx{});
    K.m2l(M.data(), c1 - ct, L.data(), ws);
    double err = 0.0;
    for (const Vec3& t : targets) {
      err = std::max(err, std::abs(K.l2p(L.data(), t - ct, ws) -
                                   ch.direct(t)));
    }
    const double bound = m2l_error_bound({qa}, ra, rb, dist, p);
    EXPECT_TRUE(std::isfinite(bound));
    EXPECT_GT(bound, 0.0);
    EXPECT_LE(err, bound);
    EXPECT_LT(bound, prev_bound);
    prev_bound = bound;
  }
}

TEST(FmmKernel, ErrorBoundIsInfiniteWhenCellsOverlap) {
  // gap = dist - ra - rb <= 0 violates the MAC precondition: no finite
  // statement is possible and the bound must say so.
  const double b = m2l_error_bound({1.0}, 1.0, 1.0, 1.5, 6);
  EXPECT_TRUE(std::isinf(b));
}

TEST(FmmKernel, FlopModelsScaleWithOrder) {
  const FmmKernel k4(4);
  const FmmKernel k8(8);
  EXPECT_GT(k4.m2l_flops(), 0.0);
  EXPECT_GT(k8.m2l_flops(), k4.m2l_flops());
  EXPECT_GT(k8.l2p_flops(), k4.l2p_flops());
}

}  // namespace
}  // namespace swraman::fmm
