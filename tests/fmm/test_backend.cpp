#include "fmm/backend.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "core/molecules.hpp"
#include "grid/atom_grid.hpp"

// The drop-in contract of the FMM Hartree backend, on a real molecular
// grid: Direct is bitwise the plain solver, Fmm agrees with Direct within
// its own tracked analytic bound across the (order, theta) sweep, the CPE
// offload is arithmetically identical to the host path, and Auto follows
// the cost model.

namespace swraman::fmm {
namespace {

const grid::MolecularGrid& cluster_grid() {
  // Coarse radial mesh: the outer shell radius (~4 bohr here) is the
  // far-field validity reach, so a 27-molecule cluster already has plenty
  // of well-separated (M2L) cell pairs next to a substantial near field.
  static const grid::MolecularGrid g = [] {
    grid::GridSettings s;
    s.level = grid::GridLevel::Light;
    s.n_radial = 6;
    s.angular_order = 3;
    return grid::build_molecular_grid(molecules::water_cluster(27), s);
  }();
  return g;
}

// Superposition of per-atom normalized Gaussians scaled by Z — smooth,
// atom-centered, and multipole-rich enough to exercise every channel.
const std::vector<double>& cluster_density() {
  static const std::vector<double> n = [] {
    const grid::MolecularGrid& g = cluster_grid();
    std::vector<double> d(g.size(), 0.0);
    for (std::size_t p = 0; p < g.size(); ++p) {
      for (const grid::AtomSite& a : g.atoms) {
        const double ex = (a.z > 1) ? 1.8 : 0.9;
        d[p] += static_cast<double>(a.z) * std::pow(ex / kPi, 1.5) *
                std::exp(-ex * (g.points[p] - a.pos).norm2());
      }
    }
    return d;
  }();
  return n;
}

TEST(HartreeBackendDispatch, DirectIsBitwiseThePlainSolver) {
  const HartreeContext ctx(cluster_grid(), 6, HartreeBackend::Direct,
                           FmmOptions{});
  const std::vector<double> via_ctx = ctx.solve_on_grid(cluster_density());
  const std::vector<double> plain =
      ctx.solver().solve_on_grid(cluster_density());
  ASSERT_EQ(via_ctx.size(), plain.size());
  EXPECT_EQ(std::memcmp(via_ctx.data(), plain.data(),
                        plain.size() * sizeof(double)),
            0);
  EXPECT_EQ(ctx.stats().resolved, HartreeBackend::Direct);
}

struct SweepCase {
  int order;
  double theta;
};

class FmmVsDirect : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FmmVsDirect, AgreesWithinTheTrackedAnalyticBound) {
  const SweepCase sc = GetParam();
  const int lmax = std::min(sc.order, 6);
  FmmOptions opt;
  opt.order = sc.order;
  opt.theta = sc.theta;
  opt.track_error_bound = true;
  const HartreeContext ctx(cluster_grid(), lmax, HartreeBackend::Fmm, opt);

  const std::vector<double> direct =
      ctx.solver().solve_on_grid(cluster_density());
  const std::vector<double> fast = ctx.solve_on_grid(cluster_density());
  ASSERT_EQ(fast.size(), direct.size());

  double err = 0.0;
  double vmax = 0.0;
  for (std::size_t i = 0; i < fast.size(); ++i) {
    err = std::max(err, std::abs(fast[i] - direct[i]));
    vmax = std::max(vmax, std::abs(direct[i]));
  }
  const FmmStats& st = ctx.stats();
  EXPECT_EQ(st.resolved, HartreeBackend::Fmm);
  EXPECT_GT(st.n_m2l_pairs, 0u);
  EXPECT_GT(st.n_p2p_pairs, 0u);
  // The observed far-field error must sit under the analytic truncation
  // bound (the whole point of threading p / theta through the bound)...
  EXPECT_GT(st.max_error_bound, 0.0);
  EXPECT_LE(err, st.max_error_bound + 1e-14);
  // ...and the accuracy must be usable, not vacuous. The slowest-decaying
  // contribution is the degree-lmax atom moments (error ~ theta^{p+1-l}),
  // so at p = 8 with lmax = 6 the relative error sits around 1e-5.
  if (sc.order >= 8) {
    EXPECT_LT(err, 1e-4 * vmax);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrderThetaSweep, FmmVsDirect,
    ::testing::Values(SweepCase{4, 0.45}, SweepCase{4, 0.65},
                      SweepCase{6, 0.45}, SweepCase{6, 0.65},
                      SweepCase{8, 0.45}, SweepCase{8, 0.65}));

TEST(HartreeBackendDispatch, TrackedBoundTightensWithOrder) {
  double prev = 0.0;
  for (int p : {4, 8}) {
    FmmOptions opt;
    opt.order = p;
    opt.track_error_bound = true;
    const HartreeContext ctx(cluster_grid(), 4, HartreeBackend::Fmm, opt);
    (void)ctx.solve_on_grid(cluster_density());
    if (p == 4) {
      prev = ctx.stats().max_error_bound;
    } else {
      EXPECT_LT(ctx.stats().max_error_bound, prev);
    }
  }
}

TEST(HartreeBackendDispatch, CpeOffloadMatchesHostPathBitwise) {
  // The CPE lambdas run the same arithmetic in the same order as the host
  // fallback (LDM staging is memcpy); any divergence is a kernel bug.
  FmmOptions cpe;
  cpe.use_cpe = true;
  FmmOptions host;
  host.use_cpe = false;
  const HartreeContext a(cluster_grid(), 6, HartreeBackend::Fmm, cpe);
  const HartreeContext b(cluster_grid(), 6, HartreeBackend::Fmm, host);
  const std::vector<double> va = a.solve_on_grid(cluster_density());
  const std::vector<double> vb = b.solve_on_grid(cluster_density());
  ASSERT_EQ(va.size(), vb.size());
  EXPECT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)), 0);
}

TEST(HartreeBackendDispatch, AutoFollowsTheCostModel) {
  const HartreeContext ctx(cluster_grid(), 6, HartreeBackend::Auto,
                           FmmOptions{});
  const std::vector<double> v = ctx.solve_on_grid(cluster_density());
  ASSERT_EQ(v.size(), cluster_grid().size());
  const FmmStats& st = ctx.stats();
  EXPECT_GT(st.direct_flops, 0.0);
  EXPECT_GT(st.fmm_flops, 0.0);
  const HartreeBackend expect = st.fmm_flops < st.direct_flops
                                    ? HartreeBackend::Fmm
                                    : HartreeBackend::Direct;
  EXPECT_EQ(st.resolved, expect);
}

TEST(HartreeBackendDispatch, FmmOrderBelowLmaxIsRejected) {
  FmmOptions opt;
  opt.order = 4;
  EXPECT_THROW(HartreeContext(cluster_grid(), 6, HartreeBackend::Fmm, opt),
               std::exception);
}

}  // namespace
}  // namespace swraman::fmm
