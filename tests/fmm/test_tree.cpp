#include "fmm/tree.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

// Property-based octree invariants: whatever the point cloud, the Morton
// build must partition the bodies into leaves exactly once, keep tree order
// key-sorted, and nest child cubes / bounding radii inside their parents.

namespace swraman::fmm {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, unsigned seed, double scale) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-scale, scale);
  std::vector<Vec3> pts(n);
  for (Vec3& p : pts) p = {u(rng), u(rng), u(rng)};
  return pts;
}

TEST(MortonKey, InterleavesAxesXLowest) {
  EXPECT_EQ(morton_key(1, 0, 0), 1u);
  EXPECT_EQ(morton_key(0, 1, 0), 2u);
  EXPECT_EQ(morton_key(0, 0, 1), 4u);
  EXPECT_EQ(morton_key(2, 0, 0), 8u);
  EXPECT_EQ(morton_key(3, 3, 3), 63u);
  // The top lattice bit of z lands in the key's highest (62nd) bit.
  EXPECT_EQ(morton_key(0, 0, 1u << 20), 1ull << 62);
}

TEST(MortonKey, AxesDilateIndependently) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint32_t> u(0, (1u << 21) - 1);
  for (int i = 0; i < 256; ++i) {
    const std::uint32_t x = u(rng);
    const std::uint32_t y = u(rng);
    const std::uint32_t z = u(rng);
    EXPECT_EQ(morton_key(x, y, z), (morton_key(x, 0, 0) | morton_key(0, y, 0) |
                                    morton_key(0, 0, z)));
  }
}

struct TreeCase {
  std::size_t n;
  unsigned seed;
  std::size_t leaf_size;
  bool with_extent;
};

class OctreeProperty : public ::testing::TestWithParam<TreeCase> {};

TEST_P(OctreeProperty, Invariants) {
  const TreeCase tc = GetParam();
  const std::vector<Vec3> pts = random_cloud(tc.n, tc.seed, 4.0);
  std::vector<double> extent;
  if (tc.with_extent) {
    std::mt19937 rng(tc.seed + 1);
    std::uniform_real_distribution<double> ue(0.0, 0.5);
    extent.resize(tc.n);
    for (double& e : extent) e = ue(rng);
  }
  OctreeOptions opt;
  opt.leaf_size = tc.leaf_size;
  const Octree tree(pts, extent, opt);
  const std::vector<Cell>& cells = tree.cells();
  ASSERT_FALSE(cells.empty());
  ASSERT_EQ(tree.n_bodies(), tc.n);

  // body_order is a permutation of [0, n).
  std::vector<std::size_t> ord = tree.body_order();
  ASSERT_EQ(ord.size(), tc.n);
  std::sort(ord.begin(), ord.end());
  for (std::size_t i = 0; i < tc.n; ++i) EXPECT_EQ(ord[i], i);

  // Morton keys ascend in tree order, and every body sits inside the root
  // cube the keys were quantized against.
  ASSERT_EQ(tree.keys().size(), tc.n);
  EXPECT_TRUE(std::is_sorted(tree.keys().begin(), tree.keys().end()));
  for (const Vec3& p : pts) {
    EXPECT_LE(std::abs(p.x - tree.box_center().x), tree.box_half() + 1e-9);
    EXPECT_LE(std::abs(p.y - tree.box_center().y), tree.box_half() + 1e-9);
    EXPECT_LE(std::abs(p.z - tree.box_center().z), tree.box_half() + 1e-9);
  }

  // Root covers the full body range.
  EXPECT_EQ(cells[tree.root()].first_body, 0u);
  EXPECT_EQ(cells[tree.root()].n_bodies, tc.n);
  EXPECT_EQ(cells[tree.root()].level, 0);

  std::size_t n_leaves = 0;
  std::vector<int> leaf_hits(tc.n, 0);  // per tree-order slot
  int max_level = 0;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& cell = cells[ci];
    max_level = std::max(max_level, cell.level);
    if (ci != tree.root()) {
      // Parent-before-children layout, level increments by one, child cube
      // geometrically nested in the parent cube.
      ASSERT_LT(cell.parent, ci);
      const Cell& par = cells[cell.parent];
      EXPECT_EQ(cell.level, par.level + 1);
      EXPECT_NEAR(cell.half, 0.5 * par.half, 1e-12 * par.half);
      EXPECT_LE(std::abs(cell.center.x - par.center.x) + cell.half,
                par.half * (1.0 + 1e-12));
      EXPECT_LE(std::abs(cell.center.y - par.center.y) + cell.half,
                par.half * (1.0 + 1e-12));
      EXPECT_LE(std::abs(cell.center.z - par.center.z) + cell.half,
                par.half * (1.0 + 1e-12));
      // Child body range nested in the parent range.
      EXPECT_GE(cell.first_body, par.first_body);
      EXPECT_LE(cell.first_body + cell.n_bodies,
                par.first_body + par.n_bodies);
    }
    // Geometric radius covers every member body; the reach additionally
    // covers each body's extent (and collapses to the radius without one).
    EXPECT_GE(cell.reach, cell.radius);
    for (std::size_t b = cell.first_body; b < cell.first_body + cell.n_bodies;
         ++b) {
      const std::size_t orig = tree.body_order()[b];
      const double d = (pts[orig] - cell.center).norm();
      EXPECT_LE(d, cell.radius * (1.0 + 1e-12) + 1e-300);
      const double need = d + (extent.empty() ? 0.0 : extent[orig]);
      EXPECT_LE(need, cell.reach * (1.0 + 1e-12) + 1e-300);
    }
    if (extent.empty()) {
      EXPECT_DOUBLE_EQ(cell.reach, cell.radius);
    }
    if (cell.is_leaf()) {
      ++n_leaves;
      EXPECT_EQ(cell.first_child, kNoCell);
      for (std::size_t b = cell.first_body;
           b < cell.first_body + cell.n_bodies; ++b) {
        leaf_hits[b] += 1;
      }
    } else {
      // Children are contiguous and tile the parent's body range exactly.
      ASSERT_GE(cell.n_children, 1);
      ASSERT_LE(cell.n_children, 8);
      std::size_t covered = 0;
      std::size_t expect_first = cell.first_body;
      for (int k = 0; k < cell.n_children; ++k) {
        const Cell& ch = cells[cell.first_child + static_cast<std::size_t>(k)];
        EXPECT_EQ(ch.parent, ci);
        EXPECT_EQ(ch.first_body, expect_first);
        expect_first += ch.n_bodies;
        covered += ch.n_bodies;
      }
      EXPECT_EQ(covered, cell.n_bodies);
    }
  }
  EXPECT_EQ(n_leaves, tree.n_leaves());
  EXPECT_EQ(max_level, tree.depth());
  EXPECT_LE(tree.depth(), opt.max_depth);
  // Every body lands in exactly one leaf.
  for (std::size_t b = 0; b < tc.n; ++b) EXPECT_EQ(leaf_hits[b], 1);
}

INSTANTIATE_TEST_SUITE_P(
    Clouds, OctreeProperty,
    ::testing::Values(TreeCase{1, 3, 8, false}, TreeCase{17, 11, 4, true},
                      TreeCase{256, 5, 16, true}, TreeCase{1000, 42, 8, false},
                      TreeCase{333, 9, 1, true}, TreeCase{64, 77, 64, false}));

TEST(Octree, CoincidentBodiesTerminateAtTheDepthCap) {
  // All bodies share one Morton key, so no level can separate them; the
  // build must bottom out at max_depth with every body still in a leaf.
  const std::vector<Vec3> pts(50, Vec3{1.0, -2.0, 0.5});
  OctreeOptions opt;
  opt.leaf_size = 2;
  const Octree tree(pts, {}, opt);
  EXPECT_LE(tree.depth(), opt.max_depth);
  std::size_t in_leaves = 0;
  for (const Cell& c : tree.cells()) {
    if (c.is_leaf()) in_leaves += c.n_bodies;
  }
  EXPECT_EQ(in_leaves, pts.size());
}

TEST(Octree, LeafSizeIsRespectedForSeparablePoints) {
  // Distinct lattice positions can always be separated, so no leaf may
  // exceed the configured occupancy.
  std::vector<Vec3> pts;
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      for (int k = 0; k < 6; ++k)
        pts.push_back({1.7 * i, 1.7 * j, 1.7 * k});
  OctreeOptions opt;
  opt.leaf_size = 8;
  const Octree tree(pts, {}, opt);
  for (const Cell& c : tree.cells()) {
    if (c.is_leaf()) {
      EXPECT_LE(c.n_bodies, opt.leaf_size);
    }
  }
}

}  // namespace
}  // namespace swraman::fmm
