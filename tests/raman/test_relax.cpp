#include "raman/relax.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "core/molecules.hpp"

namespace swraman::raman {
namespace {

TEST(EnergyGradient, H2PointsDownhillTowardMinimum) {
  // Stretched H2: the gradient must pull the atoms together.
  const std::vector<grid::AtomSite> stretched = molecules::h2(1.9);
  const std::vector<double> g = energy_gradient(stretched, {}, 0.005);
  ASSERT_EQ(g.size(), 6u);
  // dE/dz of atom 1 (at z = 1.9) positive bond-restoring force means
  // dE/dz1 > 0 (moving atom 1 further out raises E).
  EXPECT_GT(g[5], 0.01);
  EXPECT_LT(g[2], -0.01);
  // Perpendicular components vanish by symmetry.
  EXPECT_NEAR(g[0], 0.0, 2e-3);
  EXPECT_NEAR(g[1], 0.0, 2e-3);
}

TEST(Relax, H2FindsTheBindingMinimum) {
  RelaxOptions opt;
  const RelaxResult res = relax_geometry(molecules::h2(1.2), opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.max_force, opt.force_tol);
  const double bond = distance(res.atoms[0].pos, res.atoms[1].pos);
  // The minimal+pol NAO LDA minimum sits near 1.45 Bohr.
  EXPECT_GT(bond, 1.30);
  EXPECT_LT(bond, 1.85);  // minimal NAO LDA overbinds long
  // Energy at the minimum is below the starting point.
  scf::ScfEngine start(molecules::h2(1.2), opt.scf);
  EXPECT_LT(res.energy, start.solve().total_energy);
}

TEST(Relax, ConvergesFromBothSidesToSameBond) {
  RelaxOptions opt;
  const RelaxResult a = relax_geometry(molecules::h2(1.2), opt);
  const RelaxResult b = relax_geometry(molecules::h2(1.8), opt);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  const double bond_a = distance(a.atoms[0].pos, a.atoms[1].pos);
  const double bond_b = distance(b.atoms[0].pos, b.atoms[1].pos);
  EXPECT_NEAR(bond_a, bond_b, 0.03);
}

TEST(Relax, AlreadyRelaxedGeometryIsANoOp) {
  RelaxOptions opt;
  const RelaxResult first = relax_geometry(molecules::h2(1.4), opt);
  const RelaxResult again = relax_geometry(first.atoms, opt);
  EXPECT_TRUE(again.converged);
  EXPECT_LE(again.iterations, 2);
  EXPECT_NEAR(again.energy, first.energy, 1e-6);
}

TEST(Relax, RejectsEmptyInput) {
  EXPECT_THROW(relax_geometry({}, {}), Error);
}

}  // namespace
}  // namespace swraman::raman
