#include "raman/bec.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfpt/dfpt_engine.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"
#include "scf/scf_engine.hpp"

// The Born-effective-charge fast tier (raman/bec.hpp): stencil algebra on
// synthetic quadratic force fields, the coarse-grid plumbing (field-force
// accounting, checkpoint kill/replay), and the golden accuracy-vs-speed
// gate proving the 13-point tier against full DFPT on water.

namespace swraman::raman {
namespace {

std::vector<grid::AtomSite> h2() {
  return {{1, {0.0, 0.0, 0.0}}, {1, {0.0, 0.0, 1.45}}};
}

std::vector<grid::AtomSite> water() {
  return {{8, {0.0, 0.0, 0.3268247149}},
          {1, {1.2518316921, 0.0, 0.9437281316}},
          {1, {-1.2518316921, 0.0, 0.9437281316}}};
}

// Coarse plumbing grid: fast, qualitative only (see the accuracy envelope
// note in bec.hpp).
BecOptions coarse_options() {
  BecOptions opt;
  opt.vibrations.scf.grid.n_radial = 16;
  opt.vibrations.scf.grid.angular_order = 7;
  return opt;
}

// Synthetic records with forces exactly quadratic in the field,
//   F_k(E) = f0_k + sum_a Z(k,a) E_a + 1/2 sum_ab A(k,ab) E_a E_b,
// which the 13-point stencil differentiates without truncation error.
std::vector<GeometryRecord> quadratic_records(const linalg::Matrix& z,
                                              const linalg::Matrix& a,
                                              double e) {
  const std::size_t n_coords = z.rows();
  std::vector<GeometryRecord> records(
      static_cast<std::size_t>(n_field_points()));
  for (int idx = 0; idx < n_field_points(); ++idx) {
    const Vec3 field = field_vector(idx, e);
    const double ef[3] = {field.x, field.y, field.z};
    GeometryRecord& rec = records[static_cast<std::size_t>(idx)];
    rec.forces.resize(n_coords);
    for (std::size_t k = 0; k < n_coords; ++k) {
      double f = 0.125 * static_cast<double>(k + 1);  // field-free offset
      for (std::size_t ai = 0; ai < 3; ++ai) {
        f += z(k, ai) * ef[ai];
        for (std::size_t bi = 0; bi < 3; ++bi) {
          f += 0.5 * a(k, 3 * ai + bi) * ef[ai] * ef[bi];
        }
      }
      rec.forces[k] = f;
    }
  }
  return records;
}

TEST(Bec, StencilIsThePaperThirteenPoints) {
  ASSERT_EQ(n_field_points(), 13);
  EXPECT_EQ(field_direction(0), (std::array<int, 3>{0, 0, 0}));
  // Signed axes come in +/- pairs, axis a at indices 1+2a / 2+2a.
  for (int a = 0; a < 3; ++a) {
    const std::array<int, 3> plus = field_direction(1 + 2 * a);
    const std::array<int, 3> minus = field_direction(2 + 2 * a);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(plus[static_cast<std::size_t>(i)], i == a ? 1 : 0);
      EXPECT_EQ(minus[static_cast<std::size_t>(i)],
                -plus[static_cast<std::size_t>(i)]);
    }
  }
  // Pair points are +/- (e_a + e_b) with two nonzero entries.
  std::set<std::array<int, 3>> seen;
  for (int idx = 7; idx < 13; ++idx) {
    const std::array<int, 3> d = field_direction(idx);
    int nonzero = 0;
    for (int v : d) nonzero += v != 0;
    EXPECT_EQ(nonzero, 2) << "pair stencil point " << idx;
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six signed pairs distinct
  const Vec3 v = field_vector(1, 0.01);
  EXPECT_DOUBLE_EQ(v.x, 0.01);
  EXPECT_DOUBLE_EQ(v.y, 0.0);
  EXPECT_THROW(field_direction(13), Error);
  EXPECT_THROW(field_direction(-1), Error);
}

TEST(Bec, StencilRecoversQuadraticForceFieldExactly) {
  const std::size_t n_coords = 6;
  linalg::Matrix z(n_coords, 3);
  linalg::Matrix a(n_coords, 9);
  for (std::size_t k = 0; k < n_coords; ++k) {
    for (std::size_t j = 0; j < 3; ++j) {
      z(k, j) = 0.3 * static_cast<double>(k) - 0.7 * static_cast<double>(j);
    }
    for (std::size_t ai = 0; ai < 3; ++ai) {
      for (std::size_t bi = ai; bi < 3; ++bi) {
        const double v = 0.11 * static_cast<double>(k + 1) +
                         0.05 * static_cast<double>(ai + 2 * bi);
        a(k, 3 * ai + bi) = v;
        a(k, 3 * bi + ai) = v;  // d^2F/dE_a dE_b is symmetric
      }
    }
  }
  const double e = 1e-2;
  const std::vector<GeometryRecord> records = quadratic_records(z, a, e);
  linalg::Matrix dalpha;
  linalg::Matrix dmu;
  bec_derivatives(records, e, n_coords, /*enforce_sum_rule=*/false, &dalpha,
                  &dmu);
  for (std::size_t k = 0; k < n_coords; ++k) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(dmu(k, j), z(k, j), 1e-10) << k << "," << j;
    }
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_NEAR(dalpha(k, j), a(k, j), 1e-8) << k << "," << j;
      // The stencil fills both (a,b) and (b,a) from one cross formula.
      EXPECT_EQ(dalpha(k, 3 * (j % 3) + j / 3), dalpha(k, j));
    }
  }
}

TEST(Bec, SumRuleProjectionZeroesPerDirectionColumnSums) {
  const std::size_t n_coords = 9;  // 3 atoms
  linalg::Matrix z(n_coords, 3);
  linalg::Matrix a(n_coords, 9);
  std::uint64_t s = 42;
  const auto next = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(s >> 11) * 0x1.0p-53 - 0.5;
  };
  for (std::size_t k = 0; k < n_coords; ++k) {
    for (std::size_t j = 0; j < 3; ++j) z(k, j) = next();
    for (std::size_t ai = 0; ai < 3; ++ai) {
      for (std::size_t bi = ai; bi < 3; ++bi) {
        const double v = next();
        a(k, 3 * ai + bi) = v;
        a(k, 3 * bi + ai) = v;
      }
    }
  }
  const double e = 1e-2;
  linalg::Matrix dalpha;
  linalg::Matrix dmu;
  bec_derivatives(quadratic_records(z, a, e), e, n_coords, true, &dalpha,
                  &dmu);
  // Translation sum rule: summing any column over the atoms, per
  // Cartesian displacement direction, gives zero after the projection.
  for (int c = 0; c < 3; ++c) {
    for (std::size_t j = 0; j < 9; ++j) {
      double sum = 0.0;
      for (std::size_t at = 0; at < 3; ++at) {
        sum += dalpha(3 * at + static_cast<std::size_t>(c), j);
      }
      EXPECT_NEAR(sum, 0.0, 1e-12);
    }
    for (std::size_t j = 0; j < 3; ++j) {
      double sum = 0.0;
      for (std::size_t at = 0; at < 3; ++at) {
        sum += dmu(3 * at + static_cast<std::size_t>(c), j);
      }
      EXPECT_NEAR(sum, 0.0, 1e-12);
    }
  }
}

TEST(Bec, RejectsMalformedInputs) {
  std::vector<GeometryRecord> records(13);
  for (auto& r : records) r.forces.assign(6, 0.0);
  linalg::Matrix da;
  linalg::Matrix dm;
  std::vector<GeometryRecord> short_records(records.begin(),
                                            records.end() - 1);
  EXPECT_THROW(bec_derivatives(short_records, 1e-2, 6, true, &da, &dm),
               Error);
  EXPECT_THROW(bec_derivatives(records, 0.0, 6, true, &da, &dm), Error);
  EXPECT_THROW(bec_derivatives(records, 1e-2, 7, true, &da, &dm), Error);
  EXPECT_THROW(finite_field_polarizability(short_records, 1e-2), Error);
  EXPECT_THROW(BecCalculator({}, BecOptions{}), Error);
  BecOptions bad;
  bad.field_strength = -1.0;
  EXPECT_THROW(BecCalculator(h2(), bad), Error);
}

TEST(Bec, H2ComputeCountsFieldForcesNotPolarizabilities) {
  fault::ScopedFaults guard;
  BecCalculator calc(h2(), coarse_options());
  const RamanSpectrum spec = calc.compute();
  // The fast tier performs exactly the 13 stencil evaluations and zero
  // displaced polarizabilities — the counter regression the capacity
  // bench keys off.
  EXPECT_EQ(spec.n_field_forces, 13);
  EXPECT_EQ(spec.n_polarizabilities, 0);
  EXPECT_EQ(calc.n_field_forces(), 13);
  ASSERT_EQ(spec.modes.size(), 1u);  // the sigma_g stretch
  EXPECT_GT(spec.modes[0].frequency_cm, 1000.0);
  EXPECT_GE(spec.modes[0].activity, 0.0);
  EXPECT_TRUE(std::isfinite(spec.modes[0].activity));
}

TEST(Bec, CheckpointKillReplayIsFreeAndBitwise) {
  fault::ScopedFaults guard;
  obs::set_enabled(true);
  obs::Registry::instance().reset_for_testing();
  const std::string path = ::testing::TempDir() + "bec_ckpt_h2.txt";
  std::remove(path.c_str());

  BecOptions opt = coarse_options();
  opt.checkpoint_path = path;

  // A clean uncheckpointed run is the reference the replay must match
  // bitwise (stored records round-trip at %.17g).
  linalg::Matrix want_da;
  linalg::Matrix want_dm;
  {
    BecCalculator clean(h2(), coarse_options());
    want_da = clean.polarizability_derivatives();
    want_dm = clean.dipole_derivatives();
  }

  // Run 1: the process dies right after the 5th fresh field record became
  // durable.
  {
    fault::FaultSpec fs;
    fs.fire_at = 5;
    fault::FaultInjector::instance().configure(fault::kBecKill, fs);
    BecCalculator calc(h2(), opt);
    EXPECT_THROW(calc.polarizability_derivatives(), FaultInjected);
    EXPECT_EQ(calc.n_field_forces(), 5);
    fault::reset();
  }

  // Run 2: replays the 5 durable stencil points and evaluates only the
  // missing 8 — no re-executed field tasks.
  {
    BecCalculator resumed(h2(), opt);
    const linalg::Matrix da = resumed.polarizability_derivatives();
    const linalg::Matrix& dm = resumed.dipole_derivatives();
    EXPECT_EQ(resumed.n_field_forces(), 8);
    const auto counters = obs::Registry::instance().counter_values();
    const auto hits = counters.find("checkpoint.hits");
    ASSERT_NE(hits, counters.end());
    EXPECT_EQ(hits->second, 5.0);
    ASSERT_EQ(da.rows(), want_da.rows());
    for (std::size_t k = 0; k < da.rows(); ++k) {
      for (std::size_t j = 0; j < 9; ++j) {
        EXPECT_EQ(da(k, j), want_da(k, j)) << k << "," << j;
      }
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(dm(k, j), want_dm(k, j)) << k << "," << j;
      }
    }
  }
  std::remove(path.c_str());
  obs::Registry::instance().reset_for_testing();
  obs::set_enabled(false);
}

// The headline golden gate (ISSUE 9, DESIGN.md S15): on water at the
// golden grid the bec tier reproduces the full-DFPT spectrum within the
// documented tolerances while running >= 5x fewer engine solves. The
// Hessian/normal modes are shared — the tiers differ only in how the
// derivative tensors are obtained, which is exactly the paper's claim.
TEST(BecGolden, WaterMatchesDfptWithinToleranceAtFiveXFewerEvals) {
  fault::ScopedFaults guard;
  obs::set_enabled(true);
  obs::Registry::instance().reset_for_testing();
  const std::vector<grid::AtomSite> atoms = water();
  RamanOptions ropt;
  ropt.vibrations.scf.grid.n_radial = 28;
  ropt.vibrations.scf.grid.angular_order = 13;
  BecOptions bopt;
  bopt.vibrations = ropt.vibrations;

  const auto solves = [] {
    const auto counters = obs::Registry::instance().counter_values();
    double n = 0.0;
    for (const char* name : {"scf.solves", "dfpt.response.solves"}) {
      const auto it = counters.find(name);
      if (it != counters.end()) n += it->second;
    }
    return n;
  };

  // Fast tier: 13 finite-field SCF solves, no DFPT responses.
  BecCalculator bec(atoms, bopt);
  const std::vector<GeometryRecord> records = bec.field_records();
  const double bec_evals = solves();
  EXPECT_EQ(bec_evals, 13.0);
  linalg::Matrix da_bec;
  linalg::Matrix dm_bec;
  bec_derivatives(records, bopt.field_strength, 9, true, &da_bec, &dm_bec);

  // Full tier: 6N displaced SCF+DFPT runs.
  obs::Registry::instance().reset_for_testing();
  RamanCalculator full(atoms, ropt);
  const linalg::Matrix da_dfpt = full.polarizability_derivatives();
  const linalg::Matrix& dm_dfpt = full.dipole_derivatives();
  const double dfpt_evals = solves();
  obs::set_enabled(false);
  EXPECT_GE(dfpt_evals, 5.0 * bec_evals)
      << "bec tier lost its >=5x evaluation advantage";

  // Equilibrium polarizability: the finite-field dipole derivative is
  // Pulay-free, so it pins the field machinery against DFPT tightly.
  scf::ScfEngine eng(atoms, ropt.vibrations.scf);
  const scf::GroundState gs = eng.solve();
  dfpt::DfptEngine dfpt(eng, gs, ropt.dfpt);
  const linalg::Matrix alpha_dfpt = dfpt.polarizability();
  const linalg::Matrix alpha_ff =
      finite_field_polarizability(records, bopt.field_strength);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(alpha_ff(i, j), alpha_dfpt(i, j), 5e-3) << i << "," << j;
    }
  }

  // Derivative tensors: golden tolerances from DESIGN.md S15 (measured
  // max errors 0.013 / 0.043 at this grid, gated with ~2x headroom).
  for (std::size_t k = 0; k < 9; ++k) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(dm_bec(k, j), dm_dfpt(k, j), 0.03) << "dmu " << k;
    }
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_NEAR(da_bec(k, j), da_dfpt(k, j), 0.08) << "dalpha " << k;
    }
  }

  // Mode-level gate: identical shared modes, activities within 5%.
  const linalg::Matrix hess = energy_hessian(atoms, ropt.vibrations);
  const NormalModes modes =
      normal_modes(atoms, hess, ropt.vibrations.project_rigid_body);
  const RamanSpectrum spec_bec =
      assemble_spectrum(atoms, modes, da_bec, dm_bec, ropt.mode_floor_cm);
  const RamanSpectrum spec_dfpt =
      assemble_spectrum(atoms, modes, da_dfpt, dm_dfpt, ropt.mode_floor_cm);
  ASSERT_EQ(spec_bec.modes.size(), spec_dfpt.modes.size());
  ASSERT_GE(spec_bec.modes.size(), 2u);
  bool compared = false;
  for (std::size_t m = 0; m < spec_bec.modes.size(); ++m) {
    const RamanMode& b = spec_bec.modes[m];
    const RamanMode& d = spec_dfpt.modes[m];
    EXPECT_EQ(b.frequency_cm, d.frequency_cm);  // same Hessian, bitwise
    if (d.activity < 1.0) continue;  // silent modes: absolute gate only
    EXPECT_NEAR(b.activity / d.activity, 1.0, 0.05)
        << "mode " << m << " at " << d.frequency_cm << " cm-1";
    EXPECT_NEAR(b.depolarization, d.depolarization, 0.05);
    compared = true;
  }
  EXPECT_TRUE(compared) << "no Raman-active mode survived the floor";
}

}  // namespace
}  // namespace swraman::raman
