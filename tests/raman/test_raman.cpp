#include "raman/raman.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::raman {
namespace {

RamanSpectrum h2_spectrum() {
  static const RamanSpectrum spec = [] {
    std::vector<grid::AtomSite> h2 = {{1, {0.0, 0.0, 0.0}},
                                      {1, {0.0, 0.0, 1.45}}};
    RamanOptions opt;
    RamanCalculator calc(h2, opt);
    return calc.compute();
  }();
  return spec;
}

TEST(Raman, H2SingleActiveMode) {
  const RamanSpectrum spec = h2_spectrum();
  ASSERT_EQ(spec.modes.size(), 1u);
  const RamanMode& m = spec.modes[0];
  EXPECT_GT(m.frequency_cm, 3500.0);
  EXPECT_LT(m.frequency_cm, 5800.0);
  EXPECT_GT(m.activity, 10.0);
  // Sigma_g stretch is polarized: depolarization well below 0.75.
  EXPECT_LT(m.depolarization, 0.5);
  EXPECT_GE(m.depolarization, 0.0);
}

TEST(Raman, PolarizabilityCountMatchesPaperScheme) {
  // 6N displaced polarizabilities (3N forward + 3N backward, paper Sec 2.3).
  const RamanSpectrum spec = h2_spectrum();
  EXPECT_EQ(spec.n_polarizabilities, 6 * 2);
}

TEST(Broaden, PeaksAtModeFrequencies) {
  std::vector<RamanMode> modes(2);
  modes[0].frequency_cm = 1000.0;
  modes[0].activity = 10.0;
  modes[1].frequency_cm = 3000.0;
  modes[1].activity = 30.0;
  const BroadenedSpectrum s = broaden(modes, 5.0, 500.0, 3500.0, 1.0);
  // Find maxima near the two bands.
  double peak1 = 0.0;
  double peak2 = 0.0;
  for (std::size_t i = 0; i < s.wavenumber_cm.size(); ++i) {
    if (std::abs(s.wavenumber_cm[i] - 1000.0) < 20.0) {
      peak1 = std::max(peak1, s.intensity[i]);
    }
    if (std::abs(s.wavenumber_cm[i] - 3000.0) < 20.0) {
      peak2 = std::max(peak2, s.intensity[i]);
    }
  }
  EXPECT_GT(peak1, 0.0);
  EXPECT_NEAR(peak2 / peak1, 3.0, 0.05);
  // Background far from peaks is small.
  EXPECT_LT(s.intensity[0], 0.05 * peak1);
}

TEST(Broaden, IntegralMatchesTotalActivity) {
  std::vector<RamanMode> modes(1);
  modes[0].frequency_cm = 2000.0;
  modes[0].activity = 42.0;
  const BroadenedSpectrum s = broaden(modes, 8.0, 1000.0, 3000.0, 0.5);
  double integral = 0.0;
  for (double v : s.intensity) integral += v * 0.5;
  // Lorentzian normalized: the full integral approaches the activity.
  EXPECT_NEAR(integral, 42.0, 1.0);
}

TEST(Broaden, RejectsBadParameters) {
  std::vector<RamanMode> modes;
  EXPECT_THROW(broaden(modes, -1.0, 0.0, 100.0), Error);
  EXPECT_THROW(broaden(modes, 1.0, 200.0, 100.0), Error);
}

TEST(Compose, WeightedSuperposition) {
  std::vector<RamanMode> m1(1);
  m1[0].frequency_cm = 800.0;
  m1[0].activity = 10.0;
  std::vector<RamanMode> m2(1);
  m2[0].frequency_cm = 1600.0;
  m2[0].activity = 10.0;
  const BroadenedSpectrum s1 = broaden(m1, 5.0, 500.0, 2000.0);
  const BroadenedSpectrum s2 = broaden(m2, 5.0, 500.0, 2000.0);
  const BroadenedSpectrum sum = compose({{s1, 1.0}, {s2, 2.0}});
  // Peak at 1600 should be ~2x the peak at 800.
  double p800 = 0.0;
  double p1600 = 0.0;
  for (std::size_t i = 0; i < sum.wavenumber_cm.size(); ++i) {
    if (std::abs(sum.wavenumber_cm[i] - 800.0) < 10.0) {
      p800 = std::max(p800, sum.intensity[i]);
    }
    if (std::abs(sum.wavenumber_cm[i] - 1600.0) < 10.0) {
      p1600 = std::max(p1600, sum.intensity[i]);
    }
  }
  EXPECT_NEAR(p1600 / p800, 2.0, 0.05);
}

TEST(Compose, RejectsMismatchedGrids) {
  std::vector<RamanMode> m(1);
  m[0].frequency_cm = 1000.0;
  m[0].activity = 1.0;
  const BroadenedSpectrum a = broaden(m, 5.0, 0.0, 100.0);
  const BroadenedSpectrum b = broaden(m, 5.0, 0.0, 200.0);
  EXPECT_THROW(compose({{a, 1.0}, {b, 1.0}}), Error);
}

}  // namespace
}  // namespace swraman::raman
// -- appended coverage: IR intensities and the observed-intensity
// correction added alongside the Raman activities.

namespace swraman::raman {
namespace {

TEST(Raman, HomonuclearHasNoIrIntensity) {
  // H2 stretch: no dipole derivative, so IR-silent while Raman-active.
  const RamanSpectrum spec = h2_spectrum();
  ASSERT_EQ(spec.modes.size(), 1u);
  EXPECT_NEAR(spec.modes[0].ir_intensity, 0.0, 1.0);  // km/mol
  EXPECT_GT(spec.modes[0].activity, 10.0);
}

TEST(ObservedIntensity, StokesFactorsBehave) {
  // Low-frequency modes gain weight from both the 1/nu factor and the
  // thermal population.
  const double low = observed_raman_intensity(1.0, 300.0);
  const double high = observed_raman_intensity(1.0, 3000.0);
  EXPECT_GT(low, high);
  // Linear in the activity.
  EXPECT_NEAR(observed_raman_intensity(2.0, 1000.0),
              2.0 * observed_raman_intensity(1.0, 1000.0), 1e-9);
  // Hotter samples scatter more at low frequency (larger population
  // denominator correction).
  EXPECT_GT(observed_raman_intensity(1.0, 300.0, 18796.99, 600.0),
            observed_raman_intensity(1.0, 300.0, 18796.99, 100.0));
  // High-frequency limit: Boltzmann factor ~ 1, pure (nu0-nu)^4/nu.
  const double nu = 3500.0;
  const double nu0 = 18796.99;
  const double expected = std::pow(nu0 - nu, 4) / nu;
  EXPECT_NEAR(observed_raman_intensity(1.0, nu, nu0, 298.15), expected,
              1e-4 * expected);
}

TEST(ObservedIntensity, RejectsBadArguments) {
  EXPECT_THROW(observed_raman_intensity(1.0, -5.0), Error);
  EXPECT_THROW(observed_raman_intensity(1.0, 20000.0, 18796.99), Error);
  EXPECT_THROW(observed_raman_intensity(1.0, 100.0, 18796.99, -1.0), Error);
}

}  // namespace
}  // namespace swraman::raman
