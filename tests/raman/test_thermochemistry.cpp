#include "raman/thermochemistry.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::raman {
namespace {

TEST(Thermo, SingleModeZeroPointEnergy) {
  const Thermochemistry t = harmonic_thermochemistry({2000.0}, 298.15);
  EXPECT_NEAR(t.zero_point_energy, 0.5 * 2000.0 / kCmInvPerAu, 1e-12);
  // A 2000 cm^-1 mode is frozen at room temperature.
  EXPECT_LT(t.vibrational_energy, 1e-6);
  EXPECT_LT(t.vibrational_entropy * 298.15, 1e-5);
}

TEST(Thermo, ClassicalLimitAtHighTemperature) {
  // kT >> h nu: U -> kT, Cv -> kB per mode.
  const double t_hot = 30000.0;
  const Thermochemistry t = harmonic_thermochemistry({200.0}, t_hot);
  EXPECT_NEAR(t.vibrational_energy, kBoltzmannHa * t_hot,
              0.05 * kBoltzmannHa * t_hot);
  EXPECT_NEAR(t.heat_capacity, kBoltzmannHa, 0.02 * kBoltzmannHa);
}

TEST(Thermo, EntropyGrowsWithTemperature) {
  const Thermochemistry cold = harmonic_thermochemistry({500.0}, 200.0);
  const Thermochemistry hot = harmonic_thermochemistry({500.0}, 600.0);
  EXPECT_GT(hot.vibrational_entropy, cold.vibrational_entropy);
  EXPECT_GT(hot.vibrational_energy, cold.vibrational_energy);
  // Free energy decreases with temperature (entropy wins).
  EXPECT_LT(hot.free_energy, cold.free_energy);
}

TEST(Thermo, FloorSkipsRigidBodyResidue) {
  const Thermochemistry with_junk =
      harmonic_thermochemistry({1.0, 5.0, 1500.0}, 298.15);
  const Thermochemistry clean = harmonic_thermochemistry({1500.0}, 298.15);
  EXPECT_NEAR(with_junk.zero_point_energy, clean.zero_point_energy, 1e-12);
}

TEST(Thermo, ModesAreAdditive) {
  const Thermochemistry a = harmonic_thermochemistry({800.0}, 298.15);
  const Thermochemistry b = harmonic_thermochemistry({1600.0}, 298.15);
  const Thermochemistry ab =
      harmonic_thermochemistry({800.0, 1600.0}, 298.15);
  EXPECT_NEAR(ab.zero_point_energy, a.zero_point_energy + b.zero_point_energy,
              1e-14);
  EXPECT_NEAR(ab.vibrational_entropy,
              a.vibrational_entropy + b.vibrational_entropy, 1e-16);
}

TEST(Thermo, RejectsNonPositiveTemperature) {
  EXPECT_THROW(harmonic_thermochemistry({1000.0}, 0.0), Error);
}

}  // namespace
}  // namespace swraman::raman
