#include "raman/vibrations.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/elements.hpp"
#include "common/error.hpp"

namespace swraman::raman {
namespace {

std::vector<grid::AtomSite> h2(double bond = 1.45) {
  return {{1, {0.0, 0.0, 0.0}}, {1, {0.0, 0.0, bond}}};
}

TEST(EnergyHessian, H2IsSymmetricWithStretchStructure) {
  VibrationOptions opt;
  const linalg::Matrix h = energy_hessian(h2(), opt);
  ASSERT_EQ(h.rows(), 6u);
  // Symmetry.
  EXPECT_NEAR((h - h.transposed()).max_abs(), 0.0, 1e-5);
  // Stretch block: d2E/dz1 dz2 < 0 (opposite displacement raises energy),
  // d2E/dz1^2 > 0.
  EXPECT_GT(h(2, 2), 0.0);
  EXPECT_LT(h(2, 5), 0.0);
  // Translation invariance: rows sum to ~0 against uniform shift.
  for (std::size_t i = 0; i < 6; ++i) {
    double row = h(i, 2) + h(i, 5);  // z-translation combination
    if (i == 2 || i == 5) {
      // Grid egg-box noise breaks exact invariance at the light level.
      EXPECT_NEAR(row, 0.0, 0.1 * std::abs(h(i, i))) << "row " << i;
    }
  }
}

TEST(NormalModes, H2HasOneStretchMode) {
  VibrationOptions opt;
  const std::vector<grid::AtomSite> atoms = h2();
  const linalg::Matrix h = energy_hessian(atoms, opt);
  const NormalModes modes = normal_modes(atoms, h);
  ASSERT_EQ(modes.frequencies_cm.size(), 6u);
  // Five rigid-body-ish modes near zero, one stretch in the vibrational
  // range (LDA H2 ~4100-5300 cm^-1 depending on basis).
  int large = 0;
  for (double f : modes.frequencies_cm) {
    if (std::abs(f) > 500.0) ++large;
  }
  EXPECT_EQ(large, 1);
  const double stretch = modes.frequencies_cm.back();
  EXPECT_GT(stretch, 3500.0);
  EXPECT_LT(stretch, 5800.0);
  // Reduced mass in the Gaussian-output convention (1/sum l_cart^2 with
  // mass-weighted-normalized modes): the atomic mass for a homonuclear
  // diatomic.
  EXPECT_NEAR(modes.reduced_masses_amu.back(), 1.008, 0.05);
}

TEST(NormalModes, StretchModeIsAntisymmetricAlongBond) {
  VibrationOptions opt;
  const std::vector<grid::AtomSite> atoms = h2();
  const linalg::Matrix h = energy_hessian(atoms, opt);
  const NormalModes modes = normal_modes(atoms, h);
  const std::size_t p = 5;  // highest mode = stretch
  // z components opposite, x/y negligible.
  EXPECT_NEAR(modes.cartesian_modes(2, p), -modes.cartesian_modes(5, p),
              1e-6);
  EXPECT_NEAR(modes.cartesian_modes(0, p), 0.0, 1e-6);
  EXPECT_NEAR(modes.cartesian_modes(1, p), 0.0, 1e-6);
}

TEST(NormalModes, RigidBodyProjectionZerosTranslations) {
  // Analytic two-body spring Hessian: k (unit) along z.
  const std::vector<grid::AtomSite> atoms = h2();
  linalg::Matrix h(6, 6);
  const double k = 0.37;
  h(2, 2) = k;
  h(5, 5) = k;
  h(2, 5) = -k;
  h(5, 2) = -k;
  const NormalModes projected = normal_modes(atoms, h, true);
  // 5 zero modes + 1 stretch: omega = sqrt(2k/m_H).
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(projected.frequencies_cm[i], 0.0, 1.0);
  }
  const double m = element(1).mass_amu * kMeAmu;
  const double exact = std::sqrt(2.0 * k / m) * kCmInvPerAu;
  EXPECT_NEAR(projected.frequencies_cm[5], exact, 1e-6 * exact);
}

TEST(NormalModes, RejectsWrongHessianSize) {
  EXPECT_THROW(normal_modes(h2(), linalg::Matrix(3, 3)), Error);
}

}  // namespace
}  // namespace swraman::raman
