#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace swraman::obs {
namespace {

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Registry::instance().reset_for_testing();
  }
  void TearDown() override {
    set_enabled(false);
    Registry::instance().reset_for_testing();
  }
};

SloOptions fast_opts() {
  SloOptions opts;
  opts.latency_slo_s = 0.1;
  opts.objective = 0.9;
  opts.min_period_s = 0.0;  // every maybe_tick snapshots
  return opts;
}

TEST_F(SloTest, EmptyRegistrySnapshotsCleanHealth) {
  SloMonitor mon(fast_opts());
  const HealthSnapshot snap = mon.tick();
  EXPECT_DOUBLE_EQ(snap.queue_depth, 0.0);
  EXPECT_DOUBLE_EQ(snap.cache_hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(snap.max_burn_rate, 0.0);
  EXPECT_TRUE(snap.tenants.empty());
  EXPECT_DOUBLE_EQ(mon.backpressure_hint(), 0.0);
  EXPECT_EQ(mon.history().size(), 1u);
}

TEST_F(SloTest, AggregatesPerShardGaugesAndFsyncHistogram) {
  Registry& reg = Registry::instance();
  reg.gauge("serve.queue.depth.0").set(3.0);
  reg.gauge("serve.queue.depth.1").set(5.0);
  reg.gauge("serve.cache.hit_ratio.0").set(0.2);
  reg.gauge("serve.cache.hit_ratio.1").set(0.6);
  reg.gauge("unrelated.gauge").set(100.0);
  reg.histogram("serve.wal.fsync_s").observe(1e-4);
  reg.histogram("serve.wal.fsync_s").observe(2e-3);
  SloMonitor mon(fast_opts());
  const HealthSnapshot snap = mon.tick();
  EXPECT_DOUBLE_EQ(snap.queue_depth, 8.0);       // summed across shards
  EXPECT_DOUBLE_EQ(snap.cache_hit_ratio, 0.4);   // averaged across shards
  EXPECT_DOUBLE_EQ(snap.wal_fsync_max_s, 2e-3);
  EXPECT_GT(snap.wal_fsync_p99_s, 0.0);
  EXPECT_LE(snap.wal_fsync_p99_s, 2e-3 * 1.0001);
}

TEST_F(SloTest, PerTenantAttainmentAndBurnRate) {
  Histogram& alice = Registry::instance().histogram("serve.latency.alice");
  Histogram& bob = Registry::instance().histogram("serve.latency.bob");
  // alice: 4 in SLO, 1 out -> attainment 0.8, burn (1-0.8)/(1-0.9) = 2.
  for (int i = 0; i < 4; ++i) alice.observe(0.01);
  alice.observe(10.0);
  // bob: all in SLO -> burn 0.
  for (int i = 0; i < 5; ++i) bob.observe(0.01);
  SloMonitor mon(fast_opts());
  const HealthSnapshot snap = mon.tick();
  ASSERT_EQ(snap.tenants.size(), 2u);
  const TenantHealth& a = snap.tenants[0];
  const TenantHealth& b = snap.tenants[1];
  EXPECT_EQ(a.tenant, "alice");
  EXPECT_EQ(b.tenant, "bob");
  EXPECT_EQ(a.finished, 5u);
  EXPECT_NEAR(a.attainment, 0.8, 1e-12);
  EXPECT_NEAR(a.burn_rate, 2.0, 1e-9);
  EXPECT_NEAR(b.burn_rate, 0.0, 1e-12);
  EXPECT_NEAR(snap.max_burn_rate, 2.0, 1e-9);
  // Percentiles are finite and ordered.
  EXPECT_LE(a.p50_s, a.p99_s);
  EXPECT_LE(a.p99_s, 10.0);
}

TEST_F(SloTest, WindowAttainmentSeesOnlyNewObservations) {
  Histogram& h = Registry::instance().histogram("serve.latency.alice");
  for (int i = 0; i < 10; ++i) h.observe(10.0);  // all out of SLO
  SloMonitor mon(fast_opts());
  const HealthSnapshot first = mon.tick();
  ASSERT_EQ(first.tenants.size(), 1u);
  EXPECT_NEAR(first.tenants[0].window_attainment, 0.0, 1e-12);
  EXPECT_NEAR(first.tenants[0].burn_rate, 10.0, 1e-6);

  // The next window is clean: cumulative attainment stays poor but the
  // burn rate recovers because the *window* is healthy again.
  for (int i = 0; i < 10; ++i) h.observe(0.01);
  const HealthSnapshot second = mon.tick();
  ASSERT_EQ(second.tenants.size(), 1u);
  EXPECT_EQ(second.tenants[0].window_finished, 10u);
  EXPECT_NEAR(second.tenants[0].window_attainment, 1.0, 1e-12);
  EXPECT_NEAR(second.tenants[0].burn_rate, 0.0, 1e-12);
  EXPECT_NEAR(second.tenants[0].attainment, 0.5, 1e-12);

  // An idle window reports perfect attainment, not a stale burn.
  const HealthSnapshot third = mon.tick();
  EXPECT_EQ(third.tenants[0].window_finished, 0u);
  EXPECT_NEAR(third.tenants[0].burn_rate, 0.0, 1e-12);
}

TEST_F(SloTest, BackpressureHintRampsWithBurnAndClampsAtOne) {
  Histogram& h = Registry::instance().histogram("serve.latency.alice");
  SloMonitor mon(fast_opts());  // objective 0.9 -> full burn = 10
  for (int i = 0; i < 2; ++i) h.observe(10.0);
  for (int i = 0; i < 2; ++i) h.observe(0.01);
  mon.tick();  // window attainment 0.5 -> burn 5 -> hint 0.5
  EXPECT_NEAR(mon.backpressure_hint(), 0.5, 1e-9);
  for (int i = 0; i < 8; ++i) h.observe(10.0);
  mon.tick();  // window attainment 0 -> burn 10 == full burn -> hint 1
  EXPECT_NEAR(mon.backpressure_hint(), 1.0, 1e-9);
  mon.tick();  // idle window -> hint relaxes to 0
  EXPECT_NEAR(mon.backpressure_hint(), 0.0, 1e-12);
}

TEST_F(SloTest, MaybeTickThrottlesByMinPeriod) {
  SloOptions opts = fast_opts();
  opts.min_period_s = 3600.0;  // effectively never again
  SloMonitor mon(opts);
  mon.maybe_tick();
  mon.maybe_tick();
  mon.maybe_tick();
  EXPECT_EQ(mon.history().size(), 1u);
}

TEST_F(SloTest, HistoryCapDropsOldestSnapshots) {
  SloOptions opts = fast_opts();
  opts.max_snapshots = 3;
  SloMonitor mon(opts);
  for (int i = 0; i < 10; ++i) mon.tick();
  const std::vector<HealthSnapshot> hist = mon.history();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_LE(hist[0].t_ns, hist[1].t_ns);
  EXPECT_LE(hist[1].t_ns, hist[2].t_ns);
}

TEST_F(SloTest, DegenerateObjectiveIsClamped) {
  SloOptions opts = fast_opts();
  opts.objective = 1.0;  // would divide by zero unclamped
  SloMonitor mon(opts);
  EXPECT_LT(mon.options().objective, 1.0);
  Registry::instance().histogram("serve.latency.alice").observe(10.0);
  const HealthSnapshot snap = mon.tick();
  EXPECT_TRUE(std::isfinite(snap.max_burn_rate));
  EXPECT_GE(mon.backpressure_hint(), 0.0);
  EXPECT_LE(mon.backpressure_hint(), 1.0);
}

TEST_F(SloTest, ExportJsonCarriesSchemaAndTenants) {
  Registry::instance().histogram("serve.latency.alice").observe(0.01);
  SloMonitor mon(fast_opts());
  mon.tick();
  const std::string json = mon.export_json();
  EXPECT_NE(json.find("\"schema\": \"swraman-health-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"latency_slo_s\": 0.1"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\": \"alice\""), std::string::npos);
  EXPECT_NE(json.find("\"burn_rate\": "), std::string::npos);
  EXPECT_NE(json.find("\"snapshots\": ["), std::string::npos);
}

}  // namespace
}  // namespace swraman::obs
