#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swraman::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Registry::instance().reset_for_testing();
  }
  void TearDown() override {
    set_enabled(false);
    Registry::instance().reset_for_testing();
  }
};

TEST_F(MetricsTest, SameNameReturnsSameInstrument) {
  Counter& a = Registry::instance().counter("scf.iterations");
  Counter& b = Registry::instance().counter("scf.iterations");
  EXPECT_EQ(&a, &b);
  a.add(2.0);
  EXPECT_DOUBLE_EQ(b.value(), 2.0);
}

TEST_F(MetricsTest, CountersAccumulateAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  Counter& c = Registry::instance().counter("comm.allreduce.bytes");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge& g = Registry::instance().gauge("grid.imbalance");
  g.set(1.5);
  g.set(1.2);
  EXPECT_DOUBLE_EQ(g.value(), 1.2);
}

TEST_F(MetricsTest, HistogramTracksSummary) {
  Histogram& h = Registry::instance().histogram("dfpt.sternheimer.residual");
  h.observe(1e-3);
  h.observe(1e-5);
  h.observe(1e-4);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1e-5);
  EXPECT_DOUBLE_EQ(s.max, 1e-3);
  EXPECT_NEAR(s.mean(), (1e-3 + 1e-5 + 1e-4) / 3.0, 1e-18);
}

// --- Histogram quantile / count_below edge-case regressions (the SLO
// monitor and the health validator lean on every one of these). ---

TEST_F(MetricsTest, EmptyHistogramQuantilesAreZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.count_below(1e9), 0u);
}

TEST_F(MetricsTest, SingleSampleIsEveryQuantile) {
  Histogram h;
  h.observe(3.7e-3);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.7e-3) << "q = " << q;
  }
  EXPECT_EQ(h.count_below(3.7e-3), 1u);  // x >= max counts everything
  EXPECT_EQ(h.count_below(1e-6), 0u);    // x < min counts nothing
}

TEST_F(MetricsTest, OutOfRangeQGivesExactMinAndMax) {
  Histogram h;
  h.observe(1e-4);
  h.observe(2e-3);
  h.observe(5e-2);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1e-4);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-4);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5e-2);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 5e-2);
}

TEST_F(MetricsTest, SaturatedTopBucketClampsToMaxNeverInf) {
  Histogram h;
  h.observe(1e9);  // far past the top finite bound: saturation bucket
  h.observe(2e9);
  for (const double q : {0.5, 0.99, 0.999}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(std::isfinite(v)) << "q = " << q;
    EXPECT_LE(v, 2e9);
    EXPECT_GE(v, 1e9);
  }
  EXPECT_EQ(h.count_below(2e9), 2u);
}

TEST_F(MetricsTest, NonPositiveSamplesLandInBottomBucketAndClamp) {
  Histogram h;
  h.observe(0.0);
  h.observe(-2.5);
  h.observe(1e-9);  // below the bottom bound
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.min, -2.5);
  EXPECT_EQ(s.buckets[0], 3u);
  // Interpolation inside bucket 0 would report a value in (0, 1e-6];
  // the [min, max] clamp keeps the estimate inside the observed range.
  EXPECT_GE(h.quantile(0.5), -2.5);
  EXPECT_LE(h.quantile(0.5), 1e-9);
  EXPECT_EQ(h.count_below(-3.0), 0u);
  EXPECT_EQ(h.count_below(0.5), 3u);
}

TEST_F(MetricsTest, QuantilesAreMonotoneInQ) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(1e-5 * i);  // 10us .. 10ms
  double prev = h.quantile(0.0);
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q = " << q;
    prev = v;
  }
  // The interpolated median lands within bucket resolution (+-20%/bucket)
  // of the true median.
  EXPECT_NEAR(h.quantile(0.5), 5e-3, 2e-3);
}

TEST_F(MetricsTest, BucketUpperBoundsAreInclusive) {
  for (const std::size_t i : {std::size_t{0}, std::size_t{7},
                              std::size_t{31}, Histogram::kBuckets - 2}) {
    const double edge = Histogram::bucket_upper(i);
    EXPECT_EQ(Histogram::bucket_index(edge), i) << "bucket " << i;
    // Just past the edge belongs to the next bucket.
    EXPECT_EQ(Histogram::bucket_index(edge * 1.0001), i + 1)
        << "bucket " << i;
  }
}

TEST_F(MetricsTest, CountBelowInterpolatesWithinOneBucket) {
  Histogram h;
  // 100 samples spread inside one decade; the estimate at the midpoint
  // must be within a bucket's worth of the truth.
  for (int i = 1; i <= 100; ++i) h.observe(1e-3 * i / 100.0);
  const std::uint64_t below = h.count_below(5e-4);
  EXPECT_GE(below, 30u);
  EXPECT_LE(below, 70u);
  EXPECT_EQ(h.count_below(1e-3), 100u);
}

TEST_F(MetricsTest, GatedHelpersRespectEnabledFlag) {
  set_enabled(false);
  count("never.recorded");
  gauge_set("never.recorded.gauge", 1.0);
  observe("never.recorded.histogram", 1.0);
  EXPECT_TRUE(Registry::instance().counter_values().empty());
  EXPECT_TRUE(Registry::instance().gauge_values().empty());
  EXPECT_TRUE(Registry::instance().histogram_values().empty());

  set_enabled(true);
  count("fault.injected");
  count("fault.injected");
  const auto counters = Registry::instance().counter_values();
  ASSERT_EQ(counters.count("fault.injected"), 1u);
  EXPECT_DOUBLE_EQ(counters.at("fault.injected"), 2.0);
}

}  // namespace
}  // namespace swraman::obs
