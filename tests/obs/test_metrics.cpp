#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swraman::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Registry::instance().reset_for_testing();
  }
  void TearDown() override {
    set_enabled(false);
    Registry::instance().reset_for_testing();
  }
};

TEST_F(MetricsTest, SameNameReturnsSameInstrument) {
  Counter& a = Registry::instance().counter("scf.iterations");
  Counter& b = Registry::instance().counter("scf.iterations");
  EXPECT_EQ(&a, &b);
  a.add(2.0);
  EXPECT_DOUBLE_EQ(b.value(), 2.0);
}

TEST_F(MetricsTest, CountersAccumulateAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  Counter& c = Registry::instance().counter("comm.allreduce.bytes");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge& g = Registry::instance().gauge("grid.imbalance");
  g.set(1.5);
  g.set(1.2);
  EXPECT_DOUBLE_EQ(g.value(), 1.2);
}

TEST_F(MetricsTest, HistogramTracksSummary) {
  Histogram& h = Registry::instance().histogram("dfpt.sternheimer.residual");
  h.observe(1e-3);
  h.observe(1e-5);
  h.observe(1e-4);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1e-5);
  EXPECT_DOUBLE_EQ(s.max, 1e-3);
  EXPECT_NEAR(s.mean(), (1e-3 + 1e-5 + 1e-4) / 3.0, 1e-18);
}

TEST_F(MetricsTest, GatedHelpersRespectEnabledFlag) {
  set_enabled(false);
  count("never.recorded");
  gauge_set("never.recorded.gauge", 1.0);
  observe("never.recorded.histogram", 1.0);
  EXPECT_TRUE(Registry::instance().counter_values().empty());
  EXPECT_TRUE(Registry::instance().gauge_values().empty());
  EXPECT_TRUE(Registry::instance().histogram_values().empty());

  set_enabled(true);
  count("fault.injected");
  count("fault.injected");
  const auto counters = Registry::instance().counter_values();
  ASSERT_EQ(counters.count("fault.injected"), 1u);
  EXPECT_DOUBLE_EQ(counters.at("fault.injected"), 2.0);
}

}  // namespace
}  // namespace swraman::obs
