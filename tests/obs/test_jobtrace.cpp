#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/jobtrace.hpp"

namespace swraman::obs {
namespace {

class JobTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_jobtrace_enabled(true);
    JobTraceRegistry::instance().reset_for_testing();
  }
  void TearDown() override {
    set_jobtrace_enabled(false);
    JobTraceRegistry::instance().reset_for_testing();
  }
};

TEST_F(JobTraceTest, RootIsAlwaysSpanOneAndIdempotent) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext a = jt.root(7, "job");
  EXPECT_EQ(a.gid, 7u);
  EXPECT_EQ(a.parent_span, 1u);
  const TraceContext b = jt.root(7, "job");
  EXPECT_EQ(b.parent_span, 1u);
  EXPECT_EQ(jt.spans(7).size(), 1u);
  EXPECT_EQ(jt.n_jobs(), 1u);
}

TEST_F(JobTraceTest, DisabledRegistryIsInert) {
  set_jobtrace_enabled(false);
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(5, "job");
  EXPECT_EQ(root.gid, 0u);
  EXPECT_FALSE(root.active());
  EXPECT_EQ(jt.begin(root, "submit"), 0u);
  EXPECT_EQ(jt.n_jobs(), 0u);
}

TEST_F(JobTraceTest, SpansNestUnderParentsWithMonotoneIds) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(1, "job");
  const std::uint64_t route = jt.begin(root, "route");
  const std::uint64_t disp =
      jt.begin({1, route}, "displacement", /*shard=*/2);
  EXPECT_GT(route, 1u);
  EXPECT_GT(disp, route);
  jt.end(1, disp);
  jt.end(1, route);
  const std::vector<JobSpan> spans = jt.spans(1);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "route");
  EXPECT_EQ(spans[1].parent, 1u);
  EXPECT_EQ(spans[2].parent, route);
  EXPECT_EQ(spans[2].shard, 2);
  // Children never start before their parent.
  EXPECT_GE(spans[2].start_ns, spans[1].start_ns);
  EXPECT_NE(spans[1].end_ns, 0u);
  EXPECT_NE(spans[2].end_ns, 0u);
}

TEST_F(JobTraceTest, EndIsIdempotentAndNeverZeroDuration) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(1, "job");
  const std::uint64_t s = jt.begin(root, "submit");
  jt.end(1, s);
  const std::uint64_t first_end = jt.spans(1)[1].end_ns;
  EXPECT_GT(first_end, jt.spans(1)[1].start_ns);
  jt.end(1, s);  // second close must not move the timestamp
  EXPECT_EQ(jt.spans(1)[1].end_ns, first_end);
  jt.end(1, 0);        // id 0: no-op
  jt.end(1, 999999);   // unknown: no-op
  jt.end(42, s);       // unknown gid: no-op
}

TEST_F(JobTraceTest, EventsCloseInstantly) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(1, "job");
  const std::uint64_t ev = jt.event(root, "dedup", /*shard=*/0);
  const std::vector<JobSpan> spans = jt.spans(1);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[1].event);
  EXPECT_EQ(spans[1].end_ns, spans[1].start_ns);
  EXPECT_EQ(spans[1].id, ev);
}

TEST_F(JobTraceTest, AttrsAttachToSpans) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(1, "job");
  const std::uint64_t s = jt.begin(root, "submit");
  jt.attr(1, s, "tenant", std::string("alice"));
  jt.attr(1, s, "tasks", 7.0);
  const std::vector<JobSpan> spans = jt.spans(1);
  ASSERT_EQ(spans[1].attrs.size(), 2u);
  EXPECT_EQ(spans[1].attrs[0].key, "tenant");
  EXPECT_EQ(spans[1].attrs[1].key, "tasks");
}

TEST_F(JobTraceTest, RestoreRootBumpsIncarnationAndRecreatesTimeline) {
  auto& jt = JobTraceRegistry::instance();
  // Fresh process after a crash: no in-memory timeline for gid 9; the WAL
  // replay restores the logged root id and starts incarnation 1.
  const TraceContext r = jt.restore_root(9, 1, "job");
  EXPECT_EQ(r.gid, 9u);
  EXPECT_EQ(r.parent_span, 1u);
  EXPECT_EQ(jt.incarnation(9), 1u);
  const std::uint64_t replay = jt.begin(r, "replay", /*shard=*/0);
  EXPECT_EQ(jt.spans(9).back().incarnation, 1u);
  jt.end(9, replay);
  // Replay-of-replay (double crash) bumps again without duplicating root.
  jt.restore_root(9, 1, "job");
  EXPECT_EQ(jt.incarnation(9), 2u);
  EXPECT_EQ(jt.spans(9).front().id, 1u);
}

TEST_F(JobTraceTest, OpenSpanSurvivesCrashAsOpen) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(3, "job");
  const std::uint64_t disp = jt.begin(root, "displacement", /*shard=*/1);
  // The shard dies mid-displacement: the span is deliberately never
  // ended. A stitched timeline keeps it open as the kill's footprint.
  jt.restore_root(3, 1, "job");
  const std::vector<JobSpan> spans = jt.spans(3);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].id, disp);
  EXPECT_EQ(spans[1].end_ns, 0u);
  EXPECT_EQ(spans[1].incarnation, 0u);
}

TEST_F(JobTraceTest, DropJobErasesRejectedTimeline) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(4, "job");
  jt.begin(root, "route");
  jt.drop_job(4);
  EXPECT_EQ(jt.n_jobs(), 0u);
  EXPECT_TRUE(jt.spans(4).empty());
  // The gid is reused by the next accepted job with a clean slate.
  jt.root(4, "job");
  EXPECT_EQ(jt.spans(4).size(), 1u);
}

TEST_F(JobTraceTest, SpanCapDropsExcessAndCountsThem) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(1, "job");
  std::uint64_t last = 0;
  for (int i = 0; i < (1 << 16) + 10; ++i) {
    last = jt.begin(root, "s");
  }
  EXPECT_EQ(last, 0u);  // capped: further begins return inactive ids
  const std::vector<JobSpan> spans = jt.spans(1);
  EXPECT_LE(spans.size(), (1u << 16) + 1u);
  bool counted = false;
  for (const Attr& a : spans.front().attrs) {
    if (a.key == "spans_dropped") counted = true;
  }
  EXPECT_TRUE(counted);
}

TEST_F(JobTraceTest, ConcurrentSpansFromManyThreadsStitchOneTimeline) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(1, "job");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&jt, &root, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const std::uint64_t s = jt.begin(root, "displacement", t);
        jt.attr(root.gid, s, "i", static_cast<double>(i));
        jt.end(root.gid, s);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<JobSpan> spans = jt.spans(1);
  ASSERT_EQ(spans.size(), 1u + kThreads * kSpansPerThread);
  // Ids are unique and strictly increasing in storage order.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].id, spans[i - 1].id);
    EXPECT_EQ(spans[i].parent, 1u);
  }
}

TEST_F(JobTraceTest, ExportJsonCarriesSchemaAndSpans) {
  auto& jt = JobTraceRegistry::instance();
  const TraceContext root = jt.root(11, "job");
  const std::uint64_t s = jt.begin(root, "submit", 0);
  jt.attr(11, s, "tenant", std::string("alice"));
  jt.end(11, s);
  const std::string json = jt.export_json();
  EXPECT_NE(json.find("\"schema\": \"swraman-jobtrace-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"gid\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"submit\""), std::string::npos);
  EXPECT_NE(json.find("\"alice\""), std::string::npos);
  EXPECT_NE(json.find("\"incarnations\": 1"), std::string::npos);
}

}  // namespace
}  // namespace swraman::obs
