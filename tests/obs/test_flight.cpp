#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace swraman::obs::flight {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    set_dump_dir(::testing::TempDir());
    reset_for_testing();
    Registry::instance().reset_for_testing();
  }
  void TearDown() override {
    set_enabled(false);
    reset_for_testing();
    Registry::instance().reset_for_testing();
  }
};

TEST_F(FlightTest, DisabledRecorderIsInert) {
  set_enabled(false);
  record("never.seen", 1.0, 2.0);
  EXPECT_TRUE(snapshot().empty());
  EXPECT_EQ(dump("nope"), "");
  EXPECT_EQ(dump_count(), 0u);
}

TEST_F(FlightTest, RecordsCarryTagPayloadAndOrder) {
  record("wal.append", 7.0, 1.0);
  record("serve.submit", 9.0);
  const std::vector<Event> events = snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tag, "wal.append");
  EXPECT_DOUBLE_EQ(events[0].a, 7.0);
  EXPECT_DOUBLE_EQ(events[0].b, 1.0);
  EXPECT_EQ(events[1].tag, "serve.submit");
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
}

TEST_F(FlightTest, LongTagsTruncateAtTagBytes) {
  const std::string long_tag(3 * kTagBytes, 'x');
  record(long_tag.c_str());
  const std::vector<Event> events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  // snprintf keeps a terminating NUL, so kTagBytes - 1 characters survive.
  EXPECT_EQ(events[0].tag, std::string(kTagBytes - 1, 'x'));
}

TEST_F(FlightTest, RingKeepsOnlyMostRecentSlots) {
  constexpr std::size_t kTotal = kRingSlots + 100;
  for (std::size_t i = 0; i < kTotal; ++i) {
    record("tick", static_cast<double>(i));
  }
  const std::vector<Event> events = snapshot();
  ASSERT_EQ(events.size(), kRingSlots);
  // The surviving slots are exactly the newest kRingSlots records.
  double min_a = events[0].a;
  for (const Event& e : events) min_a = std::min(min_a, e.a);
  EXPECT_DOUBLE_EQ(min_a, static_cast<double>(kTotal - kRingSlots));
}

TEST_F(FlightTest, EveryThreadOwnsARingAndAllAppearInSnapshot) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        record("worker.tick", static_cast<double>(t), static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<Event> events = snapshot();
  // The main thread's ring may be empty; the workers' events all land.
  std::map<std::uint32_t, int> by_tid;
  for (const Event& e : events) {
    if (e.tag == "worker.tick") ++by_tid[e.tid];
  }
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, n] : by_tid) EXPECT_EQ(n, kPerThread);
}

TEST_F(FlightTest, SnapshotWhileRecordingNeverTears) {
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      record("hot.loop", static_cast<double>(i), static_cast<double>(i));
      ++i;
    }
  });
  for (int round = 0; round < 50; ++round) {
    for (const Event& e : snapshot()) {
      if (e.tag != "hot.loop") continue;
      // Payload consistency: a torn slot would mix a and b from
      // different records; the seqlock must have filtered it out.
      EXPECT_DOUBLE_EQ(e.a, e.b);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST_F(FlightTest, DumpWritesSchemaEventsAndCounterDeltas) {
  set_enabled(true);
  Registry::instance().counter("serve.jobs.accepted").add(3.0);
  record("wal.append", 42.0);
  const std::string path = dump("serve.shard.kill");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path, last_dump_path());
  EXPECT_EQ(dump_count(), 1u);
  EXPECT_NE(path.find("flight-serve.shard.kill.json"), std::string::npos);
  const std::string body = read_file(path);
  EXPECT_NE(body.find("\"schema\": \"swraman-flight-v1\""),
            std::string::npos);
  EXPECT_NE(body.find("\"reason\": \"serve.shard.kill\""),
            std::string::npos);
  EXPECT_NE(body.find("\"tag\": \"wal.append\""), std::string::npos);
  EXPECT_NE(body.find("\"serve.jobs.accepted\""), std::string::npos);

  // Second dump reports only the delta since the first.
  Registry::instance().counter("serve.jobs.accepted").add(2.0);
  const std::string path2 = dump("serve.shard.kill");
  EXPECT_EQ(dump_count(), 2u);
  const std::string body2 = read_file(path2);
  EXPECT_NE(body2.find("\"value\": 5"), std::string::npos);
  EXPECT_NE(body2.find("\"delta\": 2"), std::string::npos);
}

TEST_F(FlightTest, DumpSanitizesReasonIntoFilename) {
  record("x");
  const std::string path = dump("fault: serve/shard kill!");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("flight-fault__serve_shard_kill_.json"),
            std::string::npos);
}

}  // namespace
}  // namespace swraman::obs::flight
