#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace swraman::obs {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_for_testing();
    Registry::instance().reset_for_testing();
  }
  void TearDown() override {
    set_enabled(false);
    reset_for_testing();
    Registry::instance().reset_for_testing();
  }

  // A small pipeline-shaped trace: two scf.iter under scf.solve, one of
  // them carrying a numeric attribute.
  void record_sample() {
    SWRAMAN_TRACE_SPAN(solve, "scf.solve");
    {
      SWRAMAN_TRACE_SPAN(iter, "scf.iter");
      iter.attr("flops", 100.0);
    }
    {
      SWRAMAN_TRACE_SPAN(iter, "scf.iter");
      iter.attr("flops", 50.0);
    }
  }
};

TEST_F(ReportTest, AggregationMergesSpansByPath) {
  record_sample();
  const std::vector<PhaseNode> phases = aggregate_phases(snapshot());
  ASSERT_EQ(phases.size(), 2u);
  // DFS order: parent first, then its children.
  EXPECT_EQ(phases[0].path, "scf.solve");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[1].path, "scf.solve/scf.iter");
  EXPECT_EQ(phases[1].count, 2u);
  EXPECT_DOUBLE_EQ(phases[1].attr_sums.at("flops"), 150.0);
}

TEST_F(ReportTest, SelfTimeExcludesChildren) {
  record_sample();
  const std::vector<PhaseNode> phases = aggregate_phases(snapshot());
  const PhaseNode& solve = phases[0];
  const PhaseNode& iter = phases[1];
  EXPECT_LE(solve.self_s, solve.wall_s);
  EXPECT_NEAR(solve.self_s, solve.wall_s - iter.wall_s, 1e-12);
  EXPECT_DOUBLE_EQ(iter.self_s, iter.wall_s);  // leaf: self == wall
}

TEST_F(ReportTest, ChromeTraceJsonSchema) {
  record_sample();
  instant("fault.injected", "site", std::string("scf.diverge"));
  const std::string json = chrome_trace_json(snapshot());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scf.solve\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  EXPECT_NE(json.find("\"args\":{\"flops\":100"), std::string::npos);
  EXPECT_NE(json.find("\"site\":\"scf.diverge\""), std::string::npos);
  // Every event needs ts/pid/tid for the viewer to accept the file.
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST_F(ReportTest, PerfReportJsonSchema) {
  record_sample();
  count("scf.iterations", 2.0);
  gauge_set("grid.imbalance", 1.1);
  observe("dfpt.sternheimer.residual", 1e-4);
  const std::string json = perf_report_json(snapshot(), 1.5);
  EXPECT_NE(json.find("\"schema\": \"swraman-perf-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"total_wall_s\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"scf.solve/scf.iter\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"flops\": 150"), std::string::npos);
  EXPECT_NE(json.find("\"scf.iterations\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"grid.imbalance\": 1.1"), std::string::npos);
  EXPECT_NE(json.find("\"dfpt.sternheimer.residual\": {\"count\": 1"),
            std::string::npos);
}

TEST_F(ReportTest, JsonStringsAreEscaped) {
  {
    SWRAMAN_TRACE_SPAN(span, "weird");
    span.attr("note", "a\"b\\c\nd");
  }
  const std::string json = chrome_trace_json(snapshot());
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST_F(ReportTest, PhaseTreeTextIndentsByDepth) {
  record_sample();
  const std::string text = phase_tree_text(aggregate_phases(snapshot()));
  EXPECT_NE(text.find("scf.solve"), std::string::npos);
  EXPECT_NE(text.find("\n  scf.iter"), std::string::npos);  // depth-1 indent
  EXPECT_NE(text.find("wall (s)"), std::string::npos);
}

TEST_F(ReportTest, RootsWithoutRecordedParentKeepTheirOrder) {
  { SWRAMAN_TRACE_SCOPE("relax"); }
  { SWRAMAN_TRACE_SCOPE("scf.solve"); }
  { SWRAMAN_TRACE_SCOPE("dfpt.response"); }
  const std::vector<PhaseNode> phases = aggregate_phases(snapshot());
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].path, "relax");
  EXPECT_EQ(phases[1].path, "scf.solve");
  EXPECT_EQ(phases[2].path, "dfpt.response");
}

}  // namespace
}  // namespace swraman::obs
