#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace swraman::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_for_testing();
  }
  void TearDown() override {
    set_enabled(false);
    reset_for_testing();
  }
};

TEST_F(TraceTest, NestingBuildsSlashJoinedPaths) {
  {
    SWRAMAN_TRACE_SPAN(outer, "raman.compute");
    {
      SWRAMAN_TRACE_SPAN(mid, "scf.solve");
      { SWRAMAN_TRACE_SCOPE("scf.iter"); }
    }
  }
  const std::vector<SpanRecord> spans = snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Children complete before parents; snapshot is sorted by start time.
  EXPECT_EQ(spans[0].path, "raman.compute");
  EXPECT_EQ(spans[1].path, "raman.compute/scf.solve");
  EXPECT_EQ(spans[2].path, "raman.compute/scf.solve/scf.iter");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
}

TEST_F(TraceTest, SiblingSpansShareParentPath) {
  {
    SWRAMAN_TRACE_SPAN(outer, "scf.iter");
    { SWRAMAN_TRACE_SCOPE("scf.veff"); }
    { SWRAMAN_TRACE_SCOPE("scf.eigensolve"); }
  }
  const std::vector<SpanRecord> spans = snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].path, "scf.iter/scf.veff");
  EXPECT_EQ(spans[2].path, "scf.iter/scf.eigensolve");
}

TEST_F(TraceTest, DurationsNestAndAreOrdered) {
  {
    SWRAMAN_TRACE_SPAN(outer, "outer");
    { SWRAMAN_TRACE_SCOPE("inner"); }
  }
  const std::vector<SpanRecord> spans = snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& outer = spans[0];
  const SpanRecord& inner = spans[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
}

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  set_enabled(false);
  {
    SWRAMAN_TRACE_SPAN(span, "ghost");
    EXPECT_FALSE(span.active());
    span.attr("k", 1.0);  // must be a no-op, not a crash
    instant("ghost.instant");
  }
  EXPECT_TRUE(snapshot().empty());
}

TEST_F(TraceTest, SpanEnabledMidwayDoesNotCorruptStack) {
  set_enabled(false);
  {
    SWRAMAN_TRACE_SPAN(outer, "outer");  // inactive
    set_enabled(true);
    { SWRAMAN_TRACE_SCOPE("inner"); }  // active, becomes a root
  }
  const std::vector<SpanRecord> spans = snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].path, "inner");
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST_F(TraceTest, AttributesAreRecorded) {
  {
    SWRAMAN_TRACE_SPAN(span, "kernel");
    ASSERT_TRUE(span.active());
    span.attr("flops", 1e9);
    span.attr("variant", "simd");
  }
  const std::vector<SpanRecord> spans = snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_EQ(spans[0].attrs[0].key, "flops");
  EXPECT_TRUE(spans[0].attrs[0].numeric);
  EXPECT_DOUBLE_EQ(spans[0].attrs[0].num, 1e9);
  EXPECT_EQ(spans[0].attrs[1].key, "variant");
  EXPECT_FALSE(spans[0].attrs[1].numeric);
  EXPECT_EQ(spans[0].attrs[1].str, "simd");
}

TEST_F(TraceTest, InstantEventsInheritTheCurrentPath) {
  {
    SWRAMAN_TRACE_SPAN(span, "scf.iter");
    instant("fault.injected", "site", std::string("scf.diverge"));
  }
  const std::vector<SpanRecord> spans = snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& inst = spans[0].instant ? spans[0] : spans[1];
  EXPECT_TRUE(inst.instant);
  EXPECT_EQ(inst.path, "scf.iter/fault.injected");
  EXPECT_EQ(inst.dur_ns, 0u);
}

TEST_F(TraceTest, ThreadsGetDistinctIdsAndIndependentStacks) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      SWRAMAN_TRACE_SPAN(span, "rank.work");
      { SWRAMAN_TRACE_SCOPE("rank.inner"); }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<SpanRecord> spans = snapshot();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  std::vector<std::uint32_t> tids;
  for (const SpanRecord& s : spans) {
    if (s.name == "rank.inner") {
      // Nesting stays per-thread: every inner span is a child of its own
      // thread's rank.work, never of another thread's.
      EXPECT_EQ(s.path, "rank.work/rank.inner");
      tids.push_back(s.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()) - tids.begin(), kThreads);
}

}  // namespace
}  // namespace swraman::obs
