#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "robustness/fault.hpp"
#include "serve/pool.hpp"

namespace swraman::serve {
namespace {

// Minimal central queue standing in for the fair-share scheduler.
struct CentralQueue {
  std::mutex mutex;
  std::vector<TaskRef> tasks;

  std::size_t refill(std::size_t max_tasks, std::vector<TaskRef>* out) {
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    while (n < max_tasks && !tasks.empty()) {
      out->push_back(tasks.back());
      tasks.pop_back();
      ++n;
    }
    return n;
  }

  void requeue(const std::vector<TaskRef>& orphans) {
    std::lock_guard<std::mutex> lock(mutex);
    tasks.insert(tasks.end(), orphans.begin(), orphans.end());
  }
};

void wait_for(const std::atomic<std::size_t>& counter, std::size_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (counter.load() < target) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(WorkerPool, DrainsCentralQueueAcrossWorkers) {
  fault::ScopedFaults guard;
  CentralQueue queue;
  const std::size_t n = 200;
  for (std::size_t i = 0; i < n; ++i) queue.tasks.push_back({1, i});
  std::atomic<std::size_t> done{0};
  std::vector<std::atomic<bool>> seen(n);

  WorkerPool::Options options;
  options.n_workers = 3;
  WorkerPool pool(
      options,
      [&](std::size_t, TaskRef ref) {
        EXPECT_FALSE(seen[ref.node].exchange(true)) << "task ran twice";
        done.fetch_add(1);
      },
      [&](double, std::size_t max_tasks, std::vector<TaskRef>* out) {
        return queue.refill(max_tasks, out);
      },
      [&](const std::vector<TaskRef>& orphans) { queue.requeue(orphans); });
  pool.start();
  wait_for(done, n);
  pool.stop();
  EXPECT_EQ(done.load(), n);
}

TEST(WorkerPool, PushLocalRunsContinuationsDepthFirst) {
  fault::ScopedFaults guard;
  std::atomic<std::size_t> done{0};
  WorkerPool::Options options;
  options.n_workers = 1;
  WorkerPool* pool_ptr = nullptr;
  WorkerPool pool(
      options,
      [&](std::size_t worker, TaskRef ref) {
        if (ref.node == 0) pool_ptr->push_local(worker, {ref.job, 1});
        done.fetch_add(1);
      },
      [&](double, std::size_t, std::vector<TaskRef>*) {
        return std::size_t{0};
      },
      [](const std::vector<TaskRef>&) {});
  pool_ptr = &pool;
  pool.start();
  pool.push_local(0, {7, 0});
  wait_for(done, 2);  // the seed task and its continuation both ran
  pool.stop();
}

TEST(WorkerPool, DyingWorkerHandsDequeToSurvivors) {
  fault::ScopedFaults guard;
  fault::FaultSpec spec;
  spec.fire_at = 1;  // the first task pickup anywhere dies
  fault::FaultInjector::instance().configure(kFaultWorkerDeath, spec);

  CentralQueue queue;
  const std::size_t n = 64;
  for (std::size_t i = 0; i < n; ++i) queue.tasks.push_back({1, i});
  std::atomic<std::size_t> done{0};
  std::vector<std::atomic<bool>> seen(n);

  WorkerPool::Options options;
  options.n_workers = 2;
  WorkerPool pool(
      options,
      [&](std::size_t, TaskRef ref) {
        EXPECT_FALSE(seen[ref.node].exchange(true)) << "task ran twice";
        done.fetch_add(1);
      },
      [&](double, std::size_t max_tasks, std::vector<TaskRef>* out) {
        return queue.refill(max_tasks, out);
      },
      [&](const std::vector<TaskRef>& orphans) { queue.requeue(orphans); });
  pool.start();
  wait_for(done, n);
  pool.stop();
  EXPECT_EQ(done.load(), n);
  EXPECT_EQ(pool.alive(), 1u) << "exactly one worker should have died";
}

TEST(WorkerPool, LastSurvivorShrugsOffDeathFault) {
  fault::ScopedFaults guard;
  fault::FaultSpec spec;
  spec.probability = 1.0;  // every pickup tries to kill the worker
  fault::FaultInjector::instance().configure(kFaultWorkerDeath, spec);

  CentralQueue queue;
  const std::size_t n = 16;
  for (std::size_t i = 0; i < n; ++i) queue.tasks.push_back({1, i});
  std::atomic<std::size_t> done{0};

  WorkerPool::Options options;
  options.n_workers = 1;
  WorkerPool pool(
      options, [&](std::size_t, TaskRef) { done.fetch_add(1); },
      [&](double, std::size_t max_tasks, std::vector<TaskRef>* out) {
        return queue.refill(max_tasks, out);
      },
      [&](const std::vector<TaskRef>& orphans) { queue.requeue(orphans); });
  pool.start();
  wait_for(done, n);
  pool.stop();
  EXPECT_EQ(done.load(), n);
  EXPECT_EQ(pool.alive(), 1u);
}

}  // namespace
}  // namespace swraman::serve
