#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

// End-to-end exercises of the distributed observability plane
// (DESIGN.md S13): worker log context, cross-shard jobtrace stitching
// across a kill/replay, the flight-recorder dump on a shard kill, and the
// SLO monitor riding the serve tier's own submit/finish paths.

namespace swraman::serve {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

JobSpec modeled_spec(const std::string& client, std::size_t n_atoms) {
  JobSpec spec;
  spec.client = client;
  spec.name = client + "-" + std::to_string(n_atoms);
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = n_atoms;
  return spec;
}

class ObsPlaneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_jobtrace_enabled(true);
    obs::flight::set_enabled(true);
    obs::flight::set_dump_dir(::testing::TempDir());
    obs::flight::reset_for_testing();
    obs::JobTraceRegistry::instance().reset_for_testing();
    obs::Registry::instance().reset_for_testing();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_jobtrace_enabled(false);
    obs::flight::set_enabled(false);
    obs::flight::reset_for_testing();
    obs::JobTraceRegistry::instance().reset_for_testing();
    obs::Registry::instance().reset_for_testing();
  }
};

TEST_F(ObsPlaneTest, WorkerLogContextCarriesShardWorkerAndJob) {
  std::mutex mu;
  std::vector<std::string> contexts;
  ServiceOptions opts;
  opts.n_workers = 2;
  opts.shard_id = 3;
  opts.modeled.iterations_per_modeled_second = 100.0;
  opts.modeled.min_iterations = 50;
  opts.modeled.max_iterations = 500;
  // on_task_durable runs on the worker thread inside execute(), where the
  // scoped "/g<gid>" tag is active on top of the worker's "s3/w<k>".
  opts.hooks.on_task_durable = [&](std::uint64_t, std::size_t, int,
                                   const raman::GeometryRecord&) {
    const std::lock_guard<std::mutex> lock(mu);
    contexts.push_back(log::thread_context());
  };
  RamanService svc(opts);
  SubmitOptions sub;
  sub.tag = 17;
  const SubmitResult res = svc.submit(modeled_spec("alice", 2), sub);
  ASSERT_TRUE(res.accepted) << res.reason;
  svc.drain();

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(contexts.empty());
  for (const std::string& ctx : contexts) {
    EXPECT_EQ(ctx.rfind("s3/w", 0), 0u) << ctx;
    EXPECT_NE(ctx.find("/g17"), std::string::npos) << ctx;
  }
  // The worker context is scoped per task: this thread keeps its own.
  EXPECT_EQ(log::thread_context(), "");
}

TEST_F(ObsPlaneTest, RejectionStretchesRetryAfterByBackpressureHint) {
  ServiceOptions opts;
  opts.n_workers = 1;
  opts.admission.max_queued_tasks = 0;  // reject everything
  RamanService calm(opts);
  opts.backpressure = [] { return 0.5; };
  RamanService burning(opts);

  const JobSpec spec = modeled_spec("alice", 3);
  const SubmitResult a = calm.submit(spec);
  const SubmitResult b = burning.submit(spec);
  ASSERT_FALSE(a.accepted);
  ASSERT_FALSE(b.accepted);
  EXPECT_GT(a.retry_after_s, 0.0);
  // Identical fresh state, so the only difference is the (1 + hint)
  // stretch the burning error budget applies.
  EXPECT_NEAR(b.retry_after_s, 1.5 * a.retry_after_s,
              1e-9 * a.retry_after_s);
}

TEST_F(ObsPlaneTest, RejectedTracedSubmissionEndsSpanWithReason) {
  auto& jt = obs::JobTraceRegistry::instance();
  ServiceOptions opts;
  opts.admission.max_queued_tasks = 0;
  RamanService svc(opts);
  const obs::TraceContext root = jt.root(99, "job");
  SubmitOptions sub;
  sub.trace = root;
  const SubmitResult res = svc.submit(modeled_spec("alice", 2), sub);
  ASSERT_FALSE(res.accepted);
  const std::vector<obs::JobSpan> spans = jt.spans(99);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "submit");
  EXPECT_NE(spans[1].end_ns, 0u);
  bool rejected_attr = false;
  for (const obs::Attr& a : spans[1].attrs) {
    if (a.key == "rejected") rejected_attr = true;
  }
  EXPECT_TRUE(rejected_attr);
}

// The tentpole end-to-end: a shard killed with in-flight jobs, recovered
// from its WAL, must leave (a) one stitched per-job timeline spanning
// both incarnations, (b) a flight-recorder dump for the kill, and (c)
// SLO health snapshots collected by the tier's own code paths.
TEST_F(ObsPlaneTest, JobTraceStitchesAcrossKillAndReplay) {
  fault::ScopedFaults guard;
  const std::string wal_dir = temp_dir("obs_plane_stitch");
  ShardedOptions opts;
  opts.n_shards = 2;
  opts.wal_dir = wal_dir;
  opts.service.n_workers = 2;
  opts.service.modeled.iterations_per_modeled_second = 100.0;
  // Slow spin kernel: the kills must land while displacement tasks are
  // still pending on some shard (a replayed job with every displacement
  // already durable has nothing post-kill to stitch), so each task burns
  // ~1 ms and the per-shard backlog stays tens of ms deep.
  opts.service.modeled.min_iterations = 1000000;
  opts.service.modeled.max_iterations = 1000000;
  opts.slo.min_period_s = 0.0;  // snapshot on every tier tick

  ShardedRamanService svc(opts);
  std::vector<std::uint64_t> gids;
  for (int i = 0; i < 6; ++i) {
    const SubmitResult res =
        svc.submit(modeled_spec(i % 2 == 0 ? "alice" : "bob", 2 + i % 3));
    ASSERT_TRUE(res.accepted) << res.reason;
    gids.push_back(res.job_id);
  }
  svc.kill_shard(0);
  svc.kill_shard(1);
  svc.recover_all();
  svc.drain();
  for (const std::uint64_t gid : gids) {
    EXPECT_EQ(svc.wait(gid).status, JobStatus::Completed);
  }

  // (a) Stitched timeline: some job crossed the kill — its single gid
  // timeline holds spans from incarnation 0 AND its replay.
  auto& jt = obs::JobTraceRegistry::instance();
  bool stitched = false;
  for (const std::uint64_t gid : gids) {
    if (jt.incarnation(gid) == 0) continue;
    const std::vector<obs::JobSpan> spans = jt.spans(gid);
    const bool has_replay = std::any_of(
        spans.begin(), spans.end(), [](const obs::JobSpan& s) {
          return s.name == "replay" && s.incarnation >= 1;
        });
    const bool has_pre_kill = std::any_of(
        spans.begin(), spans.end(), [](const obs::JobSpan& s) {
          return s.incarnation == 0 && s.id != 1;
        });
    const bool has_post_kill = std::any_of(
        spans.begin(), spans.end(), [](const obs::JobSpan& s) {
          return s.incarnation >= 1 && s.name == "displacement";
        });
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans.front().id, 1u);
    EXPECT_NE(spans.front().end_ns, 0u);  // root closed at completion
    if (has_replay && has_pre_kill && has_post_kill) stitched = true;
  }
  EXPECT_TRUE(stitched)
      << "no job timeline stitched across the kill/replay boundary";

  // (b) Flight recorder: the kill dumped a postmortem.
  EXPECT_GE(obs::flight::dump_count(), 1u);
  const std::string dump =
      ::testing::TempDir() + "flight-serve.shard.kill.json";
  EXPECT_TRUE(std::filesystem::exists(dump));

  // (c) SLO monitor: the tier's submit/finish/recover paths produced
  // health snapshots without any dedicated thread.
  const std::vector<obs::HealthSnapshot> hist = svc.slo().history();
  EXPECT_GE(hist.size(), 2u);
  const std::string health = svc.slo().export_json();
  EXPECT_NE(health.find("\"schema\": \"swraman-health-v1\""),
            std::string::npos);
  EXPECT_NE(health.find("\"tenant\": \"alice\""), std::string::npos);

  std::filesystem::remove_all(wal_dir);
}

TEST_F(ObsPlaneTest, SubmitSpansCarryTheAccuracyTierLabel) {
  auto& jt = obs::JobTraceRegistry::instance();
  ServiceOptions opts;
  opts.n_workers = 1;
  opts.start_paused = true;
  opts.modeled.iterations_per_modeled_second = 100.0;
  opts.modeled.min_iterations = 50;
  opts.modeled.max_iterations = 500;
  RamanService svc(opts);

  const auto submit_tier = [&](std::uint64_t gid, Tier tier) {
    JobSpec spec = modeled_spec("alice", 2);
    spec.tier = tier;
    SubmitOptions sub;
    sub.trace = jt.root(gid, "job");
    const SubmitResult res = svc.submit(spec, sub);
    ASSERT_TRUE(res.accepted) << res.reason;
  };
  submit_tier(71, Tier::Dfpt);
  submit_tier(72, Tier::Bec);
  svc.drain();

  const auto tier_attr = [&](std::uint64_t gid) {
    for (const obs::JobSpan& s : jt.spans(gid)) {
      if (s.name != "submit") continue;
      for (const obs::Attr& a : s.attrs) {
        if (a.key == "tier") return a.str;
      }
    }
    return std::string("<missing>");
  };
  // SLO dashboards and postmortems must be able to split by tier: every
  // submission span is labeled with the accuracy tier it was priced at.
  EXPECT_EQ(tier_attr(71), "dfpt");
  EXPECT_EQ(tier_attr(72), "bec");
}

TEST_F(ObsPlaneTest, CompletionLatencyIsRecordedPerTier) {
  ServiceOptions opts;
  opts.n_workers = 2;
  opts.modeled.iterations_per_modeled_second = 100.0;
  opts.modeled.min_iterations = 50;
  opts.modeled.max_iterations = 500;
  RamanService svc(opts);
  JobSpec dfpt = modeled_spec("alice", 2);
  JobSpec bec = modeled_spec("alice", 3);
  bec.tier = Tier::Bec;
  ASSERT_TRUE(svc.submit(dfpt).accepted);
  ASSERT_TRUE(svc.submit(bec).accepted);
  svc.drain();

  const auto hists = obs::Registry::instance().histogram_values();
  const auto count_of = [&](const std::string& name) -> std::uint64_t {
    const auto it = hists.find(name);
    return it == hists.end() ? 0u : it->second.count;
  };
  // One completion per tier, each in its own latency histogram, so tier
  // SLOs can diverge (the bec tier is priced and promised faster).
  EXPECT_EQ(count_of("serve.latency.tier.dfpt"), 1u);
  EXPECT_EQ(count_of("serve.latency.tier.bec"), 1u);
  for (const std::string name :
       {"serve.latency.tier.dfpt", "serve.latency.tier.bec"}) {
    const auto it = hists.find(name);
    ASSERT_NE(it, hists.end());
    EXPECT_GT(it->second.sum, 0.0) << name;
  }
}

}  // namespace
}  // namespace swraman::serve
