#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/molecules.hpp"
#include "robustness/fault.hpp"
#include "serve/service.hpp"
#include "serve/wal.hpp"

namespace swraman::serve {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

JobSpec modeled_spec(const std::string& client, std::size_t n_atoms) {
  JobSpec spec;
  spec.client = client;
  spec.name = client + " job";  // space: tokenization must not care
  spec.priority = 3;
  spec.weight = 1.5;
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = n_atoms;
  return spec;
}

raman::GeometryRecord make_record(double base) {
  raman::GeometryRecord rec;
  for (int k = 0; k < 9; ++k) {
    rec.alpha[static_cast<std::size_t>(k)] = base + 0.1 * k + 1e-13;
  }
  for (int k = 0; k < 3; ++k) {
    rec.dipole[static_cast<std::size_t>(k)] = -base + 0.01 * k;
  }
  return rec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Same FNV-1a the WAL writer uses — the forged-record test recomputes a
// valid checksum over a tampered body.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(ServeWal, RoundTripsModeledJobTasksAndStatus) {
  fault::ScopedFaults guard;
  const std::string path = temp_path("wal_roundtrip.wal");
  const JobSpec spec = modeled_spec("alice", 5);
  const raman::GeometryRecord r0 = make_record(1.25);
  const raman::GeometryRecord r1 = make_record(-7.5e-3);
  {
    JobLog log(path, 2);
    log.append_job(41, spec);
    log.append_task(41, 3, -1, r0);
    log.append_task(41, 0, +1, r1);
    log.append_done(41, JobStatus::Completed);
    EXPECT_TRUE(log.active());
    EXPECT_FALSE(log.wedged());
    EXPECT_EQ(log.records(), 4u);
    EXPECT_GE(log.fsyncs(), 5u);  // header + every record
  }
  const WalReplay rep = JobLog::replay(path);
  EXPECT_FALSE(rep.torn_tail);
  EXPECT_EQ(rep.records, 4u);
  EXPECT_EQ(rep.task_records, 2u);
  ASSERT_EQ(rep.jobs.size(), 1u);
  const LoggedJob& job = rep.jobs[0];
  EXPECT_EQ(job.gid, 41u);
  EXPECT_TRUE(job.finished);
  EXPECT_EQ(job.final_status, JobStatus::Completed);
  EXPECT_EQ(job.spec.client, spec.client);
  EXPECT_EQ(job.spec.name, spec.name);
  EXPECT_EQ(job.spec.priority, spec.priority);
  EXPECT_EQ(job.spec.engine, EngineKind::Modeled);
  EXPECT_EQ(job.spec.scale.n_atoms, spec.scale.n_atoms);
  EXPECT_EQ(job.settings_fp, settings_fingerprint(spec));
  EXPECT_EQ(settings_fingerprint(job.spec), settings_fingerprint(spec));
  ASSERT_EQ(job.tasks.size(), 2u);
  const raman::GeometryRecord& back0 = job.tasks.at({3, -1});
  const raman::GeometryRecord& back1 = job.tasks.at({0, +1});
  // %.17g round trip: bitwise, not approximately.
  for (int k = 0; k < 9; ++k) {
    EXPECT_EQ(back0.alpha[static_cast<std::size_t>(k)],
              r0.alpha[static_cast<std::size_t>(k)]);
    EXPECT_EQ(back1.alpha[static_cast<std::size_t>(k)],
              r1.alpha[static_cast<std::size_t>(k)]);
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(back0.dipole[static_cast<std::size_t>(k)],
              r0.dipole[static_cast<std::size_t>(k)]);
    EXPECT_EQ(back1.dipole[static_cast<std::size_t>(k)],
              r1.dipole[static_cast<std::size_t>(k)]);
  }
  std::remove(path.c_str());
}

TEST(ServeWal, RoundTripsRealSpecFingerprint) {
  fault::ScopedFaults guard;
  const std::string path = temp_path("wal_real.wal");
  JobSpec spec;
  spec.client = "bio-lab";
  spec.engine = EngineKind::Real;
  spec.atoms = molecules::water();
  spec.options.alpha_displacement = 0.007;
  spec.options.vibrations.scf.density_tol = 3e-7;
  spec.options.dfpt.max_iterations = 37;
  {
    JobLog log(path, 0);
    log.append_job(9, spec);
  }
  const WalReplay rep = JobLog::replay(path);
  ASSERT_EQ(rep.jobs.size(), 1u);
  const JobSpec& back = rep.jobs[0].spec;
  EXPECT_EQ(back.engine, EngineKind::Real);
  ASSERT_EQ(back.atoms.size(), spec.atoms.size());
  for (std::size_t a = 0; a < spec.atoms.size(); ++a) {
    EXPECT_EQ(back.atoms[a].z, spec.atoms[a].z);
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(back.atoms[a].pos[k], spec.atoms[a].pos[k]);
    }
  }
  // The contract: the replayed spec reproduces every cache key, i.e. the
  // settings fingerprint, exactly.
  EXPECT_EQ(settings_fingerprint(back), settings_fingerprint(spec));
  std::remove(path.c_str());
}

TEST(ServeWal, MissingFileReplaysEmpty) {
  const WalReplay rep = JobLog::replay(temp_path("wal_never_written.wal"));
  EXPECT_TRUE(rep.jobs.empty());
  EXPECT_EQ(rep.records, 0u);
  EXPECT_FALSE(rep.torn_tail);
}

TEST(ServeWal, ForeignHeaderThrows) {
  const std::string path = temp_path("wal_foreign.wal");
  write_file(path, "some-other-format 3\njob 1 ...\n");
  EXPECT_THROW(JobLog::replay(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(ServeWal, ChecksumRejectsCorruptedRecord) {
  fault::ScopedFaults guard;
  const std::string path = temp_path("wal_corrupt.wal");
  {
    JobLog log(path, 1);
    log.append_job(1, modeled_spec("alice", 3));
    log.append_task(1, 0, +1, make_record(2.0));
    log.append_task(1, 1, -1, make_record(3.0));
  }
  std::string bytes = read_file(path);
  // Flip one digit inside the *second* record (the first task line): the
  // acknowledged prefix is exactly the job record before it.
  const std::size_t second = bytes.find("\ntask");
  ASSERT_NE(second, std::string::npos);
  const std::size_t digit = bytes.find_first_of("0123456789", second + 6);
  ASSERT_NE(digit, std::string::npos);
  bytes[digit] = bytes[digit] == '9' ? '8' : '9';
  write_file(path, bytes);

  const WalReplay rep = JobLog::replay(path);
  EXPECT_TRUE(rep.torn_tail);
  EXPECT_EQ(rep.records, 1u);  // the job record only
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_TRUE(rep.jobs[0].tasks.empty());
  std::remove(path.c_str());
}

TEST(ServeWal, FingerprintMismatchThrowsLoudly) {
  fault::ScopedFaults guard;
  const std::string path = temp_path("wal_forged.wal");
  {
    JobLog log(path, 0);
    log.append_job(5, modeled_spec("alice", 4));
  }
  std::string bytes = read_file(path);
  const std::size_t nl = bytes.find('\n');
  ASSERT_NE(nl, std::string::npos);
  const std::string header = bytes.substr(0, nl + 1);
  std::string line = bytes.substr(nl + 1);
  while (!line.empty() && line.back() == '\n') line.pop_back();
  // Forge the logged fingerprint (token 3 of "job <gid> <fp-hex> ...")
  // and re-checksum the body: the record is checksum-intact but replays
  // to a different fingerprint — a compatibility bug that must throw, not
  // silently recompute under different settings.
  const std::size_t marker = line.rfind(" crc ");
  ASSERT_NE(marker, std::string::npos);
  std::string body = line.substr(0, marker);
  const std::size_t fp_begin = body.find(' ', body.find(' ') + 1) + 1;
  body[fp_begin] = body[fp_begin] == 'f' ? '0' : 'f';
  char crc[24];
  std::snprintf(crc, sizeof(crc), "%016llx",
                static_cast<unsigned long long>(fnv1a(body)));
  write_file(path, header + body + " crc " + crc + "\n");
  EXPECT_THROW(JobLog::replay(path), CheckpointError);
  std::remove(path.c_str());
}

// The ISSUE-6 property test: a crash may truncate the log at *any* byte.
// For every truncation point after the header, replay must (a) not crash,
// (b) recover exactly the acknowledged prefix — every record whose full
// line made it to disk, nothing from the torn byte on — and (c) flag a
// torn tail iff the cut fell mid-record. (A cut inside the header is a
// different-format file by construction and out of scope: the shard never
// acknowledges anything before its header fsync succeeds.)
TEST(ServeWal, TruncationAtEveryByteRecoversAcknowledgedPrefix) {
  fault::ScopedFaults guard;
  const std::string path = temp_path("wal_property_full.wal");
  {
    JobLog log(path, 0);
    log.append_job(1, modeled_spec("alice", 2));
    log.append_task(1, 0, +1, make_record(0.5));
    log.append_task(1, 0, -1, make_record(1.5));
    log.append_job(2, modeled_spec("bob", 3));
    log.append_task(2, 4, -1, make_record(-2.25));
    log.append_done(1, JobStatus::Completed);
    log.append_done(2, JobStatus::Failed);
  }
  const std::string bytes = read_file(path);

  // Record-line boundaries (byte offsets one past each '\n') and the
  // expected cumulative state after each complete line.
  struct Expected {
    std::size_t records = 0;
    std::size_t tasks = 0;
    std::size_t jobs = 0;
  };
  std::vector<std::size_t> ends;
  std::vector<Expected> at_end;  // state once line i is complete
  Expected state;
  std::size_t start = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] != '\n') continue;
    const std::string line = bytes.substr(start, i - start);
    if (!ends.empty()) {  // line 0 is the header
      ++state.records;
      if (line.rfind("task", 0) == 0) ++state.tasks;
      if (line.rfind("job", 0) == 0) ++state.jobs;
    }
    ends.push_back(i + 1);
    at_end.push_back(state);
    start = i + 1;
  }
  ASSERT_EQ(at_end.back().records, 7u);
  ASSERT_EQ(at_end.back().jobs, 2u);
  ASSERT_EQ(at_end.back().tasks, 3u);

  const std::string trunc = temp_path("wal_property_trunc.wal");
  for (std::size_t cut = ends[0]; cut <= bytes.size(); ++cut) {
    write_file(trunc, bytes.substr(0, cut));
    WalReplay rep;
    ASSERT_NO_THROW(rep = JobLog::replay(trunc)) << "cut at byte " << cut;
    // The last checksum-intact line decides the recovered prefix. A line
    // missing only its trailing '\n' is content-complete — its checksum
    // validates, so it is (correctly) part of the recovered prefix.
    Expected want;
    bool clean_tail = false;
    for (std::size_t i = 0; i < ends.size(); ++i) {
      if (ends[i] - 1 <= cut) want = at_end[i];
      if (ends[i] - 1 == cut || ends[i] == cut) clean_tail = true;
    }
    EXPECT_EQ(rep.records, want.records) << "cut at byte " << cut;
    EXPECT_EQ(rep.task_records, want.tasks) << "cut at byte " << cut;
    EXPECT_EQ(rep.jobs.size(), want.jobs) << "cut at byte " << cut;
    EXPECT_EQ(rep.torn_tail, !clean_tail) << "cut at byte " << cut;
  }
  std::remove(path.c_str());
  std::remove(trunc.c_str());
}

TEST(ServeWal, TornWriteFaultWedgesLogAndDropsLaterAppends) {
  fault::ScopedFaults guard;
  fault::FaultSpec torn;
  torn.fire_at = 2;  // the first task append tears mid-record
  fault::FaultInjector::instance().configure(kFaultWalTornWrite, torn);

  const std::string path = temp_path("wal_torn.wal");
  JobLog log(path, 0);
  log.append_job(11, modeled_spec("alice", 2));
  EXPECT_FALSE(log.wedged());
  log.append_task(11, 0, +1, make_record(4.0));  // torn — silently dropped
  EXPECT_TRUE(log.wedged());
  log.append_task(11, 0, -1, make_record(5.0));  // dropped (dead disk)
  log.append_done(11, JobStatus::Completed);     // dropped
  EXPECT_EQ(log.records(), 1u);
  // A wedged log cannot make durability promises: acknowledging a new job
  // must fail loudly so the tier fails the submission over.
  EXPECT_THROW(log.append_job(12, modeled_spec("bob", 2)), CheckpointError);

  const WalReplay rep = JobLog::replay(path);
  EXPECT_TRUE(rep.torn_tail);
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_EQ(rep.jobs[0].gid, 11u);
  EXPECT_TRUE(rep.jobs[0].tasks.empty());
  EXPECT_FALSE(rep.jobs[0].finished);
  std::remove(path.c_str());
}

// Replay feeds durable records back as the warm set; a fully warm job
// must re-execute zero displacement evaluations (no duplicate task
// execution) and assemble a bitwise-identical result.
TEST(ServeWal, WarmReplayExecutesNoDuplicateTasks) {
  fault::ScopedFaults guard;
  const JobSpec spec = modeled_spec("alice", 3);

  std::mutex mu;
  std::map<std::pair<std::size_t, int>, raman::GeometryRecord> durable;
  ServiceOptions first;
  first.n_workers = 2;
  first.modeled.iterations_per_modeled_second = 100.0;
  first.modeled.min_iterations = 50;
  first.modeled.max_iterations = 500;
  first.hooks.on_task_durable = [&](std::uint64_t, std::size_t coord,
                                    int sign,
                                    const raman::GeometryRecord& rec) {
    std::lock_guard<std::mutex> lock(mu);
    durable[{coord, sign}] = rec;
  };
  ServiceOptions second = first;
  second.hooks = {};

  JobResult cold;
  {
    RamanService service(first);
    const SubmitResult res = service.submit(spec);
    ASSERT_TRUE(res.accepted);
    cold = service.wait(res.job_id);
  }
  ASSERT_EQ(cold.status, JobStatus::Completed);
  // Every displacement node reported a durable own-frame record.
  EXPECT_EQ(durable.size(), 6 * spec.scale.n_atoms);

  RamanService replayed(second);
  SubmitOptions sub;
  sub.warm = &durable;
  const SubmitResult res = replayed.submit(spec, sub);
  ASSERT_TRUE(res.accepted);
  const JobResult warm = replayed.wait(res.job_id);
  ASSERT_EQ(warm.status, JobStatus::Completed);
  const ServiceStats stats = replayed.stats();
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.warm_hits, durable.size());
  EXPECT_EQ(warm.tasks_executed, 0);
  ASSERT_EQ(warm.dalpha.rows(), cold.dalpha.rows());
  for (std::size_t i = 0; i < warm.dalpha.rows(); ++i) {
    for (std::size_t j = 0; j < warm.dalpha.cols(); ++j) {
      EXPECT_EQ(warm.dalpha(i, j), cold.dalpha(i, j));
    }
    for (std::size_t j = 0; j < warm.dmu.cols(); ++j) {
      EXPECT_EQ(warm.dmu(i, j), cold.dmu(i, j));
    }
  }
}

TEST(ServeWal, TraceRecordRoundTripsRootSpan) {
  fault::ScopedFaults guard;
  const std::string path = temp_path("wal_trace.wal");
  const JobSpec spec = modeled_spec("alice", 3);
  const raman::GeometryRecord r0 = make_record(0.5);
  {
    JobLog log(path, 0);
    log.append_job(17, spec);
    log.append_trace(17, 1);
    log.append_task(17, 0, +1, r0);
    log.append_done(17, JobStatus::Completed);
    EXPECT_EQ(log.records(), 4u);
  }
  const WalReplay rep = JobLog::replay(path);
  EXPECT_FALSE(rep.torn_tail);
  EXPECT_EQ(rep.records, 4u);
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_EQ(rep.jobs[0].trace_root, 1u);
  // The trace record rides between job and task records without
  // disturbing either.
  EXPECT_EQ(rep.jobs[0].tasks.size(), 1u);
  EXPECT_TRUE(rep.jobs[0].finished);
  std::remove(path.c_str());
}

TEST(ServeWal, TraceRecordDefaultsToZeroWhenAbsent) {
  fault::ScopedFaults guard;
  const std::string path = temp_path("wal_no_trace.wal");
  {
    JobLog log(path, 0);
    log.append_job(5, modeled_spec("bob", 2));
  }
  const WalReplay rep = JobLog::replay(path);
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_EQ(rep.jobs[0].trace_root, 0u);  // pre-tracing logs replay fine
  std::remove(path.c_str());
}

TEST(ServeWal, TraceRecordForUnknownGidIsTornTail) {
  fault::ScopedFaults guard;
  const std::string path = temp_path("wal_orphan_trace.wal");
  const raman::GeometryRecord r0 = make_record(1.0);
  {
    JobLog log(path, 0);
    log.append_job(8, modeled_spec("carol", 2));
    log.append_task(8, 0, -1, r0);
    // A trace record naming a gid the log never admitted cannot be
    // attributed; replay must stop there like any other malformed tail
    // instead of guessing.
    log.append_trace(999, 1);
  }
  const WalReplay rep = JobLog::replay(path);
  EXPECT_TRUE(rep.torn_tail);
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_EQ(rep.jobs[0].gid, 8u);
  EXPECT_EQ(rep.jobs[0].tasks.size(), 1u);  // acknowledged prefix intact
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swraman::serve
