#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/molecules.hpp"
#include "serve/router.hpp"

namespace swraman::serve {
namespace {

RouterOptions four_shards() {
  RouterOptions o;
  o.n_shards = 4;
  return o;
}

std::vector<std::uint64_t> some_keys(std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t k = 0; k < n; ++k) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    keys.push_back(x);
  }
  return keys;
}

TEST(ServeRouter, DeterministicAndReasonablyBalanced) {
  ShardRouter a(four_shards());
  ShardRouter b(four_shards());
  std::map<std::size_t, std::size_t> load;
  for (const std::uint64_t key : some_keys(2000)) {
    const std::size_t s = a.route(key);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, b.route(key));       // stateless placement
    EXPECT_EQ(s, a.home(key));        // all alive: route == home
    ++load[s];
  }
  // Rendezvous hashing spreads keys near-uniformly; no shard should be
  // starved or dominant.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(load[s], 300u) << "shard " << s;
    EXPECT_LT(load[s], 700u) << "shard " << s;
  }
}

TEST(ServeRouter, DeathMovesOnlyTheDeadShardsKeys) {
  ShardRouter router(four_shards());
  const std::vector<std::uint64_t> keys = some_keys(1000);
  std::map<std::uint64_t, std::size_t> before;
  for (const std::uint64_t key : keys) before[key] = router.route(key);

  router.mark_dead(2);
  EXPECT_EQ(router.n_live(), 3u);
  EXPECT_FALSE(router.alive(2));
  std::size_t moved = 0;
  for (const std::uint64_t key : keys) {
    const std::size_t now = router.route(key);
    EXPECT_NE(now, 2u);
    if (before[key] != 2) {
      // Minimal movement: keys of healthy shards never migrate.
      EXPECT_EQ(now, before[key]) << "key " << key;
    } else {
      ++moved;
      // The dead shard's keys each fail over to their rendezvous
      // runner-up — the live shard with the next-highest score.
      std::size_t runner_up = 0;
      std::uint64_t best = 0;
      for (std::size_t s = 0; s < 4; ++s) {
        if (s == 2) continue;
        const std::uint64_t sc =
            ShardRouter::score(key, s, four_shards().seed);
        if (sc > best) {
          best = sc;
          runner_up = s;
        }
      }
      EXPECT_EQ(now, runner_up) << "key " << key;
    }
  }
  EXPECT_GT(moved, 0u);

  // Recovery brings every key home; nothing else moved in the meantime.
  router.mark_alive(2);
  for (const std::uint64_t key : keys) {
    EXPECT_EQ(router.route(key), before[key]);
  }
  EXPECT_EQ(router.deaths(), 1u);
  EXPECT_EQ(router.recoveries(), 1u);
}

TEST(ServeRouter, AllDeadRoutesToNoShard) {
  ShardRouter router(four_shards());
  for (std::size_t s = 0; s < 4; ++s) router.mark_dead(s);
  EXPECT_EQ(router.n_live(), 0u);
  EXPECT_EQ(router.route(123), ShardRouter::kNoShard);
  // home() ignores liveness and still names the owner.
  EXPECT_LT(router.home(123), 4u);
}

TEST(ServeRouter, RetryAfterHintIsPositiveBoundedAndDeterministic) {
  ShardRouter a(four_shards());
  ShardRouter b(four_shards());
  a.mark_dead(1);
  b.mark_dead(1);
  const BackoffOptions probe = four_shards().probe;
  double last_a = 0.0;
  for (int k = 0; k < 10; ++k) {
    const double hint_a = a.retry_after_hint(1);
    const double hint_b = b.retry_after_hint(1);
    EXPECT_EQ(hint_a, hint_b);  // same seed, same schedule
    EXPECT_GE(hint_a, probe.base_s);
    EXPECT_LE(hint_a, probe.cap_s);
    last_a = hint_a;
  }
  // Revival resets the probe schedule: the next death replays it.
  a.mark_alive(1);
  a.mark_dead(1);
  const double first_again = a.retry_after_hint(1);
  ShardRouter fresh(four_shards());
  fresh.mark_dead(1);
  EXPECT_EQ(first_again, fresh.retry_after_hint(1));
  (void)last_a;
}

TEST(ServeRouter, MarkDeadAndAliveAreIdempotent) {
  ShardRouter router(four_shards());
  router.mark_dead(3);
  router.mark_dead(3);
  EXPECT_EQ(router.deaths(), 1u);
  EXPECT_EQ(router.n_live(), 3u);
  router.mark_alive(3);
  router.mark_alive(3);
  EXPECT_EQ(router.recoveries(), 1u);
  EXPECT_EQ(router.n_live(), 4u);
}

TEST(ServeRouter, JobKeyTracksTenantAndContentNotLabels) {
  JobSpec spec;
  spec.client = "alice";
  spec.name = "run-1";
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = 8;

  JobSpec same = spec;
  same.name = "run-2";  // labels don't reroute a tenant's resubmissions
  EXPECT_EQ(ShardRouter::job_key(spec), ShardRouter::job_key(same));

  JobSpec other_tenant = spec;
  other_tenant.client = "bob";
  EXPECT_NE(ShardRouter::job_key(spec), ShardRouter::job_key(other_tenant));

  JobSpec other_scale = spec;
  other_scale.scale.n_atoms = 9;  // different content fingerprint
  EXPECT_NE(ShardRouter::job_key(spec), ShardRouter::job_key(other_scale));

  JobSpec real;
  real.client = "alice";
  real.engine = EngineKind::Real;
  real.atoms = molecules::water();
  JobSpec real_moved = real;
  real_moved.atoms[0].pos[2] += 0.01;  // geometry is part of the key
  EXPECT_NE(ShardRouter::job_key(real), ShardRouter::job_key(real_moved));
}

}  // namespace
}  // namespace swraman::serve
