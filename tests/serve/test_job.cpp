#include <gtest/gtest.h>

#include "core/molecules.hpp"
#include "core/workload.hpp"
#include "serve/job.hpp"

namespace swraman::serve {
namespace {

TEST(Hash64, DistinguishesAndReproduces) {
  Hash64 a;
  a.u64(1);
  a.f64(2.5);
  a.str("water");
  Hash64 b;
  b.u64(1);
  b.f64(2.5);
  b.str("water");
  EXPECT_EQ(a.value(), b.value());
  Hash64 c;
  c.u64(1);
  c.f64(2.5);
  c.str("wader");
  EXPECT_NE(a.value(), c.value());
}

TEST(Hash64, NegativeZeroFoldsOntoPositive) {
  Hash64 a;
  a.f64(0.0);
  Hash64 b;
  b.f64(-0.0);
  EXPECT_EQ(a.value(), b.value());
}

TEST(AxisTransforms, GroupHas48DistinctElements) {
  const auto& all = axis_transforms();
  ASSERT_EQ(all.size(), 48u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i].perm == all[j].perm && all[i].sign == all[j].sign);
    }
  }
}

TEST(AxisTransforms, InverseRoundTripsExactly) {
  const Vec3 p{0.123456789, -7.5, 3.25};
  const std::array<double, 9> alpha{1.5, 0.25, -0.5, 0.25, 2.0,
                                    0.75, -0.5, 0.75, 3.5};
  for (const AxisTransform& t : axis_transforms()) {
    const AxisTransform inv = inverse(t);
    const Vec3 q = apply(inv, apply(t, p));
    for (int i = 0; i < 3; ++i) EXPECT_EQ(q[i], p[i]);
    const auto back = apply_tensor(inv, apply_tensor(t, alpha));
    for (int i = 0; i < 9; ++i) EXPECT_EQ(back[i], alpha[i]);
  }
}

TEST(CanonicalKey, MirrorDisplacementsShareAKey) {
  // Water in the repo's geometry is symmetric under y -> -y: displacing
  // the oxygen by +y and by -y are physically equivalent geometries and
  // must collapse onto one canonical key.
  auto plus = molecules::water();
  auto minus = molecules::water();
  std::size_t oxygen = 0;
  for (std::size_t i = 0; i < plus.size(); ++i) {
    if (plus[i].z == 8) oxygen = i;
  }
  plus[oxygen].pos[1] += 0.01;
  minus[oxygen].pos[1] -= 0.01;
  const CanonicalKey a = canonical_key(plus, 7, true);
  const CanonicalKey b = canonical_key(minus, 7, true);
  EXPECT_EQ(a.key, b.key);
  // Without symmetry they stay distinct.
  EXPECT_NE(canonical_key(plus, 7, false).key,
            canonical_key(minus, 7, false).key);
}

TEST(CanonicalKey, SettingsFingerprintSeparatesKeys) {
  const auto mol = molecules::water();
  EXPECT_NE(canonical_key(mol, 1, true).key, canonical_key(mol, 2, true).key);
}

TEST(CanonicalKey, AtomOrderDoesNotMatter) {
  auto mol = molecules::water();
  auto permuted = mol;
  std::swap(permuted[0], permuted[permuted.size() - 1]);
  EXPECT_EQ(canonical_key(mol, 3, false).key,
            canonical_key(permuted, 3, false).key);
}

TEST(SettingsFingerprint, SensitiveToEngineSettings) {
  JobSpec a;
  a.engine = EngineKind::Real;
  a.atoms = molecules::water();
  JobSpec b = a;
  EXPECT_EQ(settings_fingerprint(a), settings_fingerprint(b));
  b.options.alpha_displacement *= 2.0;
  EXPECT_NE(settings_fingerprint(a), settings_fingerprint(b));
  JobSpec c = a;
  c.options.dfpt.tol *= 0.1;
  EXPECT_NE(settings_fingerprint(a), settings_fingerprint(c));
  // The tenant, name, and priority are scheduling metadata — two tenants
  // submitting the same physics must share cache entries.
  JobSpec d = a;
  d.client = "other";
  d.name = "different";
  d.priority = 9;
  EXPECT_EQ(settings_fingerprint(a), settings_fingerprint(d));
}

TEST(EstimateJob, ModeledScalesWithSystem) {
  JobSpec small;
  small.engine = EngineKind::Modeled;
  small.scale.n_atoms = 3;
  JobSpec large = small;
  large.scale.n_atoms = 30;
  const JobEstimate es = estimate_job(small);
  const JobEstimate el = estimate_job(large);
  EXPECT_GT(es.per_task_seconds, 0.0);
  EXPECT_GT(el.per_task_seconds, es.per_task_seconds);
  EXPECT_GT(el.total_seconds, el.per_task_seconds);
  EXPECT_GT(el.modeled_bytes, 0.0);
  // DAG size: 6N displacements + 3N rows + 1 assembly.
  EXPECT_EQ(es.n_tasks, 6u * 3u + 3u * 3u + 1u);
}

TEST(EstimateJob, RealJobCountsHessianTask) {
  JobSpec spec;
  spec.engine = EngineKind::Real;
  spec.atoms = molecules::water();
  const std::size_t base = estimate_job(spec).n_tasks;
  spec.with_modes = true;
  EXPECT_EQ(estimate_job(spec).n_tasks, base + 1);
}

}  // namespace
}  // namespace swraman::serve
