#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/molecules.hpp"
#include "raman/bec.hpp"
#include "raman/raman.hpp"
#include "robustness/fault.hpp"
#include "serve/dag.hpp"
#include "serve/job.hpp"
#include "serve/remote_cache.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

// The bec accuracy tier through the serving layer (DESIGN.md S15): the
// 13-node field DAG, content-addressed field-task keys and their
// symmetry folding, tier-aware admission, remote-cache force frames, and
// WAL kill/replay of a bec job.

namespace swraman::serve {
namespace {

ServiceOptions fast_options() {
  ServiceOptions options;
  options.n_workers = 2;
  options.start_paused = true;
  options.modeled.iterations_per_modeled_second = 100.0;
  options.modeled.min_iterations = 50;
  options.modeled.max_iterations = 500;
  return options;
}

JobSpec modeled_bec_spec(std::size_t n_atoms) {
  JobSpec spec;
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = n_atoms;
  spec.tier = Tier::Bec;
  return spec;
}

// A geometry with no axis symmetry at all: only the identity transform
// maps it onto itself, so any key collision between stencil points would
// be a genuine cross-axis confusion, not a symmetry fold.
std::vector<grid::AtomSite> asymmetric_geometry() {
  return {{1, {0.13, 0.29, 0.41}},
          {8, {-0.47, 0.53, -0.61}},
          {1, {0.71, -0.83, 0.97}}};
}

TEST(ServeTier, BecDagShapeIsThirteenFieldRootsPlusAssemble) {
  const JobDag dag(/*n_coords=*/9, /*with_hessian=*/false, /*n_field=*/
                   static_cast<std::size_t>(raman::n_field_points()));
  ASSERT_TRUE(dag.bec());
  EXPECT_EQ(dag.n_field(), 13u);
  EXPECT_EQ(dag.size(), 14u);  // 13 field roots + assemble
  EXPECT_EQ(dag.assemble_id(), 13u);
  for (std::size_t i = 0; i < 13; ++i) {
    EXPECT_EQ(dag.field_id(i), i);
    EXPECT_EQ(dag.node(i).kind, TaskKind::FieldForce);
    EXPECT_EQ(dag.node(i).coord, i);
    EXPECT_EQ(dag.node(i).sign, 0);
    EXPECT_EQ(dag.node(i).deps_pending, 0);  // field points are roots
  }
  EXPECT_EQ(dag.node(dag.assemble_id()).kind, TaskKind::Assemble);
  EXPECT_EQ(dag.node(dag.assemble_id()).deps_pending, 13);
  EXPECT_EQ(dag.roots().size(), 13u);

  const JobDag with_modes(9, /*with_hessian=*/true, 13);
  EXPECT_EQ(with_modes.size(), 15u);
  EXPECT_EQ(with_modes.hessian_id(), 13u);
  EXPECT_EQ(with_modes.assemble_id(), 14u);
}

TEST(ServeTier, ModeledBecJobExecutesExactlyTheStencil) {
  fault::ScopedFaults guard;
  RamanService service(fast_options());
  const SubmitResult res = service.submit(modeled_bec_spec(3));
  ASSERT_TRUE(res.accepted) << res.reason;
  const JobResult result = service.wait(res.job_id);
  ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
  // 3 atoms -> 9 coordinates of dalpha (9 cols) and dmu (3 cols).
  EXPECT_EQ(result.dalpha.rows(), 9u);
  EXPECT_EQ(result.dalpha.cols(), 9u);
  EXPECT_EQ(result.dmu.rows(), 9u);
  EXPECT_EQ(result.dmu.cols(), 3u);
  const ServiceStats stats = service.stats();
  // Engine evaluations = the 13 stencil points, nothing else; all of
  // them are field tasks. O(1) in the atom count.
  EXPECT_EQ(stats.tasks_executed, 13u);
  EXPECT_EQ(stats.field_tasks_executed, 13u);
}

TEST(ServeTier, ModeledBecDeterministicAcrossWorkerCounts) {
  fault::ScopedFaults guard;
  ServiceOptions one = fast_options();
  one.n_workers = 1;
  one.work_stealing = false;
  JobResult a;
  JobResult b;
  {
    RamanService service(fast_options());
    const SubmitResult res = service.submit(modeled_bec_spec(4));
    ASSERT_TRUE(res.accepted);
    a = service.wait(res.job_id);
  }
  {
    RamanService service(one);
    const SubmitResult res = service.submit(modeled_bec_spec(4));
    ASSERT_TRUE(res.accepted);
    b = service.wait(res.job_id);
  }
  ASSERT_EQ(a.status, JobStatus::Completed) << a.error;
  ASSERT_EQ(b.status, JobStatus::Completed) << b.error;
  ASSERT_EQ(a.dalpha.rows(), b.dalpha.rows());
  for (std::size_t i = 0; i < a.dalpha.rows(); ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      // Bitwise: assembly reads per-node slots in fixed stencil order.
      EXPECT_EQ(a.dalpha(i, j), b.dalpha(i, j)) << i << "," << j;
    }
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(a.dmu(i, j), b.dmu(i, j));
    }
  }
}

TEST(ServeTier, DuplicateBecJobsShareOneStencil) {
  fault::ScopedFaults guard;
  RamanService service(fast_options());
  const SubmitResult first = service.submit(modeled_bec_spec(3));
  const SubmitResult second = service.submit(modeled_bec_spec(3));
  ASSERT_TRUE(first.accepted);
  ASSERT_TRUE(second.accepted);
  service.start();
  const JobResult a = service.wait(first.job_id);
  const JobResult b = service.wait(second.job_id);
  ASSERT_EQ(a.status, JobStatus::Completed) << a.error;
  ASSERT_EQ(b.status, JobStatus::Completed) << b.error;
  const ServiceStats stats = service.stats();
  // The twin deduplicates onto the owner's 13 field evaluations.
  EXPECT_EQ(stats.field_tasks_executed, 13u);
  EXPECT_EQ(stats.tasks_executed, 13u);
  EXPECT_GT(stats.cache_hits, 0u);
  for (std::size_t i = 0; i < a.dalpha.rows(); ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(a.dalpha(i, j), b.dalpha(i, j));
    }
  }
}

TEST(ServeTier, FieldKeysInvariantUnderJointAxisTransforms) {
  const std::vector<grid::AtomSite> geom = asymmetric_geometry();
  const std::uint64_t fp = 0x5eedf00dull;
  for (int idx = 0; idx < raman::n_field_points(); ++idx) {
    const std::array<int, 3> dir = raman::field_direction(idx);
    const CanonicalKey base = canonical_field_key(geom, dir, fp, true);
    for (const AxisTransform& t : axis_transforms()) {
      // Rotate the WHOLE configuration: geometry and field together.
      std::vector<grid::AtomSite> rgeom = geom;
      for (auto& a : rgeom) a.pos = apply(t, a.pos);
      std::array<int, 3> rdir{};
      for (int i = 0; i < 3; ++i) {
        rdir[static_cast<std::size_t>(i)] =
            t.sign[static_cast<std::size_t>(i)] *
            dir[static_cast<std::size_t>(t.perm[static_cast<std::size_t>(i)])];
      }
      const CanonicalKey folded = canonical_field_key(rgeom, rdir, fp, true);
      EXPECT_EQ(folded.key, base.key)
          << "stencil " << idx << " not invariant under a joint transform";
    }
  }
}

TEST(ServeTier, FieldKeysNeverFoldAcrossAxesOnAsymmetricGeometry) {
  const std::vector<grid::AtomSite> geom = asymmetric_geometry();
  const std::uint64_t fp = 0x5eedf00dull;
  // All 13 stencil points must stay distinct: only a symmetry that maps
  // the geometry onto itself may fold two field directions, and this
  // geometry has none.
  std::set<std::uint64_t> keys;
  for (int idx = 0; idx < raman::n_field_points(); ++idx) {
    keys.insert(
        canonical_field_key(geom, raman::field_direction(idx), fp, true).key);
  }
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(raman::n_field_points()));

  // Rotating the geometry WITHOUT the matching field rotation must not
  // produce the same key: the folding is only sound when the two move
  // together.
  const AxisTransform swap_xy{{1, 0, 2}, {1, 1, 1}};
  std::vector<grid::AtomSite> rgeom = geom;
  for (auto& a : rgeom) a.pos = apply(swap_xy, a.pos);
  const std::array<int, 3> ex{1, 0, 0};
  EXPECT_NE(canonical_field_key(rgeom, ex, fp, true).key,
            canonical_field_key(geom, ex, fp, true).key);

  // Symmetry off: the key is frame-locked (identity transform).
  const CanonicalKey plain = canonical_field_key(geom, ex, fp, false);
  EXPECT_TRUE(plain.to_canonical.identity());
}

TEST(ServeTier, TiersNeverShareFingerprintsOrDisplacementKeys) {
  JobSpec dfpt;
  dfpt.engine = EngineKind::Real;
  dfpt.atoms = molecules::h2();
  JobSpec bec = dfpt;
  bec.tier = Tier::Bec;
  // The tier is part of the settings fingerprint, so bec field tasks can
  // never alias dfpt displacement entries even for the same molecule.
  EXPECT_NE(settings_fingerprint(dfpt), settings_fingerprint(bec));
  // The field strength is result-determining for the bec tier only.
  JobSpec bec2 = bec;
  bec2.bec_field = 2e-2;
  EXPECT_NE(settings_fingerprint(bec), settings_fingerprint(bec2));
  JobSpec dfpt2 = dfpt;
  dfpt2.bec_field = 2e-2;
  EXPECT_EQ(settings_fingerprint(dfpt), settings_fingerprint(dfpt2));

  // Domain separation: a field key and a displacement key over the same
  // geometry and fingerprint differ.
  const std::uint64_t fp = settings_fingerprint(bec);
  EXPECT_NE(canonical_field_key(bec.atoms, {0, 0, 0}, fp, false).key,
            canonical_key(bec.atoms, fp, false).key);
}

TEST(ServeTier, BecAdmittedWhereDfptTwinIsRejected) {
  fault::ScopedFaults guard;
  ServiceOptions options = fast_options();
  // 3 modeled atoms: the dfpt DAG is 18 + 9 + 1 = 28 tasks, the bec DAG
  // is 13 + 1 = 14. A 20-task budget separates the tiers.
  options.admission.max_queued_tasks = 20;
  RamanService service(options);

  JobSpec dfpt;
  dfpt.engine = EngineKind::Modeled;
  dfpt.scale.n_atoms = 3;
  const SubmitResult heavy = service.submit(dfpt);
  EXPECT_FALSE(heavy.accepted);
  EXPECT_EQ(heavy.reason, "queue-depth");
  EXPECT_GT(heavy.retry_after_s, 0.0);

  // Same molecule, same tenant, fast tier: admitted and completed.
  const SubmitResult fast = service.submit(modeled_bec_spec(3));
  ASSERT_TRUE(fast.accepted) << fast.reason;
  service.start();
  EXPECT_EQ(service.wait(fast.job_id).status, JobStatus::Completed);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_rejected, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
}

TEST(ServeTier, BecJobSurvivesShardKillAndWalReplay) {
  fault::ScopedFaults guard;
  const std::string wal_dir = ::testing::TempDir() + "tier_bec_wal";
  std::filesystem::create_directories(wal_dir);
  ShardedOptions opts;
  opts.n_shards = 1;
  opts.wal_dir = wal_dir;
  opts.service.n_workers = 2;
  opts.service.modeled.iterations_per_modeled_second = 100.0;
  // Slow kernel so the kill lands while field tasks are still running.
  opts.service.modeled.min_iterations = 200000;
  opts.service.modeled.max_iterations = 200000;

  ShardedRamanService svc(opts);
  std::vector<std::uint64_t> gids;
  for (int i = 0; i < 3; ++i) {
    const SubmitResult res = svc.submit(modeled_bec_spec(2));
    ASSERT_TRUE(res.accepted) << res.reason;
    gids.push_back(res.job_id);
  }
  svc.kill_shard(0);
  svc.recover_all();
  svc.drain();
  for (const std::uint64_t gid : gids) {
    const JobResult r = svc.wait(gid);
    EXPECT_EQ(r.status, JobStatus::Completed) << r.error;
    EXPECT_EQ(r.dalpha.rows(), 6u);  // tier survives the spec round trip
    EXPECT_EQ(r.dmu.cols(), 3u);
  }
  const ShardedStats stats = svc.stats();
  EXPECT_EQ(stats.kills, 1u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  std::filesystem::remove_all(wal_dir);
}

TEST(ServeRemoteCache, FieldRecordsCarryForcesAcrossShards) {
  fault::ScopedFaults guard;
  RemoteCacheFabric::Options opts;
  opts.n_shards = 2;
  opts.lookup_timeout_s = 0.05;
  RemoteCacheFabric fabric(opts);
  fabric.start(0);
  fabric.start(1);

  raman::GeometryRecord rec;
  rec.dipole = {0.125, -0.25, 0.5};
  rec.forces = {1.0, -2.0, 3.0, 0.0625, -5e-17, 6.5};  // 2 atoms
  fabric.publish(1, 0xf1e1dull, rec);

  // A field-task lookup states its 3N force length; the hit is bitwise.
  raman::GeometryRecord out;
  ASSERT_TRUE(fabric.lookup(0, 1, 0xf1e1dull, &out, {}, rec.forces.size()));
  ASSERT_EQ(out.forces.size(), rec.forces.size());
  for (std::size_t k = 0; k < rec.forces.size(); ++k) {
    EXPECT_EQ(out.forces[k], rec.forces[k]);
  }
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(out.dipole[k], rec.dipole[k]);
  }

  // Frame-length mismatches answer as honest misses in both directions:
  // a displacement lookup never receives a force record and vice versa.
  EXPECT_FALSE(fabric.lookup(0, 1, 0xf1e1dull, &out, {}, 0));
  raman::GeometryRecord disp;
  disp.alpha[0] = 4.0;
  fabric.publish(1, 0xd15ull, disp);
  EXPECT_FALSE(fabric.lookup(0, 1, 0xd15ull, &out, {}, 6));
  ASSERT_TRUE(fabric.lookup(0, 1, 0xd15ull, &out, {}, 0));
  EXPECT_EQ(out.alpha[0], 4.0);
}

TEST(ServeRealEngine, BecTierMatchesBecCalculatorBitwise) {
  fault::ScopedFaults guard;
  const auto mol = molecules::h2();
  raman::BecOptions bopt;
  raman::BecCalculator calc(mol, bopt);
  const linalg::Matrix want_dalpha = calc.polarizability_derivatives();
  const linalg::Matrix& want_dmu = calc.dipole_derivatives();

  ServiceOptions options;
  options.n_workers = 2;
  options.use_symmetry = false;  // every field point solved fresh
  RamanService service(options);
  JobSpec spec;
  spec.engine = EngineKind::Real;
  spec.atoms = mol;
  spec.tier = Tier::Bec;
  spec.bec_field = bopt.field_strength;
  const SubmitResult res = service.submit(spec);
  ASSERT_TRUE(res.accepted);
  const JobResult result = service.wait(res.job_id);
  ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
  EXPECT_EQ(service.stats().field_tasks_executed, 13u);

  // Same SCF solves, same shared force evaluator arithmetic, same
  // bec_derivatives assembly: the DAG route reproduces the monolithic
  // calculator exactly.
  ASSERT_EQ(result.dalpha.rows(), want_dalpha.rows());
  for (std::size_t i = 0; i < want_dalpha.rows(); ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(result.dalpha(i, j), want_dalpha(i, j)) << i << "," << j;
    }
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(result.dmu(i, j), want_dmu(i, j));
    }
  }
}

}  // namespace
}  // namespace swraman::serve
