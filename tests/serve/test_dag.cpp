#include <gtest/gtest.h>

#include <algorithm>

#include "serve/dag.hpp"

namespace swraman::serve {
namespace {

TEST(JobDag, LayoutForWaterSizedJob) {
  const std::size_t n = 9;  // 3 atoms
  JobDag dag(n, false);
  EXPECT_EQ(dag.size(), 3 * n + 1);
  EXPECT_EQ(dag.displacement_id(0, +1), 0u);
  EXPECT_EQ(dag.displacement_id(0, -1), 1u);
  EXPECT_EQ(dag.displacement_id(n - 1, -1), 2 * n - 1);
  EXPECT_EQ(dag.row_id(0), 2 * n);
  EXPECT_EQ(dag.assemble_id(), 3 * n);
  EXPECT_EQ(dag.records.size(), 2 * n);

  JobDag with_modes(n, true);
  EXPECT_EQ(with_modes.size(), 3 * n + 2);
  EXPECT_EQ(with_modes.hessian_id(), 3 * n);
  EXPECT_EQ(with_modes.assemble_id(), 3 * n + 1);
}

TEST(JobDag, RootsAreDisplacementsAndHessian) {
  JobDag dag(6, true);
  const auto roots = dag.roots();
  EXPECT_EQ(roots.size(), 2 * 6 + 1);
  for (std::size_t id : roots) {
    const TaskKind k = dag.node(id).kind;
    EXPECT_TRUE(k == TaskKind::Displacement || k == TaskKind::Hessian);
  }
}

TEST(JobDag, RowReadyAfterBothSignsAssembleLast) {
  const std::size_t n = 3;
  JobDag dag(n, false);
  // Completing +d alone does not unlock the row.
  EXPECT_TRUE(dag.complete(dag.displacement_id(0, +1)).empty());
  auto ready = dag.complete(dag.displacement_id(0, -1));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], dag.row_id(0));
  EXPECT_EQ(dag.node(ready[0]).kind, TaskKind::Row);

  // Finish everything; the assembly must unlock exactly once, last.
  EXPECT_TRUE(dag.complete(dag.row_id(0)).empty());
  for (std::size_t c = 1; c < n; ++c) {
    dag.complete(dag.displacement_id(c, +1));
    auto r = dag.complete(dag.displacement_id(c, -1));
    ASSERT_EQ(r.size(), 1u);
    auto after_row = dag.complete(r[0]);
    if (c + 1 < n) {
      EXPECT_TRUE(after_row.empty());
    } else {
      ASSERT_EQ(after_row.size(), 1u);
      EXPECT_EQ(after_row[0], dag.assemble_id());
    }
  }
  EXPECT_FALSE(dag.all_done());
  EXPECT_TRUE(dag.complete(dag.assemble_id()).empty());
  EXPECT_TRUE(dag.all_done());
}

TEST(JobDag, HessianGatesAssembly) {
  const std::size_t n = 3;
  JobDag dag(n, true);
  for (std::size_t c = 0; c < n; ++c) {
    dag.complete(dag.displacement_id(c, +1));
    for (std::size_t r : dag.complete(dag.displacement_id(c, -1))) {
      const auto unlocked = dag.complete(r);
      // All rows done but the Hessian outstanding: assembly stays locked.
      EXPECT_TRUE(unlocked.empty());
    }
  }
  auto ready = dag.complete(dag.hessian_id());
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], dag.assemble_id());
}

}  // namespace
}  // namespace swraman::serve
