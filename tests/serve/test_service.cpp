#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/molecules.hpp"
#include "raman/raman.hpp"
#include "robustness/fault.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"

namespace swraman::serve {
namespace {

TraceOptions small_trace_options() {
  TraceOptions t;
  t.rbd_atoms = 4;
  t.rbd_submissions = 2;
  t.silicon_cases = 2;
  t.silicon_submissions = 2;
  t.water_submissions = 4;
  t.water_unique = 2;
  return t;
}

ServiceOptions fast_options() {
  ServiceOptions options;
  options.n_workers = 2;
  options.start_paused = true;
  // Keep the spin kernel tiny: these tests exercise scheduling, not burn.
  options.modeled.iterations_per_modeled_second = 100.0;
  options.modeled.min_iterations = 50;
  options.modeled.max_iterations = 500;
  return options;
}

struct RunOutcome {
  std::vector<JobResult> results;
  ServiceStats stats;
};

RunOutcome run_trace(const std::vector<JobSpec>& trace,
                     ServiceOptions options) {
  RamanService service(options);
  std::vector<std::uint64_t> ids;
  for (const JobSpec& spec : trace) {
    const SubmitResult res = service.submit(spec);
    EXPECT_TRUE(res.accepted) << res.reason;
    if (res.accepted) ids.push_back(res.job_id);
  }
  service.start();
  RunOutcome out;
  for (std::uint64_t id : ids) out.results.push_back(service.wait(id));
  out.stats = service.stats();
  return out;
}

TEST(ServeService, MixedTenantTraceCompletesWithDedup) {
  fault::ScopedFaults guard;
  const auto trace = mixed_tenant_trace(small_trace_options());
  const RunOutcome run = run_trace(trace, fast_options());
  ASSERT_EQ(run.results.size(), trace.size());
  for (const JobResult& r : run.results) {
    EXPECT_EQ(r.status, JobStatus::Completed) << r.error;
    EXPECT_GT(r.latency_s, 0.0);
    EXPECT_EQ(r.dalpha.rows(), r.dmu.rows());
  }
  EXPECT_EQ(run.stats.jobs_completed, trace.size());
  EXPECT_EQ(run.stats.jobs_failed, 0u);
  // Roughly half the trace duplicates an earlier submission.
  EXPECT_GT(run.stats.cache_hits, 0u);
  EXPECT_LT(run.stats.tasks_executed,
            static_cast<std::uint64_t>(trace_nominal_tasks(trace)));
  EXPECT_GT(run.stats.cache_hit_ratio, 0.0);
  EXPECT_LT(run.stats.cache_hit_ratio, 1.0);
}

TEST(ServeService, DeterministicAcrossSeededRuns) {
  fault::ScopedFaults guard;
  const auto trace = mixed_tenant_trace(small_trace_options());
  const RunOutcome a = run_trace(trace, fast_options());
  const RunOutcome b = run_trace(trace, fast_options());
  // Dedup bookkeeping is decided at submission time, so the counters are
  // exactly reproducible, not merely close.
  EXPECT_EQ(a.stats.tasks_executed, b.stats.tasks_executed);
  EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits);
  EXPECT_EQ(a.stats.cache_misses, b.stats.cache_misses);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t k = 0; k < a.results.size(); ++k) {
    const linalg::Matrix& da = a.results[k].dalpha;
    const linalg::Matrix& db = b.results[k].dalpha;
    ASSERT_EQ(da.rows(), db.rows());
    for (std::size_t i = 0; i < da.rows(); ++i) {
      for (std::size_t j = 0; j < da.cols(); ++j) {
        // Bitwise: scheduling may not perturb a single ulp.
        EXPECT_EQ(da(i, j), db(i, j)) << "job " << k;
      }
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(a.results[k].dmu(i, j), b.results[k].dmu(i, j));
      }
    }
  }
}

TEST(ServeService, WorkStealingOffMatchesOnBitwise) {
  fault::ScopedFaults guard;
  const auto trace = mixed_tenant_trace(small_trace_options());
  ServiceOptions no_steal = fast_options();
  no_steal.work_stealing = false;
  no_steal.n_workers = 1;
  const RunOutcome a = run_trace(trace, fast_options());
  const RunOutcome b = run_trace(trace, no_steal);
  EXPECT_EQ(a.stats.tasks_executed, b.stats.tasks_executed);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t k = 0; k < a.results.size(); ++k) {
    for (std::size_t i = 0; i < a.results[k].dalpha.rows(); ++i) {
      for (std::size_t j = 0; j < 9; ++j) {
        EXPECT_EQ(a.results[k].dalpha(i, j), b.results[k].dalpha(i, j));
      }
    }
  }
}

TEST(ServeService, BackpressureRejectsWithRetryAfterThenRecovers) {
  fault::ScopedFaults guard;
  ServiceOptions options = fast_options();
  options.admission.max_queued_tasks = 30;

  JobSpec spec;
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = 3;  // 28 DAG tasks
  spec.name = "first";

  RamanService service(options);
  const SubmitResult first = service.submit(spec);
  ASSERT_TRUE(first.accepted);
  spec.name = "second";
  const SubmitResult second = service.submit(spec);
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.reason, "queue-depth");
  EXPECT_GT(second.retry_after_s, 0.0);

  service.start();
  EXPECT_EQ(service.wait(first.job_id).status, JobStatus::Completed);
  // The first job released its admission charge: the retry is admitted.
  const SubmitResult retry = service.submit(spec);
  EXPECT_TRUE(retry.accepted);
  EXPECT_EQ(service.wait(retry.job_id).status, JobStatus::Completed);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_rejected, 1u);
  EXPECT_EQ(stats.jobs_completed, 2u);
  // The retried duplicate was served from the cache.
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(ServeService, TransientTaskFaultIsRetriedToCompletion) {
  fault::ScopedFaults guard;
  fault::FaultSpec fs;
  fs.fire_at = 1;  // first displacement evaluation fails once
  fault::FaultInjector::instance().configure(kFaultTaskFail, fs);

  JobSpec spec;
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = 2;
  spec.attempts = 2;
  RamanService service(fast_options());
  const SubmitResult res = service.submit(spec);
  ASSERT_TRUE(res.accepted);
  EXPECT_EQ(service.wait(res.job_id).status, JobStatus::Completed);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.task_retries, 1u);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

TEST(ServeService, ExhaustedRetriesFailJobAndCascadeToWaiters) {
  fault::ScopedFaults guard;
  fault::FaultSpec fs;
  fs.probability = 1.0;
  fs.max_fires = 2;  // both attempts of the first task fail, then quiet
  fault::FaultInjector::instance().configure(kFaultTaskFail, fs);

  JobSpec spec;
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = 2;
  spec.attempts = 2;

  ServiceOptions options = fast_options();
  options.n_workers = 1;  // deterministic: the owner task runs first
  RamanService service(options);
  const SubmitResult owner = service.submit(spec);
  const SubmitResult waiter = service.submit(spec);  // full duplicate
  ASSERT_TRUE(owner.accepted);
  ASSERT_TRUE(waiter.accepted);
  service.start();
  const JobResult owner_result = service.wait(owner.job_id);
  const JobResult waiter_result = service.wait(waiter.job_id);
  EXPECT_EQ(owner_result.status, JobStatus::Failed);
  EXPECT_FALSE(owner_result.error.empty());
  EXPECT_EQ(waiter_result.status, JobStatus::Failed);
  EXPECT_NE(waiter_result.error.find("dedup owner"), std::string::npos)
      << waiter_result.error;

  // The poisoned cache entry was dropped: a fresh submission succeeds.
  const SubmitResult again = service.submit(spec);
  ASSERT_TRUE(again.accepted);
  EXPECT_EQ(service.wait(again.job_id).status, JobStatus::Completed);
  EXPECT_EQ(service.stats().jobs_failed, 2u);
}

TEST(ServeService, WorkerDeathIsAbsorbedByAdoption) {
  fault::ScopedFaults guard;
  fault::FaultSpec fs;
  fs.fire_at = 3;
  fault::FaultInjector::instance().configure(kFaultWorkerDeath, fs);

  const auto trace = mixed_tenant_trace(small_trace_options());
  const RunOutcome run = run_trace(trace, fast_options());
  for (const JobResult& r : run.results) {
    EXPECT_EQ(r.status, JobStatus::Completed) << r.error;
  }
  EXPECT_EQ(run.stats.workers_alive, 1u);
}

TEST(ServeRealEngine, MatchesRamanCalculatorBitwiseWithoutSymmetry) {
  fault::ScopedFaults guard;
  const auto mol = molecules::h2();
  raman::RamanOptions raman_options;
  raman::RamanCalculator calc(mol, raman_options);
  const linalg::Matrix want_dalpha = calc.polarizability_derivatives();
  const linalg::Matrix& want_dmu = calc.dipole_derivatives();

  ServiceOptions options;
  options.n_workers = 2;
  options.use_symmetry = false;  // every displaced geometry solved fresh
  RamanService service(options);
  JobSpec spec;
  spec.engine = EngineKind::Real;
  spec.atoms = mol;
  spec.options = raman_options;
  const SubmitResult res = service.submit(spec);
  ASSERT_TRUE(res.accepted);
  const JobResult result = service.wait(res.job_id);
  ASSERT_EQ(result.status, JobStatus::Completed) << result.error;

  // Same displacement arithmetic, same SCF, same DFPT: the DAG route must
  // reproduce the monolithic pipeline exactly.
  ASSERT_EQ(result.dalpha.rows(), want_dalpha.rows());
  for (std::size_t i = 0; i < want_dalpha.rows(); ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(result.dalpha(i, j), want_dalpha(i, j)) << i << "," << j;
    }
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(result.dmu(i, j), want_dmu(i, j));
    }
  }
}

TEST(ServeRealEngine, SymmetryDedupStaysWithinConvergenceTolerance) {
  fault::ScopedFaults guard;
  const auto mol = molecules::h2();
  raman::RamanOptions raman_options;
  raman::RamanCalculator calc(mol, raman_options);
  const linalg::Matrix want = calc.polarizability_derivatives();

  RamanService service(ServiceOptions{});  // symmetry + cache on
  JobSpec spec;
  spec.engine = EngineKind::Real;
  spec.atoms = mol;
  spec.options = raman_options;
  const SubmitResult res = service.submit(spec);
  ASSERT_TRUE(res.accepted);
  const JobResult result = service.wait(res.job_id);
  ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
  const ServiceStats stats = service.stats();
  // H2 on the z axis: the 12 displacements collapse to a handful of
  // symmetry classes.
  EXPECT_LT(stats.tasks_executed, 12u);
  EXPECT_GT(stats.cache_hits, 0u);
  for (std::size_t i = 0; i < want.rows(); ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      // Symmetry-mapped records replace independently converged solves;
      // agreement is bounded by the SCF/DFPT tolerances, amplified by the
      // 1/(2d) finite-difference factor.
      EXPECT_NEAR(result.dalpha(i, j), want(i, j), 2e-3) << i << "," << j;
    }
  }
}

TEST(ServeRealEngine, CheckpointMakesResubmissionFree) {
  fault::ScopedFaults guard;
  const std::string path = ::testing::TempDir() + "serve_ckpt_h2.txt";
  std::remove(path.c_str());

  JobSpec spec;
  spec.engine = EngineKind::Real;
  spec.atoms = molecules::h2();
  spec.options.checkpoint_path = path;

  linalg::Matrix first_dalpha;
  {
    RamanService service(ServiceOptions{});
    const SubmitResult res = service.submit(spec);
    ASSERT_TRUE(res.accepted);
    const JobResult result = service.wait(res.job_id);
    ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
    EXPECT_GT(service.stats().tasks_executed, 0u);
    first_dalpha = result.dalpha;
  }
  {
    // A fresh service (cold cache) resumes entirely from the checkpoint.
    RamanService service(ServiceOptions{});
    const SubmitResult res = service.submit(spec);
    ASSERT_TRUE(res.accepted);
    const JobResult result = service.wait(res.job_id);
    ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.tasks_executed, 0u);
    EXPECT_GT(stats.checkpoint_hits, 0u);
    for (std::size_t i = 0; i < first_dalpha.rows(); ++i) {
      for (std::size_t j = 0; j < 9; ++j) {
        EXPECT_EQ(result.dalpha(i, j), first_dalpha(i, j));
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swraman::serve
