#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/lockcheck.hpp"
#include "robustness/fault.hpp"
#include "serve/cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

// The serve tier under SWRAMAN_CHECK: real workloads through the real
// services with the concurrency contract checker on, asserting zero
// violations — the lock-order graph of the migrated tier is acyclic,
// nothing stricter than the sanctioned control-plane locks blocks, the
// guard contracts hold. Plus one seeded guard violation proving the
// clean runs are not vacuous.

namespace swraman::serve {
namespace {

using lockcheck::ScopedChecking;

JobSpec modeled_spec(const std::string& client, std::size_t n_atoms) {
  JobSpec spec;
  spec.client = client;
  spec.name = client + "-" + std::to_string(n_atoms);
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = n_atoms;
  return spec;
}

ServiceOptions fast_options() {
  ServiceOptions options;
  options.n_workers = 2;
  options.modeled.iterations_per_modeled_second = 100.0;
  options.modeled.min_iterations = 50;
  options.modeled.max_iterations = 500;
  return options;
}

TEST(ServeCheck, ServiceRunsCleanUnderCheck) {
  fault::ScopedFaults guard;
  const ScopedChecking checking;
  {
    RamanService service(fast_options());
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec :
         {modeled_spec("alice", 2), modeled_spec("bob", 3),
          modeled_spec("alice", 2), modeled_spec("carol", 4)}) {
      const SubmitResult res = service.submit(spec);
      ASSERT_TRUE(res.accepted) << res.reason;
      ids.push_back(res.job_id);
    }
    for (const std::uint64_t id : ids) {
      const JobResult r = service.wait(id);
      EXPECT_EQ(r.status, JobStatus::Completed) << r.error;
    }
    service.drain();
  }
  EXPECT_EQ(lockcheck::total_violations(), 0u)
      << lockcheck::summary_json();
}

TEST(ServeCheck, ShardedTierWithKillRecoverRunsCleanUnderCheck) {
  fault::ScopedFaults guard;
  const ScopedChecking checking;
  const std::string wal_dir = ::testing::TempDir() + "serve_check_tier";
  std::filesystem::create_directories(wal_dir);
  {
    ShardedOptions opts;
    opts.n_shards = 2;
    opts.wal_dir = wal_dir;
    opts.service.n_workers = 2;
    opts.service.modeled.iterations_per_modeled_second = 100.0;
    opts.service.modeled.min_iterations = 50;
    opts.service.modeled.max_iterations = 500;
    ShardedRamanService tier(opts);
    std::vector<std::uint64_t> gids;
    for (const JobSpec& spec :
         {modeled_spec("alice", 2), modeled_spec("bob", 3),
          modeled_spec("carol", 2), modeled_spec("dave", 4)}) {
      const SubmitResult res = tier.submit(spec);
      ASSERT_TRUE(res.accepted) << res.reason;
      gids.push_back(res.job_id);
    }
    // Crash/recover one shard mid-flight: the failover path (workers
    // joined and WAL replayed while the shard control-plane lock is
    // held) is exactly what kAllowsBlocking sanctions — and nothing
    // beyond it may block.
    tier.kill_shard(0);
    tier.recover_shard(0);
    for (const std::uint64_t gid : gids) {
      const JobResult r = tier.wait(gid);
      EXPECT_EQ(r.status, JobStatus::Completed) << r.error;
    }
    tier.drain();
  }
  std::filesystem::remove_all(wal_dir);
  EXPECT_EQ(lockcheck::total_violations(), 0u)
      << lockcheck::summary_json();
}

TEST(ServeCheck, SeededSchedulerGuardViolationCaught) {
  const ScopedChecking checking;
  lockcheck::CheckedMutex guard("test.service.guard");
  FairShareScheduler scheduler;
  scheduler.set_guard(&guard);
  const JobSpec spec = modeled_spec("mallory", 2);
  const JobEstimate est = estimate_job(spec);
  std::string what;
  try {
    // Calling a "caller locks for us" component without the lock — the
    // bug class the guard contract exists to catch.
    static_cast<void>(scheduler.admit(spec, est));
    FAIL() << "guard violation not reported";
  } catch (const CheckViolation& v) {
    EXPECT_EQ(v.rule(), lockcheck::kRuleGuardUnheld);
    what = v.what();
  }
  EXPECT_NE(what.find("FairShareScheduler::admit"), std::string::npos)
      << what;
  {
    const lockcheck::CheckedLock lock(guard);
    static_cast<void>(scheduler.admit(spec, est));  // held: clean
    scheduler.release(est);
  }
  EXPECT_EQ(
      lockcheck::violation_counts().at(lockcheck::kRuleGuardUnheld), 1u);
}

}  // namespace
}  // namespace swraman::serve
