#include <gtest/gtest.h>

#include "serve/cache.hpp"

namespace swraman::serve {
namespace {

raman::GeometryRecord make_record(double base) {
  raman::GeometryRecord rec;
  for (int i = 0; i < 9; ++i) rec.alpha[i] = base + i;
  for (int i = 0; i < 3; ++i) rec.dipole[i] = -base - i;
  return rec;
}

TEST(DisplacementCache, FirstReferenceOwnsLaterOnesWaitThenHit) {
  DisplacementCache cache;
  raman::GeometryRecord rec;
  EXPECT_EQ(cache.reference(42, {1, 0, {}}, &rec),
            DisplacementCache::Ref::Owner);
  EXPECT_EQ(cache.reference(42, {2, 5, {}}, &rec),
            DisplacementCache::Ref::Wait);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  std::vector<raman::GeometryRecord> records;
  const auto waiters = cache.complete(42, make_record(1.0), &records);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].job, 2u);
  EXPECT_EQ(waiters[0].node, 5u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].alpha, make_record(1.0).alpha);

  // After completion a reference is an immediate hit.
  EXPECT_EQ(cache.reference(42, {3, 1, {}}, &rec),
            DisplacementCache::Ref::Hit);
  EXPECT_EQ(rec.alpha, make_record(1.0).alpha);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_NEAR(cache.hit_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(DisplacementCache, HitMapsThroughWaiterFrame) {
  DisplacementCache cache;
  raman::GeometryRecord rec;
  ASSERT_EQ(cache.reference(7, {1, 0, {}}, &rec),
            DisplacementCache::Ref::Owner);
  cache.complete(7, make_record(2.0), nullptr);

  // A waiter whose frame is a swap of x and y sees the mapped tensor.
  AxisTransform swap_xy;
  swap_xy.perm = {1, 0, 2};
  CacheWaiter w{2, 0, swap_xy};
  ASSERT_EQ(cache.reference(7, w, &rec), DisplacementCache::Ref::Hit);
  EXPECT_EQ(rec.alpha, apply_tensor(swap_xy, make_record(2.0).alpha));
  EXPECT_EQ(rec.dipole, apply_vector(swap_xy, make_record(2.0).dipole));
}

TEST(DisplacementCache, FailDropsEntryAndReturnsWaiters) {
  DisplacementCache cache;
  raman::GeometryRecord rec;
  ASSERT_EQ(cache.reference(9, {1, 0, {}}, &rec),
            DisplacementCache::Ref::Owner);
  ASSERT_EQ(cache.reference(9, {2, 3, {}}, &rec),
            DisplacementCache::Ref::Wait);
  const auto waiters = cache.fail(9);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].job, 2u);
  // The key is free again: a resubmission becomes a fresh owner.
  EXPECT_EQ(cache.reference(9, {4, 0, {}}, &rec),
            DisplacementCache::Ref::Owner);
}

TEST(DisplacementCache, LateCompleteAfterFailIsHarmless) {
  DisplacementCache cache;
  raman::GeometryRecord rec;
  ASSERT_EQ(cache.reference(5, {1, 0, {}}, &rec),
            DisplacementCache::Ref::Owner);
  cache.fail(5);
  // The owner's in-flight evaluation lands after the failure dropped the
  // entry: it must not throw, and it re-publishes the result.
  std::vector<raman::GeometryRecord> records;
  EXPECT_TRUE(cache.complete(5, make_record(3.0), &records).empty());
  EXPECT_EQ(cache.reference(5, {2, 0, {}}, &rec),
            DisplacementCache::Ref::Hit);
  EXPECT_EQ(rec.alpha, make_record(3.0).alpha);
}

}  // namespace
}  // namespace swraman::serve
