#include <gtest/gtest.h>

#include "serve/scheduler.hpp"

namespace swraman::serve {
namespace {

JobSpec spec_for(const std::string& client, double weight = 1.0,
                 int priority = 0) {
  JobSpec s;
  s.client = client;
  s.weight = weight;
  s.priority = priority;
  s.engine = EngineKind::Modeled;
  s.scale.n_atoms = 3;
  return s;
}

JobEstimate estimate(std::size_t n_tasks, double total_s, double bytes) {
  JobEstimate e;
  e.n_tasks = n_tasks;
  e.per_task_seconds = total_s / static_cast<double>(n_tasks);
  e.total_seconds = total_s;
  e.modeled_bytes = bytes;
  return e;
}

TEST(Admission, QueueDepthBoundRejectsWithBacklogHint) {
  AdmissionLimits limits;
  limits.max_queued_tasks = 10;
  FairShareScheduler sched(limits);
  EXPECT_TRUE(sched.admit(spec_for("a"), estimate(8, 4.0, 100.0)).admitted);
  const AdmissionDecision d = sched.admit(spec_for("b"),
                                          estimate(3, 1.0, 100.0));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, "queue-depth");
  EXPECT_DOUBLE_EQ(d.outstanding_seconds, 4.0);
  // Nothing was charged for the rejected job.
  EXPECT_EQ(sched.outstanding_tasks(), 8u);
  // Release frees the budget again.
  sched.release(estimate(8, 4.0, 100.0));
  EXPECT_TRUE(sched.admit(spec_for("b"), estimate(3, 1.0, 100.0)).admitted);
}

TEST(Admission, ModeledMemoryBoundRejects) {
  AdmissionLimits limits;
  limits.max_modeled_bytes = 1000.0;
  FairShareScheduler sched(limits);
  EXPECT_TRUE(sched.admit(spec_for("a"), estimate(2, 1.0, 800.0)).admitted);
  const AdmissionDecision d =
      sched.admit(spec_for("a"), estimate(2, 1.0, 300.0));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, "modeled-memory");
}

TEST(FairShare, EqualWeightsAlternateByCost) {
  FairShareScheduler sched;
  for (std::size_t i = 0; i < 3; ++i) {
    sched.push("a", 0, 1.0, {1, i});
    sched.push("b", 0, 1.0, {2, i});
  }
  // Take one task at a time: tenants must alternate (a then b or b then
  // a, repeating), because each dispatch advances the served clock.
  std::vector<std::uint64_t> order;
  std::vector<TaskRef> out;
  while (sched.take(&out, 0.1, 1) > 0) {
    order.push_back(out.back().job);
  }
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 2; i < order.size(); ++i) {
    EXPECT_EQ(order[i], order[i - 2]) << "tenants must alternate";
  }
  EXPECT_NE(order[0], order[1]);
}

TEST(FairShare, WeightsSkewTheShare) {
  FairShareScheduler sched;
  JobSpec heavy = spec_for("heavy", 2.0);
  JobSpec light = spec_for("light", 1.0);
  sched.admit(heavy, estimate(1, 1.0, 1.0));
  sched.admit(light, estimate(1, 1.0, 1.0));
  for (std::size_t i = 0; i < 30; ++i) {
    sched.push("heavy", 0, 1.0, {1, i});
    sched.push("light", 0, 1.0, {2, i});
  }
  std::size_t first_heavy = 0;
  std::vector<TaskRef> out;
  for (std::size_t i = 0; i < 30; ++i) {
    out.clear();
    ASSERT_EQ(sched.take(&out, 0.1, 1), 1u);
    if (out[0].job == 1) ++first_heavy;
  }
  // Weight 2 vs 1: the heavy tenant gets about two thirds of the slots.
  EXPECT_GE(first_heavy, 18u);
  EXPECT_LE(first_heavy, 22u);
}

TEST(FairShare, PriorityDrainsFirstWithinTenant) {
  FairShareScheduler sched;
  sched.push("a", 0, 1.0, {1, 0});
  sched.push("a", 5, 1.0, {2, 0});
  sched.push("a", 5, 1.0, {2, 1});
  std::vector<TaskRef> out;
  ASSERT_EQ(sched.take(&out, 10.0, 3), 3u);
  EXPECT_EQ(out[0].job, 2u);
  EXPECT_EQ(out[0].node, 0u);
  EXPECT_EQ(out[1].job, 2u);
  EXPECT_EQ(out[1].node, 1u);
  EXPECT_EQ(out[2].job, 1u);
}

TEST(FairShare, BatchStopsAtTargetSeconds) {
  FairShareScheduler sched;
  for (std::size_t i = 0; i < 10; ++i) sched.push("a", 0, 0.4, {1, i});
  std::vector<TaskRef> out;
  // 0.4 + 0.4 <= 1.0 < 0.4 * 3: two tasks per pull.
  EXPECT_EQ(sched.take(&out, 1.0, 64), 2u);
  // An expensive task still moves (always at least one).
  FairShareScheduler big;
  big.push("a", 0, 99.0, {1, 0});
  out.clear();
  EXPECT_EQ(big.take(&out, 1.0, 64), 1u);
}

TEST(FairShare, ReturningTenantDoesNotBankIdleCredit) {
  FairShareScheduler sched;
  std::vector<TaskRef> out;
  // Tenant a runs alone for a long stretch.
  for (std::size_t i = 0; i < 50; ++i) sched.push("a", 0, 1.0, {1, i});
  for (std::size_t i = 0; i < 50; ++i) sched.take(&out, 0.1, 1);
  // b arrives late; it must share from now on, not monopolize until it
  // has "caught up" 50 virtual seconds.
  for (std::size_t i = 0; i < 4; ++i) {
    sched.push("a", 0, 1.0, {1, 100 + i});
    sched.push("b", 0, 1.0, {2, i});
  }
  std::size_t from_a = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    out.clear();
    ASSERT_EQ(sched.take(&out, 0.1, 1), 1u);
    if (out[0].job == 1) ++from_a;
  }
  EXPECT_GE(from_a, 1u) << "late tenant must not monopolize the pool";
}

}  // namespace
}  // namespace swraman::serve
