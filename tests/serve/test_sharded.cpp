#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "robustness/fault.hpp"
#include "serve/remote_cache.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

namespace swraman::serve {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

JobSpec modeled_spec(const std::string& client, std::size_t n_atoms) {
  JobSpec spec;
  spec.client = client;
  spec.name = client + "-" + std::to_string(n_atoms);
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = n_atoms;
  return spec;
}

std::vector<JobSpec> small_trace() {
  return {modeled_spec("alice", 2), modeled_spec("bob", 3),
          modeled_spec("carol", 2), modeled_spec("alice", 4),
          modeled_spec("dave", 3),  modeled_spec("bob", 2)};
}

ShardedOptions fast_sharded(const std::string& wal_dir,
                            std::size_t n_shards) {
  ShardedOptions opts;
  opts.n_shards = n_shards;
  opts.wal_dir = wal_dir;
  opts.service.n_workers = 2;
  opts.service.modeled.iterations_per_modeled_second = 100.0;
  opts.service.modeled.min_iterations = 50;
  opts.service.modeled.max_iterations = 500;
  return opts;
}

std::uint64_t result_hash(const JobResult& r) {
  Hash64 h;
  h.u64(r.dalpha.rows());
  for (std::size_t i = 0; i < r.dalpha.rows(); ++i) {
    for (std::size_t j = 0; j < r.dalpha.cols(); ++j) h.f64(r.dalpha(i, j));
    for (std::size_t j = 0; j < r.dmu.cols(); ++j) h.f64(r.dmu(i, j));
  }
  return h.value();
}

// Hashes per trace index from a kill-free sharded run.
std::vector<std::uint64_t> reference_hashes(
    const std::vector<JobSpec>& trace, const ShardedOptions& opts) {
  ShardedRamanService svc(opts);
  std::vector<std::uint64_t> gids;
  for (const JobSpec& spec : trace) {
    const SubmitResult res = svc.submit(spec);
    EXPECT_TRUE(res.accepted) << res.reason;
    gids.push_back(res.job_id);
  }
  svc.drain();
  std::vector<std::uint64_t> hashes;
  for (const std::uint64_t gid : gids) {
    const JobResult r = svc.wait(gid);
    EXPECT_EQ(r.status, JobStatus::Completed) << r.error;
    hashes.push_back(result_hash(r));
  }
  return hashes;
}

TEST(ServeSharded, MultiShardMatchesSingleServiceBitwise) {
  fault::ScopedFaults guard;
  const std::vector<JobSpec> trace = small_trace();
  const std::string wal_dir = temp_dir("sharded_bitwise");
  const ShardedOptions opts = fast_sharded(wal_dir, 3);

  // Single-service reference: the sharded tier must not change results,
  // only where they are computed.
  std::vector<std::uint64_t> single_hashes;
  {
    ServiceOptions so = opts.service;
    RamanService single(so);
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : trace) {
      const SubmitResult res = single.submit(spec);
      ASSERT_TRUE(res.accepted) << res.reason;
      ids.push_back(res.job_id);
    }
    for (const std::uint64_t id : ids) {
      const JobResult r = single.wait(id);
      ASSERT_EQ(r.status, JobStatus::Completed) << r.error;
      single_hashes.push_back(result_hash(r));
    }
  }

  ShardedRamanService svc(opts);
  EXPECT_EQ(svc.n_shards(), 3u);
  EXPECT_EQ(svc.n_live(), 3u);
  std::vector<std::uint64_t> gids;
  for (const JobSpec& spec : trace) {
    const SubmitResult res = svc.submit(spec);
    ASSERT_TRUE(res.accepted) << res.reason;
    gids.push_back(res.job_id);
  }
  svc.drain();
  for (std::size_t k = 0; k < gids.size(); ++k) {
    const JobResult r = svc.wait(gids[k]);
    ASSERT_EQ(r.status, JobStatus::Completed) << r.error;
    EXPECT_EQ(result_hash(r), single_hashes[k]) << "job " << k;
  }

  const ShardedStats stats = svc.stats();
  EXPECT_EQ(stats.jobs_accepted, trace.size());
  EXPECT_EQ(stats.jobs_completed, trace.size());
  EXPECT_EQ(stats.kills, 0u);
  EXPECT_GT(stats.wal_records, 0u);  // log-before-ack left a durable trail
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(std::filesystem::exists(svc.wal_path(s))) << s;
  }
  std::filesystem::remove_all(wal_dir);
}

TEST(ServeSharded, KillAllShardsThenRecoverLosesNothing) {
  fault::ScopedFaults guard;
  const std::vector<JobSpec> trace = small_trace();
  const std::string wal_dir = temp_dir("sharded_killall");
  ShardedOptions opts = fast_sharded(wal_dir, 2);
  // Slow the spin kernel so both shards still hold unfinished jobs when
  // the kills land — the crash must interrupt real in-flight work.
  opts.service.modeled.min_iterations = 200000;
  opts.service.modeled.max_iterations = 200000;

  ShardedOptions ref_opts = opts;
  ref_opts.wal_dir = temp_dir("sharded_killall_ref");
  const std::vector<std::uint64_t> want = reference_hashes(trace, ref_opts);

  ShardedRamanService svc(opts);
  std::vector<std::uint64_t> gids;
  for (const JobSpec& spec : trace) {
    const SubmitResult res = svc.submit(spec);
    ASSERT_TRUE(res.accepted) << res.reason;
    gids.push_back(res.job_id);
  }
  svc.kill_shard(0);
  svc.kill_shard(1);
  EXPECT_EQ(svc.n_live(), 0u);
  svc.recover_all();
  EXPECT_EQ(svc.n_live(), 2u);
  svc.drain();

  for (std::size_t k = 0; k < gids.size(); ++k) {
    const JobResult r = svc.wait(gids[k]);
    ASSERT_EQ(r.status, JobStatus::Completed) << r.error;
    // Replayed jobs reproduce the fault-free spectra bit for bit.
    EXPECT_EQ(result_hash(r), want[k]) << "job " << k;
  }
  const ShardedStats stats = svc.stats();
  EXPECT_EQ(stats.kills, 2u);
  EXPECT_EQ(stats.recoveries, 2u);
  EXPECT_GE(stats.replayed_jobs, 1u);
  EXPECT_EQ(stats.jobs_completed, trace.size());
  EXPECT_EQ(stats.jobs_failed, 0u);
  ASSERT_EQ(stats.failover_latencies_s.size(), 2u);
  for (const double lat : stats.failover_latencies_s) EXPECT_GE(lat, 0.0);
  std::filesystem::remove_all(wal_dir);
  std::filesystem::remove_all(ref_opts.wal_dir);
}

// ISSUE-6 satellite regression: a rejection caused by shard health must
// hint the dead shard's recovery-probe estimate, never 0.0.
TEST(ServeSharded, DeadShardRejectionHintsRetryAfter) {
  fault::ScopedFaults guard;
  const std::string wal_dir = temp_dir("sharded_retry_after");
  ShardedOptions opts = fast_sharded(wal_dir, 1);
  opts.service.modeled.min_iterations = 200000;
  opts.service.modeled.max_iterations = 200000;
  ShardedRamanService svc(opts);

  const SubmitResult first = svc.submit(modeled_spec("alice", 3));
  ASSERT_TRUE(first.accepted);
  svc.kill_shard(0);

  const SubmitResult rejected = svc.submit(modeled_spec("bob", 2));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reason, "no-live-shard");
  EXPECT_GT(rejected.retry_after_s, 0.0);
  EXPECT_LE(rejected.retry_after_s, opts.router.probe.cap_s);
  const SubmitResult again = svc.submit(modeled_spec("bob", 2));
  EXPECT_FALSE(again.accepted);
  EXPECT_GT(again.retry_after_s, 0.0);

  svc.recover_shard(0);
  const SubmitResult after = svc.submit(modeled_spec("bob", 2));
  EXPECT_TRUE(after.accepted) << after.reason;
  svc.drain();
  // The job accepted before the kill survived it.
  EXPECT_EQ(svc.wait(first.job_id).status, JobStatus::Completed);
  EXPECT_EQ(svc.wait(after.job_id).status, JobStatus::Completed);
  std::filesystem::remove_all(wal_dir);
}

TEST(ServeSharded, KillFaultFailsSubmissionOverToSurvivor) {
  fault::ScopedFaults guard;
  fault::FaultSpec kill;
  kill.fire_at = 1;  // the first submission's routing kills its shard
  fault::FaultInjector::instance().configure(kFaultShardKill, kill);

  const std::string wal_dir = temp_dir("sharded_killfault");
  ShardedRamanService svc(fast_sharded(wal_dir, 2));
  const std::vector<JobSpec> trace = small_trace();
  std::vector<std::uint64_t> gids;
  for (const JobSpec& spec : trace) {
    const SubmitResult res = svc.submit(spec);
    ASSERT_TRUE(res.accepted) << res.reason;  // failover, not rejection
    gids.push_back(res.job_id);
  }
  EXPECT_EQ(svc.n_live(), 1u);
  svc.recover_all();
  EXPECT_EQ(svc.n_live(), 2u);
  svc.drain();
  for (const std::uint64_t gid : gids) {
    EXPECT_EQ(svc.wait(gid).status, JobStatus::Completed);
  }
  const ShardedStats stats = svc.stats();
  EXPECT_EQ(stats.kills, 1u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.jobs_completed, trace.size());
  std::filesystem::remove_all(wal_dir);
}

TEST(ServeSharded, TornWalWedgeIsTreatedAsShardDeath) {
  fault::ScopedFaults guard;
  // The very first WAL append (the first job record anywhere) is torn:
  // that shard can no longer promise durability, so the submission must
  // fail over and still be acknowledged by a survivor.
  fault::FaultInjector::instance().configure_from_string(
      "serve.wal.torn_write:at=1");

  const std::string wal_dir = temp_dir("sharded_tornwal");
  ShardedRamanService svc(fast_sharded(wal_dir, 2));
  const SubmitResult res = svc.submit(modeled_spec("alice", 3));
  ASSERT_TRUE(res.accepted) << res.reason;
  EXPECT_EQ(svc.n_live(), 1u);
  EXPECT_EQ(svc.stats().kills, 1u);

  svc.recover_all();  // replays the torn log: header only, nothing lost
  EXPECT_EQ(svc.n_live(), 2u);
  svc.drain();
  EXPECT_EQ(svc.wait(res.job_id).status, JobStatus::Completed);
  std::filesystem::remove_all(wal_dir);
}

TEST(ServeSharded, WalWedgeDuringReplayRetriesWithFreshIncarnation) {
  fault::ScopedFaults guard;
  const std::string wal_dir = temp_dir("sharded_replaywedge");
  ShardedOptions opts = fast_sharded(wal_dir, 1);
  // Slow the spin kernel so the kill interrupts unfinished jobs — replay
  // must actually resubmit something for its WAL appends to happen.
  opts.service.modeled.min_iterations = 200000;
  opts.service.modeled.max_iterations = 200000;
  ShardedRamanService svc(opts);

  std::vector<std::uint64_t> gids;
  for (const JobSpec& spec : small_trace()) {
    const SubmitResult res = svc.submit(spec);
    ASSERT_TRUE(res.accepted) << res.reason;
    gids.push_back(res.job_id);
  }
  svc.kill_shard(0);

  // Arming resets the site's visit counter, so the next WAL append — the
  // first replay resubmission's log-before-ack record on the *fresh*
  // incarnation — is the one that tears. Recovery must not unwind (the
  // truncated log means the in-memory replay set is the only copy of the
  // undelivered jobs); it tears the wedged incarnation down and replays
  // onto another, and `at` implies max=1 so the retry goes through.
  fault::FaultInjector::instance().configure_from_string(
      "serve.wal.torn_write:at=1");
  svc.recover_shard(0);
  EXPECT_EQ(svc.n_live(), 1u);

  svc.drain();
  for (const std::uint64_t gid : gids) {
    EXPECT_EQ(svc.wait(gid).status, JobStatus::Completed);
  }
  const ShardedStats stats = svc.stats();
  EXPECT_EQ(stats.kills, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GE(stats.replayed_jobs, 1u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  std::filesystem::remove_all(wal_dir);
}

TEST(ServeRemoteCache, FabricHitIsBitwiseAndBounded) {
  fault::ScopedFaults guard;
  RemoteCacheFabric::Options opts;
  opts.n_shards = 2;
  opts.lookup_timeout_s = 0.02;
  RemoteCacheFabric fabric(opts);
  fabric.start(0);
  fabric.start(1);

  raman::GeometryRecord rec;
  for (int k = 0; k < 9; ++k) {
    rec.alpha[static_cast<std::size_t>(k)] = 1.0 / (k + 3);
  }
  rec.dipole = {0.25, -0.5, 1e-9};
  fabric.publish(1, 0xfeedull, rec);

  raman::GeometryRecord out;
  ASSERT_TRUE(fabric.lookup(0, 1, 0xfeedull, &out));
  for (int k = 0; k < 9; ++k) {
    EXPECT_EQ(out.alpha[static_cast<std::size_t>(k)],
              rec.alpha[static_cast<std::size_t>(k)]);
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(out.dipole[static_cast<std::size_t>(k)],
              rec.dipole[static_cast<std::size_t>(k)]);
  }
  EXPECT_FALSE(fabric.lookup(0, 1, 0xbeefull, &out));  // honest miss

  const RemoteCacheFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // served is bumped after the response send, so the requester may read
  // stats before the server's count of the last answer lands.
  EXPECT_GE(stats.served, 1u);
  EXPECT_EQ(stats.published, 1u);
}

TEST(ServeRemoteCache, TimeoutFaultAndDeadPeerDegradeToMiss) {
  fault::ScopedFaults guard;
  RemoteCacheFabric::Options opts;
  opts.n_shards = 2;
  opts.lookup_timeout_s = 0.02;
  RemoteCacheFabric fabric(opts);
  fabric.start(0);
  fabric.start(1);
  raman::GeometryRecord rec;
  rec.alpha[0] = 42.0;
  fabric.publish(1, 0x77ull, rec);

  // Injected timeout: the response is dropped on the floor and the
  // caller falls back to local compute.
  fault::FaultInjector::instance().configure_from_string(
      "serve.cache.remote_timeout:p=1");
  raman::GeometryRecord out;
  EXPECT_FALSE(fabric.lookup(0, 1, 0x77ull, &out));
  fault::reset();

  // Dead peer: the lookup expires within its budget instead of blocking.
  fabric.stop(1);
  EXPECT_FALSE(fabric.lookup(0, 1, 0x77ull, &out));
  EXPECT_GE(fabric.stats().timeouts, 2u);

  // stop() dropped the incarnation's table: a restarted peer misses.
  fabric.start(1);
  EXPECT_FALSE(fabric.lookup(0, 1, 0x77ull, &out));
}

}  // namespace
}  // namespace swraman::serve
