#include "grid/atom_grid.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman::grid {
namespace {

std::vector<AtomSite> h2_sites() {
  return {{1, {0.0, 0.0, 0.0}}, {1, {0.0, 0.0, 1.4}}};
}

TEST(BeckeWeight, PartitionOfUnity) {
  const std::vector<AtomSite> atoms = {
      {1, {0.0, 0.0, 0.0}}, {8, {0.0, 0.0, 1.8}}, {1, {1.4, 0.0, 2.4}}};
  for (const Vec3& r : {Vec3{0.3, 0.2, 0.5}, Vec3{0.0, 0.0, 1.0},
                        Vec3{1.0, -0.5, 2.0}, Vec3{5.0, 5.0, 5.0}}) {
    double sum = 0.0;
    for (std::size_t a = 0; a < atoms.size(); ++a) {
      const double w = becke_weight(atoms, a, r);
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 1.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(BeckeWeight, DominatedByNearestAtom) {
  const std::vector<AtomSite> atoms = h2_sites();
  EXPECT_GT(becke_weight(atoms, 0, {0.0, 0.0, 0.05}), 0.99);
  EXPECT_GT(becke_weight(atoms, 1, {0.0, 0.0, 1.35}), 0.99);
}

TEST(BeckeWeight, SizeAdjustmentFavorsLargerAtom) {
  // At the geometric midpoint of an O-H bond the larger O atom should own
  // more of the weight than it would in a same-size pair.
  const std::vector<AtomSite> oh = {{8, {0.0, 0.0, 0.0}},
                                    {1, {0.0, 0.0, 1.8}}};
  const std::vector<AtomSite> hh = {{1, {0.0, 0.0, 0.0}},
                                    {1, {0.0, 0.0, 1.8}}};
  const Vec3 mid{0.0, 0.0, 0.9};
  EXPECT_GT(becke_weight(oh, 0, mid), becke_weight(hh, 0, mid));
}

TEST(MolecularGrid, IntegratesGaussianOnHydrogen) {
  const std::vector<AtomSite> atoms = {{1, {0.0, 0.0, 0.0}}};
  const MolecularGrid grid = build_molecular_grid(atoms, {});
  // integral exp(-r^2) d3r = pi^{3/2}.
  double s = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    s += grid.weights[i] * std::exp(-grid.points[i].norm2());
  }
  EXPECT_NEAR(s, std::pow(kPi, 1.5), 1e-5);
}

TEST(MolecularGrid, IntegratesOffCenterDensityOnH2) {
  const MolecularGrid grid = build_molecular_grid(h2_sites(), {});
  // Two unit-norm 1s densities: integral = 2.
  double s = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (const AtomSite& a : grid.atoms) {
      const double r = distance(grid.points[i], a.pos);
      s += grid.weights[i] * std::exp(-2.0 * r) / kPi;
    }
  }
  EXPECT_NEAR(s, 2.0, 1e-4);
}

class GridLevelCase : public ::testing::TestWithParam<GridLevel> {};

TEST_P(GridLevelCase, TighterLevelsHaveMorePointsAndStayAccurate) {
  GridSettings s;
  s.level = GetParam();
  const std::vector<AtomSite> atoms = {{6, {0.0, 0.0, 0.0}}};
  const MolecularGrid grid = build_molecular_grid(atoms, s);
  EXPECT_GT(grid.size(), 100u);
  // Normalized Slater density with carbon-like exponent.
  const double zeta = 3.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double r = grid.points[i].norm();
    sum += grid.weights[i] * std::exp(-2.0 * zeta * r) * zeta * zeta * zeta /
           kPi;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Levels, GridLevelCase,
                         ::testing::Values(GridLevel::Light, GridLevel::Tight,
                                           GridLevel::ReallyTight));

TEST(MolecularGrid, OwnerAtomsAreValid) {
  const MolecularGrid grid = build_molecular_grid(h2_sites(), {});
  for (int a : grid.owner_atom) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 2);
  }
  EXPECT_EQ(grid.points.size(), grid.weights.size());
  EXPECT_EQ(grid.points.size(), grid.owner_atom.size());
}

}  // namespace
}  // namespace swraman::grid
// -- appended coverage: Hirshfeld (stockholder) partitioning.

namespace swraman::grid {
namespace {

double slater_density(int z, double r) {
  return static_cast<double>(z) * std::exp(-2.0 * r);
}

TEST(HirshfeldWeight, PartitionOfUnity) {
  const std::vector<AtomSite> atoms = {{8, {0.0, 0.0, 0.0}},
                                       {1, {0.0, 0.0, 1.8}},
                                       {1, {1.4, 0.0, 2.4}}};
  for (const Vec3& r : {Vec3{0.2, 0.1, 0.4}, Vec3{0.0, 0.0, 1.0},
                        Vec3{2.0, 1.0, 2.0}}) {
    double sum = 0.0;
    for (std::size_t a = 0; a < atoms.size(); ++a) {
      const double w = hirshfeld_weight(atoms, a, r, slater_density);
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 1.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(HirshfeldWeight, FarPointFallsBackToNearestAtom) {
  const std::vector<AtomSite> atoms = {{1, {0.0, 0.0, 0.0}},
                                       {1, {0.0, 0.0, 2.0}}};
  // 400 Bohr away: both densities underflow; nearest atom owns the point.
  EXPECT_DOUBLE_EQ(
      hirshfeld_weight(atoms, 1, {0.0, 0.0, 400.0}, slater_density), 1.0);
  EXPECT_DOUBLE_EQ(
      hirshfeld_weight(atoms, 0, {0.0, 0.0, 400.0}, slater_density), 0.0);
}

TEST(HirshfeldGrid, IntegratesDensityLikeBecke) {
  GridSettings hirshfeld;
  hirshfeld.partition = PartitionScheme::Hirshfeld;
  const std::vector<AtomSite> atoms = {{1, {0.0, 0.0, 0.0}},
                                       {1, {0.0, 0.0, 1.4}}};
  const MolecularGrid g = build_molecular_grid(atoms, hirshfeld);
  double q = 0.0;
  for (std::size_t p = 0; p < g.size(); ++p) {
    for (const AtomSite& a : g.atoms) {
      const double r = distance(g.points[p], a.pos);
      q += g.weights[p] * std::exp(-2.0 * r) / kPi;
    }
  }
  EXPECT_NEAR(q, 2.0, 2e-4);
}

}  // namespace
}  // namespace swraman::grid
