#include "grid/loadbalance.hpp"

#include <random>

#include <gtest/gtest.h>

namespace swraman::grid {
namespace {

std::vector<Batch> synthetic_batches(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> size_dist(100, 300);
  std::vector<Batch> batches(n);
  std::size_t next_id = 0;
  for (Batch& b : batches) {
    const std::size_t s = size_dist(rng);
    for (std::size_t k = 0; k < s; ++k) b.point_ids.push_back(next_id++);
  }
  return batches;
}

TEST(LoadBalance, AllBatchesAssigned) {
  const std::vector<Batch> batches = synthetic_batches(64, 1);
  const BatchAssignment a = balance_batches(batches, 8);
  ASSERT_EQ(a.owner.size(), batches.size());
  for (std::size_t p : a.owner) EXPECT_LT(p, 8u);
  std::size_t total = 0;
  for (std::size_t c : a.points_per_process) total += c;
  std::size_t expected = 0;
  for (const Batch& b : batches) expected += b.size();
  EXPECT_EQ(total, expected);
}

class LoadBalanceProcs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LoadBalanceProcs, GreedyBeatsOrMatchesRoundRobinAndRandom) {
  const std::size_t nproc = GetParam();
  const std::vector<Batch> batches = synthetic_batches(256, 7);
  const double greedy = balance_batches(batches, nproc).imbalance();
  const double rr = round_robin_batches(batches, nproc).imbalance();
  const double rnd = random_batches(batches, nproc, 3).imbalance();
  EXPECT_LE(greedy, rr + 1e-12);
  EXPECT_LE(greedy, rnd + 1e-12);
}

TEST_P(LoadBalanceProcs, ImbalanceIsTight) {
  const std::size_t nproc = GetParam();
  const std::vector<Batch> batches = synthetic_batches(512, 13);
  const BatchAssignment a = balance_batches(batches, nproc);
  // Greedy point balancing keeps max within one max-batch of the mean.
  std::size_t total = 0;
  for (const Batch& b : batches) total += b.size();
  const double mean =
      static_cast<double>(total) / static_cast<double>(nproc);
  EXPECT_LE(static_cast<double>(a.max_points()), mean + 300.0);
  EXPECT_GE(static_cast<double>(a.min_points()), mean - 300.0);
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, LoadBalanceProcs,
                         ::testing::Values(1, 2, 4, 7, 16, 64));

TEST(LoadBalance, MorePointsGoToEmptiestProcess) {
  // Three batches of sizes 10, 10, 5 over 2 processes: third batch must go
  // to the process holding only 10 points.
  std::vector<Batch> batches(3);
  for (std::size_t k = 0; k < 10; ++k) batches[0].point_ids.push_back(k);
  for (std::size_t k = 0; k < 10; ++k) batches[1].point_ids.push_back(10 + k);
  for (std::size_t k = 0; k < 5; ++k) batches[2].point_ids.push_back(20 + k);
  const BatchAssignment a = balance_batches(batches, 2);
  EXPECT_EQ(a.owner[0], 0u);
  EXPECT_EQ(a.owner[1], 1u);
  EXPECT_EQ(a.points_per_process[0] + a.points_per_process[1], 25u);
  EXPECT_EQ(a.max_points(), 15u);
}

TEST(LoadBalance, SingleProcessTakesEverything) {
  const std::vector<Batch> batches = synthetic_batches(10, 3);
  const BatchAssignment a = balance_batches(batches, 1);
  EXPECT_DOUBLE_EQ(a.imbalance(), 1.0);
}

}  // namespace
}  // namespace swraman::grid
