#include "grid/angular.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "grid/ylm.hpp"

namespace swraman::grid {
namespace {

void expect_exact_to_order(const AngularGrid& g) {
  // A rule exact for Y_lm up to design order integrates Y_00 to sqrt(4 pi)
  // and every higher Y_lm to zero.
  const int lmax = g.design_order;
  const std::size_t nlm = n_lm(lmax);
  std::vector<double> integral(nlm, 0.0);
  std::vector<double> y;
  for (std::size_t i = 0; i < g.points.size(); ++i) {
    real_ylm(g.points[i], lmax, y);
    for (std::size_t k = 0; k < nlm; ++k) integral[k] += g.weights[i] * y[k];
  }
  EXPECT_NEAR(integral[0], std::sqrt(kFourPi), 1e-10);
  for (std::size_t k = 1; k < nlm; ++k) {
    EXPECT_NEAR(integral[k], 0.0, 1e-10) << "lm flat index " << k;
  }
}

class LebedevSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LebedevSize, WeightsPositiveOnUnitSphereSummingToFourPi) {
  const AngularGrid g = lebedev_grid(GetParam());
  EXPECT_EQ(g.points.size(), GetParam());
  double wsum = 0.0;
  for (std::size_t i = 0; i < g.points.size(); ++i) {
    EXPECT_NEAR(g.points[i].norm(), 1.0, 1e-12);
    EXPECT_GT(g.weights[i], 0.0);
    wsum += g.weights[i];
  }
  EXPECT_NEAR(wsum, kFourPi, 1e-10);
}

TEST_P(LebedevSize, ExactToDesignOrder) {
  expect_exact_to_order(lebedev_grid(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllSizes, LebedevSize,
                         ::testing::ValuesIn(lebedev_sizes()));

TEST(Lebedev, RejectsUnknownSize) {
  EXPECT_THROW(lebedev_grid(99), Error);
}

class ProductOrder : public ::testing::TestWithParam<int> {};

TEST_P(ProductOrder, ExactToDesignOrder) {
  expect_exact_to_order(product_grid(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Orders, ProductOrder,
                         ::testing::Values(0, 1, 3, 7, 13, 17, 23, 29));

TEST(AngularGridForOrder, PrefersLebedevWhenSufficient) {
  EXPECT_EQ(angular_grid_for_order(3).points.size(), 6u);
  EXPECT_EQ(angular_grid_for_order(4).points.size(), 14u);
  EXPECT_EQ(angular_grid_for_order(11).points.size(), 50u);
}

TEST(AngularGridForOrder, FallsBackToProductGrid) {
  const AngularGrid g = angular_grid_for_order(15);
  EXPECT_GE(g.design_order, 15);
  expect_exact_to_order(g);
}

TEST(AngularGrid, IntegratesAnisotropicPolynomial) {
  // integral x^2 z^2 dOmega = 4 pi / 15.
  const AngularGrid g = lebedev_grid(26);
  double s = 0.0;
  for (std::size_t i = 0; i < g.points.size(); ++i) {
    const Vec3& u = g.points[i];
    s += g.weights[i] * u.x * u.x * u.z * u.z;
  }
  EXPECT_NEAR(s, kFourPi / 15.0, 1e-12);
}

}  // namespace
}  // namespace swraman::grid
