#include "grid/ylm.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "grid/angular.hpp"

namespace swraman::grid {
namespace {

TEST(Ylm, LowOrderClosedForms) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    Vec3 u{dist(rng), dist(rng), dist(rng)};
    if (u.norm() < 1e-3) continue;
    u = u / u.norm();
    const std::vector<double> y = real_ylm(u, 2);

    EXPECT_NEAR(y[lm_index(0, 0)], std::sqrt(1.0 / kFourPi), 1e-12);
    const double c1 = std::sqrt(3.0 / kFourPi);
    EXPECT_NEAR(y[lm_index(1, -1)], c1 * u.y, 1e-12);
    EXPECT_NEAR(y[lm_index(1, 0)], c1 * u.z, 1e-12);
    EXPECT_NEAR(y[lm_index(1, 1)], c1 * u.x, 1e-12);

    const double c2 = 0.5 * std::sqrt(15.0 / kPi);
    EXPECT_NEAR(y[lm_index(2, -2)], c2 * u.x * u.y, 1e-12);
    EXPECT_NEAR(y[lm_index(2, -1)], c2 * u.y * u.z, 1e-12);
    EXPECT_NEAR(y[lm_index(2, 1)], c2 * u.x * u.z, 1e-12);
    EXPECT_NEAR(y[lm_index(2, 0)],
                0.25 * std::sqrt(5.0 / kPi) * (3.0 * u.z * u.z - 1.0), 1e-12);
    EXPECT_NEAR(y[lm_index(2, 2)],
                0.25 * std::sqrt(15.0 / kPi) * (u.x * u.x - u.y * u.y), 1e-12);
  }
}

TEST(Ylm, NorthPoleIsFinite) {
  const std::vector<double> y = real_ylm({0.0, 0.0, 1.0}, 8);
  for (double v : y) EXPECT_TRUE(std::isfinite(v));
  // Only m = 0 components survive at the pole.
  for (int l = 1; l <= 8; ++l) {
    for (int m = -l; m <= l; ++m) {
      if (m != 0) EXPECT_NEAR(y[lm_index(l, m)], 0.0, 1e-12);
    }
  }
}

class YlmOrthonormality : public ::testing::TestWithParam<int> {};

TEST_P(YlmOrthonormality, QuadratureOrthonormal) {
  const int lmax = GetParam();
  // Product grid exact to 2*lmax integrates all Y_lm * Y_l'm' products.
  const AngularGrid g = product_grid(2 * lmax);
  const std::size_t nlm = n_lm(lmax);
  std::vector<double> overlap(nlm * nlm, 0.0);
  std::vector<double> y;
  for (std::size_t i = 0; i < g.points.size(); ++i) {
    real_ylm(g.points[i], lmax, y);
    for (std::size_t a = 0; a < nlm; ++a)
      for (std::size_t b = 0; b <= a; ++b)
        overlap[a * nlm + b] += g.weights[i] * y[a] * y[b];
  }
  for (std::size_t a = 0; a < nlm; ++a) {
    for (std::size_t b = 0; b <= a; ++b) {
      EXPECT_NEAR(overlap[a * nlm + b], a == b ? 1.0 : 0.0, 1e-10)
          << "lmax=" << lmax << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, YlmOrthonormality,
                         ::testing::Values(0, 1, 2, 4, 6, 8));

TEST(Ylm, UnnormalizedDirectionGivesSameValues) {
  const Vec3 u{0.3, -0.4, 0.87};
  const std::vector<double> a = real_ylm(u, 4);
  const std::vector<double> b = real_ylm(u * 7.5, 4);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Ylm, AdditionTheorem) {
  // sum_m Y_lm(u)^2 = (2l+1)/(4 pi) for any direction.
  const Vec3 u{0.6, 0.0, 0.8};
  const std::vector<double> y = real_ylm(u, 6);
  for (int l = 0; l <= 6; ++l) {
    double s = 0.0;
    for (int m = -l; m <= l; ++m) {
      const double v = y[lm_index(l, m)];
      s += v * v;
    }
    EXPECT_NEAR(s, (2.0 * l + 1.0) / kFourPi, 1e-11);
  }
}

}  // namespace
}  // namespace swraman::grid
