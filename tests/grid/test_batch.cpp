#include "grid/batch.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "grid/atom_grid.hpp"
#include "grid/loadbalance.hpp"

namespace swraman::grid {
namespace {

MolecularGrid water_grid() {
  const std::vector<AtomSite> atoms = {{8, {0.0, 0.0, 0.0}},
                                       {1, {0.0, 1.43, 1.1}},
                                       {1, {0.0, -1.43, 1.1}}};
  return build_molecular_grid(atoms, {});
}

TEST(Batching, EveryPointInExactlyOneBatch) {
  const MolecularGrid grid = water_grid();
  const std::vector<Batch> batches = make_batches(grid, {});
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const Batch& b : batches) {
    for (std::size_t id : b.point_ids) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate point " << id;
      EXPECT_LT(id, grid.size());
    }
    total += b.size();
  }
  EXPECT_EQ(total, grid.size());
}

class BatchTargetSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchTargetSize, BatchSizesNearTarget) {
  const std::size_t target = GetParam();
  const MolecularGrid grid = water_grid();
  BatchingOptions opt;
  opt.target_batch_size = target;
  const std::vector<Batch> batches = make_batches(grid, opt);
  const std::size_t limit =
      static_cast<std::size_t>(std::ceil(opt.slack * target));
  for (const Batch& b : batches) {
    EXPECT_LE(b.size(), limit);
    EXPECT_GE(b.size(), 1u);
  }
  // Median bisection keeps halves within one point, so no tiny fragments:
  // every batch holds at least ~limit/2 points.
  for (const Batch& b : batches) {
    EXPECT_GE(2 * b.size() + 1, limit / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, BatchTargetSize,
                         ::testing::Values(100, 200, 300));

TEST(Batching, BatchesAreSpatiallyCompact) {
  const MolecularGrid grid = water_grid();
  BatchingOptions opt;
  opt.target_batch_size = 150;
  const std::vector<Batch> batches = make_batches(grid, opt);
  // Mean intra-batch spread must be far below the overall grid spread.
  Vec3 gcom;
  for (const Vec3& p : grid.points) gcom += p;
  gcom *= 1.0 / static_cast<double>(grid.size());
  double global_spread = 0.0;
  for (const Vec3& p : grid.points) global_spread += (p - gcom).norm2();
  global_spread /= static_cast<double>(grid.size());

  double mean_batch_spread = 0.0;
  for (const Batch& b : batches) {
    double s = 0.0;
    for (std::size_t id : b.point_ids) {
      s += (grid.points[id] - b.center).norm2();
    }
    mean_batch_spread += s / static_cast<double>(b.size());
  }
  mean_batch_spread /= static_cast<double>(batches.size());
  EXPECT_LT(mean_batch_spread, 0.5 * global_spread);
}

TEST(PrincipalAxis, RecoversDominantDirection) {
  std::mt19937 rng(2);
  std::normal_distribution<double> wide(0.0, 5.0);
  std::normal_distribution<double> narrow(0.0, 0.1);
  std::vector<Vec3> pts;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 500; ++i) {
    pts.push_back({narrow(rng), wide(rng), narrow(rng)});
    ids.push_back(i);
  }
  const Vec3 axis = principal_axis(pts, ids);
  EXPECT_GT(std::abs(axis.y), 0.99);
}

TEST(Batching, EmptyGridYieldsNoBatches) {
  MolecularGrid grid;
  EXPECT_TRUE(make_batches(grid, {}).empty());
}

// Synthetic batch list with the given per-batch point counts.
std::vector<Batch> batches_of(const std::vector<std::size_t>& counts) {
  std::vector<Batch> batches(counts.size());
  std::size_t next = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    batches[b].point_ids.resize(counts[b]);
    std::iota(batches[b].point_ids.begin(), batches[b].point_ids.end(), next);
    next += counts[b];
  }
  return batches;
}

TEST(BatchSlices, CoverAllBatchesExactlyOnceInOrder) {
  const std::vector<Batch> batches =
      batches_of({200, 180, 220, 50, 300, 10, 190, 205});
  for (std::size_t n_slices = 1; n_slices <= 10; ++n_slices) {
    const std::vector<BatchSlice> slices = slice_batches(batches, n_slices);
    ASSERT_FALSE(slices.empty());
    EXPECT_LE(slices.size(), n_slices);
    EXPECT_EQ(slices.front().first, 0u);
    EXPECT_EQ(slices.back().last, batches.size());
    for (std::size_t s = 1; s < slices.size(); ++s) {
      EXPECT_EQ(slices[s].first, slices[s - 1].last) << "gap before " << s;
    }
    std::size_t points = 0;
    for (const BatchSlice& slice : slices) {
      std::size_t in_slice = 0;
      for (std::size_t b = slice.first; b < slice.last; ++b) {
        in_slice += batches[b].size();
      }
      EXPECT_EQ(slice.points, in_slice);
      points += slice.points;
    }
    EXPECT_EQ(points, 1355u);
  }
}

TEST(BatchSlices, BalancedByPointCount) {
  // Uniform batches must split into near-equal slices.
  const std::vector<Batch> batches =
      batches_of(std::vector<std::size_t>(16, 100));
  const std::vector<BatchSlice> slices = slice_batches(batches, 4);
  ASSERT_EQ(slices.size(), 4u);
  for (const BatchSlice& slice : slices) {
    EXPECT_EQ(slice.points, 400u);
  }
}

TEST(BatchSlices, FewerBatchesThanSlices) {
  const std::vector<Batch> batches = batches_of({7, 9});
  const std::vector<BatchSlice> slices = slice_batches(batches, 5);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].points, 7u);
  EXPECT_EQ(slices[1].points, 9u);
}

TEST(BatchSlices, DegenerateInputs) {
  EXPECT_TRUE(slice_batches({}, 4).empty());
  const std::vector<Batch> batches = batches_of({5});
  EXPECT_TRUE(slice_batches(batches, 0).empty());
  const std::vector<BatchSlice> one = slice_batches(batches, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].points, 5u);
}

TEST(BatchSlices, RealGridSlicesStayBalanced) {
  const MolecularGrid grid = water_grid();
  const std::vector<Batch> batches = make_batches(grid, {});
  const std::vector<BatchSlice> slices = slice_batches(batches, 4);
  ASSERT_GE(slices.size(), 2u);
  std::size_t lo = grid.size();
  std::size_t hi = 0;
  for (const BatchSlice& slice : slices) {
    lo = std::min(lo, slice.points);
    hi = std::max(hi, slice.points);
  }
  // Greedy point balancing: no slice more than ~2x another on a real grid.
  EXPECT_LE(hi, 2 * lo + 400);
}

}  // namespace
}  // namespace swraman::grid
