#include "grid/batch.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "grid/atom_grid.hpp"
#include "grid/loadbalance.hpp"

namespace swraman::grid {
namespace {

MolecularGrid water_grid() {
  const std::vector<AtomSite> atoms = {{8, {0.0, 0.0, 0.0}},
                                       {1, {0.0, 1.43, 1.1}},
                                       {1, {0.0, -1.43, 1.1}}};
  return build_molecular_grid(atoms, {});
}

TEST(Batching, EveryPointInExactlyOneBatch) {
  const MolecularGrid grid = water_grid();
  const std::vector<Batch> batches = make_batches(grid, {});
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const Batch& b : batches) {
    for (std::size_t id : b.point_ids) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate point " << id;
      EXPECT_LT(id, grid.size());
    }
    total += b.size();
  }
  EXPECT_EQ(total, grid.size());
}

class BatchTargetSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchTargetSize, BatchSizesNearTarget) {
  const std::size_t target = GetParam();
  const MolecularGrid grid = water_grid();
  BatchingOptions opt;
  opt.target_batch_size = target;
  const std::vector<Batch> batches = make_batches(grid, opt);
  const std::size_t limit =
      static_cast<std::size_t>(std::ceil(opt.slack * target));
  for (const Batch& b : batches) {
    EXPECT_LE(b.size(), limit);
    EXPECT_GE(b.size(), 1u);
  }
  // Median bisection keeps halves within one point, so no tiny fragments:
  // every batch holds at least ~limit/2 points.
  for (const Batch& b : batches) {
    EXPECT_GE(2 * b.size() + 1, limit / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, BatchTargetSize,
                         ::testing::Values(100, 200, 300));

TEST(Batching, BatchesAreSpatiallyCompact) {
  const MolecularGrid grid = water_grid();
  BatchingOptions opt;
  opt.target_batch_size = 150;
  const std::vector<Batch> batches = make_batches(grid, opt);
  // Mean intra-batch spread must be far below the overall grid spread.
  Vec3 gcom;
  for (const Vec3& p : grid.points) gcom += p;
  gcom *= 1.0 / static_cast<double>(grid.size());
  double global_spread = 0.0;
  for (const Vec3& p : grid.points) global_spread += (p - gcom).norm2();
  global_spread /= static_cast<double>(grid.size());

  double mean_batch_spread = 0.0;
  for (const Batch& b : batches) {
    double s = 0.0;
    for (std::size_t id : b.point_ids) {
      s += (grid.points[id] - b.center).norm2();
    }
    mean_batch_spread += s / static_cast<double>(b.size());
  }
  mean_batch_spread /= static_cast<double>(batches.size());
  EXPECT_LT(mean_batch_spread, 0.5 * global_spread);
}

TEST(PrincipalAxis, RecoversDominantDirection) {
  std::mt19937 rng(2);
  std::normal_distribution<double> wide(0.0, 5.0);
  std::normal_distribution<double> narrow(0.0, 0.1);
  std::vector<Vec3> pts;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 500; ++i) {
    pts.push_back({narrow(rng), wide(rng), narrow(rng)});
    ids.push_back(i);
  }
  const Vec3 axis = principal_axis(pts, ids);
  EXPECT_GT(std::abs(axis.y), 0.99);
}

TEST(Batching, EmptyGridYieldsNoBatches) {
  MolecularGrid grid;
  EXPECT_TRUE(make_batches(grid, {}).empty());
}

}  // namespace
}  // namespace swraman::grid
