#include "atomic/pseudo.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman::atomic {
namespace {

TEST(IsValenceShell, MainGroupElements) {
  EXPECT_TRUE(is_valence_shell(1, 1, 0));    // H 1s
  EXPECT_TRUE(is_valence_shell(6, 2, 0));    // C 2s
  EXPECT_TRUE(is_valence_shell(6, 2, 1));    // C 2p
  EXPECT_FALSE(is_valence_shell(6, 1, 0));   // C 1s core
  EXPECT_TRUE(is_valence_shell(14, 3, 0));   // Si 3s
  EXPECT_FALSE(is_valence_shell(14, 2, 1));  // Si 2p core
}

class PseudoZ : public ::testing::TestWithParam<int> {};

TEST_P(PseudoZ, ValenceChargeAndNodelessness) {
  const int z = GetParam();
  const AtomicSolution ae = solve_atom(z);
  const PseudoAtom ps = pseudize(ae);

  EXPECT_NEAR(ps.z_valence, valence_electron_count(z), 1e-12);

  // Pseudo-orbitals are nodeless: no sign change above the noise floor.
  for (const AtomicOrbital& orb : ps.valence) {
    double umax = 0.0;
    for (double u : orb.u) umax = std::max(umax, std::abs(u));
    double prev = 0.0;
    int nodes = 0;
    for (double u : orb.u) {
      if (std::abs(u) < 1e-5 * umax) continue;
      if (prev != 0.0 && u * prev < 0.0) ++nodes;
      prev = u;
    }
    EXPECT_EQ(nodes, 0) << "Z=" << z << " n=" << orb.n << " l=" << orb.l;
  }

  // Valence density integrates to the valence charge.
  double q = 0.0;
  for (std::size_t i = 0; i < ps.mesh.size(); ++i) {
    const double r = ps.mesh.r(i);
    q += ps.valence_density[i] * kFourPi * r * r * ps.mesh.weight(i);
  }
  EXPECT_NEAR(q, ps.z_valence, 1e-8);
}

TEST_P(PseudoZ, IonicPotentialHasCoulombTailAndFiniteCore) {
  const int z = GetParam();
  const PseudoAtom ps = pseudize(solve_atom(z));
  const RadialMesh& mesh = ps.mesh;

  // Far tail: v_ion -> -Z_v / r.
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const double r = mesh.r(i);
    if (r < 6.0 || r > 12.0) continue;
    EXPECT_NEAR(ps.v_ion[i], -ps.z_valence / r, 0.05 * ps.z_valence / r + 0.01)
        << "Z=" << z << " r=" << r;
  }

  // Finite at the origin (unlike -Z/r).
  EXPECT_TRUE(std::isfinite(ps.v_ion[0]));
  EXPECT_LT(std::abs(ps.v_ion[0]), 100.0) << "Z=" << z;
}

INSTANTIATE_TEST_SUITE_P(Elements, PseudoZ, ::testing::Values(6, 8, 14));

TEST(Pseudo, MatchesAllElectronOrbitalOutsideCore) {
  const AtomicSolution ae = solve_atom(14);  // Si
  const PseudoAtom ps = pseudize(ae);
  // Find the AE 3s orbital.
  const AtomicOrbital* ae3s = nullptr;
  for (const AtomicOrbital& o : ae.orbitals) {
    if (o.n == 3 && o.l == 0) ae3s = &o;
  }
  ASSERT_NE(ae3s, nullptr);
  const AtomicOrbital* ps3s = nullptr;
  for (const AtomicOrbital& o : ps.valence) {
    if (o.n == 3 && o.l == 0) ps3s = &o;
  }
  ASSERT_NE(ps3s, nullptr);
  // Outside ~3 Bohr the pseudized orbital tracks the AE one up to the
  // renormalization factor (core norm change is small).
  for (std::size_t i = 0; i < ae.mesh.size(); i += 50) {
    const double r = ae.mesh.r(i);
    if (r < 3.0 || r > 8.0) continue;
    EXPECT_NEAR(ps3s->u[i], ae3s->u[i], 0.05 * std::abs(ae3s->u[i]) + 1e-3);
  }
}

}  // namespace
}  // namespace swraman::atomic
