#include "atomic/atom_solver.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman::atomic {
namespace {

TEST(RadialHartree, PointLikeDensityGivesCoulombTail) {
  const RadialMesh mesh(1e-5, 40.0, 600);
  // Narrow normalized Gaussian shell at the origin: V_H -> q/r outside.
  std::vector<double> n(mesh.size());
  const double sigma = 0.2;
  double norm = 0.0;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const double r = mesh.r(i);
    n[i] = std::exp(-r * r / (2.0 * sigma * sigma));
    norm += n[i] * kFourPi * r * r * mesh.weight(i);
  }
  for (double& x : n) x /= norm;
  const std::vector<double> vh = radial_hartree(mesh, n);
  for (std::size_t i = 0; i < mesh.size(); i += 40) {
    const double r = mesh.r(i);
    if (r < 5.0 * sigma) continue;
    EXPECT_NEAR(vh[i], 1.0 / r, 2e-4 / r) << "r=" << r;
  }
}

TEST(RadialHartree, HydrogenDensityAnalytic) {
  // n = exp(-2r)/pi: V_H(r) = 1/r - (1 + 1/r) e^{-2r}.
  const RadialMesh mesh(1e-6, 40.0, 700);
  std::vector<double> n(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    n[i] = std::exp(-2.0 * mesh.r(i)) / kPi;
  }
  const std::vector<double> vh = radial_hartree(mesh, n);
  for (std::size_t i = 50; i < mesh.size(); i += 60) {
    const double r = mesh.r(i);
    const double exact = 1.0 / r - (1.0 + 1.0 / r) * std::exp(-2.0 * r);
    EXPECT_NEAR(vh[i], exact, 2e-4 * std::abs(exact) + 1e-7) << "r=" << r;
  }
}

TEST(AtomSolver, HydrogenLdaReferenceValues) {
  const AtomicSolution sol = solve_atom(1);
  EXPECT_TRUE(sol.converged);
  ASSERT_EQ(sol.orbitals.size(), 1u);
  // Spin-restricted LDA(PW92) H atom: eps_1s ~= -0.2338 Ha,
  // E_tot ~= -0.4457 Ha (NIST atomic reference data).
  EXPECT_NEAR(sol.orbitals[0].energy, -0.2338, 5e-3);
  EXPECT_NEAR(sol.total_energy, -0.4457, 5e-3);
}

TEST(AtomSolver, HeliumLdaReferenceValues) {
  const AtomicSolution sol = solve_atom(2);
  EXPECT_TRUE(sol.converged);
  // LDA helium: eps_1s ~= -0.5704 Ha, E_tot ~= -2.8348 Ha (NIST LSD data).
  EXPECT_NEAR(sol.orbitals[0].energy, -0.5704, 1e-2);
  EXPECT_NEAR(sol.total_energy, -2.8348, 1e-2);
}

class AtomZ : public ::testing::TestWithParam<int> {};

TEST_P(AtomZ, ConvergesWithCorrectElectronCount) {
  const int z = GetParam();
  const AtomicSolution sol = solve_atom(z);
  EXPECT_TRUE(sol.converged) << "Z=" << z;

  double n_elec = 0.0;
  for (std::size_t i = 0; i < sol.mesh.size(); ++i) {
    const double r = sol.mesh.r(i);
    n_elec += sol.density[i] * kFourPi * r * r * sol.mesh.weight(i);
  }
  EXPECT_NEAR(n_elec, static_cast<double>(z), 1e-6);

  // Orbital energies ordered: core far below valence.
  for (const AtomicOrbital& orb : sol.orbitals) {
    EXPECT_LT(orb.energy, 0.5) << "unbound occupied orbital, Z=" << z;
  }
  EXPECT_LT(sol.total_energy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Elements, AtomZ,
                         ::testing::Values(1, 2, 6, 7, 8, 14, 16));

TEST(AtomSolver, CarbonShellStructure) {
  const AtomicSolution sol = solve_atom(6);
  ASSERT_EQ(sol.orbitals.size(), 3u);  // 1s, 2s, 2p
  // Known LDA carbon eigenvalues: 1s ~ -9.95, 2s ~ -0.50, 2p ~ -0.19 Ha.
  double e1s = 0, e2s = 0, e2p = 0;
  for (const AtomicOrbital& o : sol.orbitals) {
    if (o.n == 1 && o.l == 0) e1s = o.energy;
    if (o.n == 2 && o.l == 0) e2s = o.energy;
    if (o.n == 2 && o.l == 1) e2p = o.energy;
  }
  EXPECT_NEAR(e1s, -9.95, 0.2);
  EXPECT_NEAR(e2s, -0.50, 0.05);
  EXPECT_NEAR(e2p, -0.19, 0.05);
}

TEST(AtomSolver, ConfinementLocalizesOrbitals) {
  AtomSolverOptions opt;
  opt.confinement_strength = 2.0;
  opt.confinement_onset = 4.0;
  const AtomicSolution confined = solve_atom(1, opt);
  const AtomicSolution free_atom = solve_atom(1);
  // Confinement raises the eigenvalue and pulls the tail in.
  EXPECT_GT(confined.orbitals[0].energy, free_atom.orbitals[0].energy);
  const RadialMesh& mesh = confined.mesh;
  std::size_t i_far = 0;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    if (mesh.r(i) > 7.0) {
      i_far = i;
      break;
    }
  }
  EXPECT_LT(std::abs(confined.orbitals[0].u[i_far]),
            std::abs(free_atom.orbitals[0].u[i_far]));
}

}  // namespace
}  // namespace swraman::atomic
