#include "atomic/radial_solver.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace swraman::atomic {
namespace {

// Coulomb potential: hydrogenic energies E_nl = -Z^2 / (2 n^2) with
// n = nodes + l + 1 — an exact analytic check of the log-mesh solver.
class HydrogenicZ : public ::testing::TestWithParam<double> {};

TEST_P(HydrogenicZ, SStatesMatchAnalyticSpectrum) {
  const double z = GetParam();
  const RadialMesh mesh(1e-6 / z, 60.0 / std::sqrt(z), 900);
  std::vector<double> v(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) v[i] = -z / mesh.r(i);

  const std::vector<RadialState> states = solve_radial(mesh, v, 0, 3);
  for (std::size_t k = 0; k < states.size(); ++k) {
    const double n = static_cast<double>(k + 1);
    const double exact = -z * z / (2.0 * n * n);
    EXPECT_NEAR(states[k].energy, exact, 2e-4 * z * z) << "state " << k;
    EXPECT_EQ(states[k].node_count, static_cast<int>(k));
  }
}

TEST_P(HydrogenicZ, PStatesMatchAnalyticSpectrum) {
  const double z = GetParam();
  const RadialMesh mesh(1e-6 / z, 60.0 / std::sqrt(z), 900);
  std::vector<double> v(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) v[i] = -z / mesh.r(i);

  const std::vector<RadialState> states = solve_radial(mesh, v, 1, 2);
  for (std::size_t k = 0; k < states.size(); ++k) {
    const double n = static_cast<double>(k + 2);  // 2p, 3p
    const double exact = -z * z / (2.0 * n * n);
    EXPECT_NEAR(states[k].energy, exact, 2e-4 * z * z) << "state " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Charges, HydrogenicZ,
                         ::testing::Values(1.0, 2.0, 6.0, 14.0));

TEST(RadialSolver, StatesAreNormalized) {
  const RadialMesh mesh(1e-6, 50.0, 700);
  std::vector<double> v(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) v[i] = -1.0 / mesh.r(i);
  const std::vector<RadialState> states = solve_radial(mesh, v, 0, 2);
  for (const RadialState& st : states) {
    std::vector<double> u2(st.u.size());
    for (std::size_t i = 0; i < u2.size(); ++i) u2[i] = st.u[i] * st.u[i];
    EXPECT_NEAR(mesh.integrate(u2), 1.0, 1e-10);
  }
}

TEST(RadialSolver, Hydrogen1sWavefunctionShape) {
  const RadialMesh mesh(1e-6, 50.0, 900);
  std::vector<double> v(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) v[i] = -1.0 / mesh.r(i);
  const RadialState st = solve_radial(mesh, v, 0, 1)[0];
  // u_1s(r) = 2 r exp(-r).
  for (std::size_t i = 100; i < mesh.size(); i += 60) {
    const double r = mesh.r(i);
    if (r > 8.0) break;
    EXPECT_NEAR(st.u[i], 2.0 * r * std::exp(-r), 3e-3) << "r=" << r;
  }
}

TEST(RadialSolver, HarmonicOscillatorSpectrum) {
  // V = r^2/2: s-state energies are 1.5, 3.5, 5.5 (E = 2k + l + 3/2).
  const RadialMesh mesh(1e-5, 15.0, 800);
  std::vector<double> v(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    v[i] = 0.5 * mesh.r(i) * mesh.r(i);
  }
  const std::vector<RadialState> s = solve_radial(mesh, v, 0, 3);
  EXPECT_NEAR(s[0].energy, 1.5, 1e-4);
  EXPECT_NEAR(s[1].energy, 3.5, 1e-4);
  EXPECT_NEAR(s[2].energy, 5.5, 1e-4);
  const std::vector<RadialState> p = solve_radial(mesh, v, 1, 2);
  EXPECT_NEAR(p[0].energy, 2.5, 1e-4);
  EXPECT_NEAR(p[1].energy, 4.5, 1e-4);
}

}  // namespace
}  // namespace swraman::atomic
