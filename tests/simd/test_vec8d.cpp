#include "simd/vec8d.hpp"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace swraman::simd {
namespace {

TEST(Vec8d, LoadStoreRoundTrip) {
  double in[kLanes] = {1, 2, 3, 4, 5, 6, 7, 8};
  double out[kLanes] = {};
  Vec8d::load(in).store(out);
  for (std::size_t i = 0; i < kLanes; ++i) EXPECT_DOUBLE_EQ(out[i], in[i]);
}

TEST(Vec8d, PartialLoadZeroFills) {
  double in[3] = {1.0, 2.0, 3.0};
  const Vec8d v = Vec8d::load_partial(in, 3);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  for (std::size_t i = 3; i < kLanes; ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
}

TEST(Vec8d, VmadMatchesScalar) {
  Vec8d a(2.0), b(3.0), c(1.0);
  const Vec8d d = vmad(a, b, c);
  for (std::size_t i = 0; i < kLanes; ++i) EXPECT_DOUBLE_EQ(d[i], 7.0);
}

TEST(Vec8d, HorizontalSum) {
  double in[kLanes] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(hsum(Vec8d::load(in)), 36.0);
}

class SimdKernelSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimdKernelSize, AxpyMatchesScalar) {
  const std::size_t n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(n), x(n), y(n), y_ref(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = dist(rng);
    x[i] = dist(rng);
    y[i] = y_ref[i] = dist(rng);
  }
  axpy(a.data(), x.data(), y.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    y_ref[i] += a[i] * x[i];
    EXPECT_DOUBLE_EQ(y[i], y_ref[i]);
  }
}

TEST_P(SimdKernelSize, DotMatchesScalar) {
  const std::size_t n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) + 99);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(n), b(n);
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
    ref += a[i] * b[i];
  }
  EXPECT_NEAR(dot(a.data(), b.data(), n), ref, 1e-12);
}

TEST_P(SimdKernelSize, Poly3MatchesHorner) {
  const std::size_t n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) + 7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> s0(n), s1(n), s2(n), s3(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    s0[i] = dist(rng);
    s1[i] = dist(rng);
    s2[i] = dist(rng);
    s3[i] = dist(rng);
  }
  const double t = 0.613;
  poly3_eval(s0.data(), s1.data(), s2.data(), s3.data(), t, out.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ref = s0[i] + t * (s1[i] + t * (s2[i] + t * s3[i]));
    EXPECT_NEAR(out[i], ref, 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimdKernelSize,
                         ::testing::Values(0, 1, 7, 8, 9, 16, 63, 100, 1024));

}  // namespace
}  // namespace swraman::simd
