#include "common/vec3.hpp"

#include <gtest/gtest.h>

namespace swraman {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 0.0);
  EXPECT_DOUBLE_EQ(s.y, 2.5);
  EXPECT_DOUBLE_EQ(s.z, 5.0);
  const Vec3 d = a - b;
  EXPECT_DOUBLE_EQ(d.x, 2.0);
  const Vec3 m = 2.0 * a;
  EXPECT_DOUBLE_EQ(m.z, 6.0);
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 ex{1.0, 0.0, 0.0};
  const Vec3 ey{0.0, 1.0, 0.0};
  const Vec3 ez = cross(ex, ey);
  EXPECT_DOUBLE_EQ(ez.z, 1.0);
  EXPECT_DOUBLE_EQ(dot(ex, ey), 0.0);
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
}

TEST(Vec3, IndexAccess) {
  Vec3 v{1.0, 2.0, 3.0};
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(v[i], static_cast<double>(i + 1));
  }
  v[1] = 7.0;
  EXPECT_DOUBLE_EQ(v.y, 7.0);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {0, 3, 4}), 5.0);
}

}  // namespace
}  // namespace swraman
