#include "common/logging.hpp"

#include <thread>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman {
namespace {

TEST(Log, LevelRoundTrip) {
  const log::Level saved = log::level();
  log::set_level(log::Level::Debug);
  EXPECT_EQ(log::level(), log::Level::Debug);
  log::set_level(log::Level::Off);
  EXPECT_EQ(log::level(), log::Level::Off);
  log::set_level(saved);
}

TEST(Log, SuppressedBelowLevel) {
  const log::Level saved = log::level();
  log::set_level(log::Level::Off);
  // Must be a no-op (nothing to assert on stdout here, but it must not
  // crash and must not evaluate into the stream when suppressed).
  log::info("this should be invisible ", 42);
  log::debug("also invisible");
  log::set_level(saved);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    SWRAMAN_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_logging.cpp"), std::string::npos);
  }
}

TEST(ErrorMacros, RequirePassesSilently) {
  EXPECT_NO_THROW(SWRAMAN_REQUIRE(2 + 2 == 4, "math works"));
}

}  // namespace
}  // namespace swraman
