#include "common/logging.hpp"

#include <thread>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman {
namespace {

TEST(Log, LevelRoundTrip) {
  const log::Level saved = log::level();
  log::set_level(log::Level::Debug);
  EXPECT_EQ(log::level(), log::Level::Debug);
  log::set_level(log::Level::Off);
  EXPECT_EQ(log::level(), log::Level::Off);
  log::set_level(saved);
}

TEST(Log, SuppressedBelowLevel) {
  const log::Level saved = log::level();
  log::set_level(log::Level::Off);
  // Must be a no-op (nothing to assert on stdout here, but it must not
  // crash and must not evaluate into the stream when suppressed).
  log::info("this should be invisible ", 42);
  log::debug("also invisible");
  log::set_level(saved);
}

TEST(Log, TimestampFormatIsIso8601Utc) {
  const std::string ts = log::timestamp_utc_now();
  // 2026-08-07T12:34:56.789Z — fixed-width, millisecond precision.
  ASSERT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts.back(), 'Z');
  for (const std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    EXPECT_TRUE(ts[i] >= '0' && ts[i] <= '9') << "position " << i;
  }
}

TEST(Log, TimestampToggleRoundTrip) {
  const bool saved = log::timestamps();
  log::set_timestamps(true);
  EXPECT_TRUE(log::timestamps());
  log::set_timestamps(false);
  EXPECT_FALSE(log::timestamps());
  log::set_timestamps(saved);
}

TEST(Log, RankPrefixRoundTrip) {
  const int saved = log::rank();
  EXPECT_LT(saved, 0);  // default: no rank prefix
  log::set_rank(3);
  EXPECT_EQ(log::rank(), 3);
  log::info("rank-prefixed line");  // must not crash with the prefix on
  log::set_rank(saved);
}

TEST(Timer, NanosecondsIsMonotonic) {
  Timer t;
  const std::uint64_t a = t.nanoseconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t b = t.nanoseconds();
  EXPECT_GE(b, a + 1000000u);  // at least 1 ms advanced
  EXPECT_NEAR(t.seconds(), 1e-9 * static_cast<double>(t.nanoseconds()),
              1e-3);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    SWRAMAN_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_logging.cpp"), std::string::npos);
  }
}

TEST(ErrorMacros, RequirePassesSilently) {
  EXPECT_NO_THROW(SWRAMAN_REQUIRE(2 + 2 == 4, "math works"));
}

}  // namespace
}  // namespace swraman
