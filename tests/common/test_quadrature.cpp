#include "common/quadrature.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman {
namespace {

double apply(const Quadrature1D& q, double (*f)(double)) {
  double s = 0.0;
  for (std::size_t i = 0; i < q.nodes.size(); ++i)
    s += q.weights[i] * f(q.nodes[i]);
  return s;
}

class GaussLegendreOrder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussLegendreOrder, IntegratesPolynomialsExactly) {
  const std::size_t n = GetParam();
  const Quadrature1D q = gauss_legendre(n);
  // Exact for all monomials up to degree 2n-1.
  for (std::size_t deg = 0; deg <= 2 * n - 1; ++deg) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      s += q.weights[i] * std::pow(q.nodes[i], static_cast<double>(deg));
    const double exact = (deg % 2 == 0)
                             ? 2.0 / (static_cast<double>(deg) + 1.0)
                             : 0.0;
    EXPECT_NEAR(s, exact, 1e-12) << "n=" << n << " deg=" << deg;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLegendreOrder,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(GaussLegendre, WeightsSumToIntervalLength) {
  const Quadrature1D q = gauss_legendre(24);
  double s = 0.0;
  for (double w : q.weights) s += w;
  EXPECT_NEAR(s, 2.0, 1e-13);
}

TEST(GaussChebyshev2, IntegratesSmoothFunction) {
  const Quadrature1D q = gauss_chebyshev2(200);
  EXPECT_NEAR(apply(q, [](double x) { return x * x; }), 2.0 / 3.0, 1e-4);
  EXPECT_NEAR(apply(q, [](double x) { return std::cos(x); }),
              2.0 * std::sin(1.0), 1e-4);
}

TEST(BeckeRadial, NormalizesGaussian) {
  // integral exp(-r^2) r^2 dr = sqrt(pi)/4.
  const Quadrature1D q = becke_radial(80, 1.0);
  double s = 0.0;
  for (std::size_t i = 0; i < q.nodes.size(); ++i)
    s += q.weights[i] * std::exp(-q.nodes[i] * q.nodes[i]);
  EXPECT_NEAR(s, kSqrtPi / 4.0, 1e-8);
}

TEST(BeckeRadial, NormalizesSlaterDensity) {
  // integral exp(-2r) r^2 dr = 1/4.
  const Quadrature1D q = becke_radial(80, 1.0);
  double s = 0.0;
  for (std::size_t i = 0; i < q.nodes.size(); ++i)
    s += q.weights[i] * std::exp(-2.0 * q.nodes[i]);
  EXPECT_NEAR(s, 0.25, 1e-8);
}

}  // namespace
}  // namespace swraman
