#include "common/spline.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman {
namespace {

TEST(CubicSpline, ReproducesKnotValues) {
  std::vector<double> x{0.0, 0.5, 1.3, 2.0, 3.7};
  std::vector<double> y{1.0, -2.0, 0.5, 4.0, -1.0};
  CubicSpline s(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s.value(x[i]), y[i], 1e-12);
  }
}

TEST(CubicSpline, InterpolatesSmoothFunctionAccurately) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 100; ++i) {
    const double xi = static_cast<double>(i) / 100.0 * kTwoPi;
    x.push_back(xi);
    y.push_back(std::sin(xi));
  }
  CubicSpline s(x, y);
  for (double t = 0.05; t < kTwoPi; t += 0.173) {
    EXPECT_NEAR(s.value(t), std::sin(t), 1e-6);
    EXPECT_NEAR(s.derivative(t), std::cos(t), 1e-4);
  }
}

TEST(CubicSpline, SecondDerivativeIsContinuousAtKnots) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{0.0, 1.0, 0.0, -1.0, 0.0};
  CubicSpline s(x, y);
  for (double knot : {1.0, 2.0, 3.0}) {
    EXPECT_NEAR(s.second_derivative(knot - 1e-9),
                s.second_derivative(knot + 1e-9), 1e-6);
  }
}

TEST(CubicSpline, RejectsBadInput) {
  EXPECT_THROW(CubicSpline({1.0}, {1.0}), Error);
  EXPECT_THROW(CubicSpline({0.0, 0.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(CubicSpline({0.0, 1.0}, {1.0}), Error);
}

TEST(IndexSpline, MatchesCubicSplineOnIntegerKnots) {
  std::vector<double> y{2.0, -1.0, 0.5, 3.0, 1.0, -2.0};
  IndexSpline is(y);
  std::vector<double> x(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) x[i] = static_cast<double>(i);
  CubicSpline cs(x, y);
  for (double t = 0.0; t <= 5.0; t += 0.37) {
    EXPECT_NEAR(is.value(t), cs.value(t), 1e-12);
    EXPECT_NEAR(is.derivative(t), cs.derivative(t), 1e-10);
    EXPECT_NEAR(is.second_derivative(t), cs.second_derivative(t), 1e-10);
  }
}

TEST(IndexSpline, CoefficientLayoutMatchesEvaluation) {
  std::vector<double> y{1.0, 4.0, 2.0, 0.0, 5.0};
  IndexSpline is(y);
  const std::vector<double>& c = is.coefficients();
  ASSERT_EQ(c.size(), 4 * (y.size() - 1));
  const double t = 2.3;
  const std::size_t i = 2;
  const double u = t - static_cast<double>(i);
  const double manual =
      c[4 * i] + u * (c[4 * i + 1] + u * (c[4 * i + 2] + u * c[4 * i + 3]));
  EXPECT_NEAR(is.value(t), manual, 1e-14);
}

TEST(IndexSpline, ClampsOutOfRange) {
  std::vector<double> y{1.0, 2.0, 3.0};
  IndexSpline is(y);
  EXPECT_NEAR(is.value(-5.0), 1.0, 1e-12);
  EXPECT_NEAR(is.value(99.0), 3.0, 1e-12);
}

TEST(Tridiagonal, SolvesKnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
  std::vector<double> a{0.0, 1.0, 1.0};
  std::vector<double> b{2.0, 2.0, 2.0};
  std::vector<double> c{1.0, 1.0, 0.0};
  std::vector<double> d{4.0, 8.0, 8.0};
  solve_tridiagonal(a, b, c, d);
  EXPECT_NEAR(d[0], 1.0, 1e-12);
  EXPECT_NEAR(d[1], 2.0, 1e-12);
  EXPECT_NEAR(d[2], 3.0, 1e-12);
}

}  // namespace
}  // namespace swraman
// -- appended coverage for the spline extensions used by the multipole
// solver (cumulative integration) and the CSI kernel (interval
// coefficients). Kept in the anonymous namespace of this TU via reopening.

namespace swraman {
namespace {

TEST(CubicSpline, CumulativeIntegralMatchesAnalytic) {
  // integral of sin on [0, pi]: cumulative = 1 - cos(x).
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 60; ++i) {
    const double xi = kPi * static_cast<double>(i) / 60.0;
    x.push_back(xi);
    y.push_back(std::sin(xi));
  }
  const CubicSpline s(x, y);
  const std::vector<double> cum = s.cumulative_at_knots();
  ASSERT_EQ(cum.size(), x.size());
  EXPECT_DOUBLE_EQ(cum[0], 0.0);
  for (std::size_t i = 0; i < x.size(); i += 7) {
    EXPECT_NEAR(cum[i], 1.0 - std::cos(x[i]), 1e-7) << "x=" << x[i];
  }
  EXPECT_NEAR(cum.back(), 2.0, 1e-7);
}

TEST(CubicSpline, CumulativeBeatsTrapezoidOnCoarseMesh) {
  // Nonuniform coarse mesh over a Gaussian: the spline integral must be
  // far closer to sqrt(pi)/2 than the trapezoid estimate.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 14; ++i) {
    const double xi = 4.0 * std::pow(static_cast<double>(i) / 14.0, 1.5);
    x.push_back(xi);
    y.push_back(std::exp(-xi * xi));
  }
  const CubicSpline s(x, y);
  const double spline_val = s.cumulative_at_knots().back();
  double trap = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    trap += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  const double exact = kSqrtPi / 2.0;
  EXPECT_LT(std::abs(spline_val - exact), 0.2 * std::abs(trap - exact));
  EXPECT_NEAR(spline_val, exact, 2e-4);
}

TEST(CubicSpline, IntervalCoefficientsReproduceValues) {
  std::vector<double> x{0.0, 0.7, 1.1, 2.4, 3.0};
  std::vector<double> y{1.0, -0.3, 0.9, 2.0, -1.0};
  const CubicSpline s(x, y);
  double c[4];
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    s.interval_coefficients(i, c);
    for (double frac : {0.0, 0.31, 0.77, 1.0}) {
      const double xx = x[i] + frac * (x[i + 1] - x[i]);
      const double u = xx - x[i];
      const double poly = c[0] + u * (c[1] + u * (c[2] + u * c[3]));
      EXPECT_NEAR(poly, s.value(xx), 1e-12) << "interval " << i;
    }
  }
  EXPECT_EQ(s.interval_of(0.8), 1u);
  EXPECT_EQ(s.interval_of(-5.0), 0u);
  EXPECT_EQ(s.interval_of(99.0), x.size() - 2);
}

}  // namespace
}  // namespace swraman
