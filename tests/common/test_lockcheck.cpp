#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/lockcheck.hpp"

// Seeded-violation suite for the host-concurrency contract checker
// (DESIGN.md §14): every lock.* rule is deliberately triggered and must
// be caught with file:line provenance; the legal idioms (kAllowsBlocking
// control-plane locks, timed predicate-less parks) must stay clean.

namespace swraman {
namespace {

using lockcheck::CheckedCondVar;
using lockcheck::CheckedLock;
using lockcheck::CheckedMutex;
using lockcheck::ScopedChecking;

TEST(Lockcheck, AbBaOrderCycleReportedWithBothSites) {
  const ScopedChecking checking;
  CheckedMutex a("test.order.a");
  CheckedMutex b("test.order.b");
  {
    // Establish A -> B.
    const CheckedLock la(a);
    const CheckedLock lb(b);
  }
  // B -> A closes the cycle — a potential deadlock even though this
  // single-threaded run can never actually wedge.
  std::string what;
  try {
    const CheckedLock lb(b);
    const CheckedLock la(a);
    FAIL() << "cycle not reported";
  } catch (const CheckViolation& v) {
    EXPECT_EQ(v.rule(), lockcheck::kRuleOrderCycle);
    what = v.what();
  }
  // The report names both lock classes and carries the acquisition
  // provenance of this file for the forward and the closing edge.
  EXPECT_NE(what.find("test.order.a"), std::string::npos) << what;
  EXPECT_NE(what.find("test.order.b"), std::string::npos) << what;
  EXPECT_NE(what.find("test_lockcheck.cpp"), std::string::npos) << what;
  EXPECT_EQ(lockcheck::violation_counts()[lockcheck::kRuleOrderCycle], 1u);
}

TEST(Lockcheck, ConsistentOrderAcrossManyLocksStaysClean) {
  const ScopedChecking checking;
  CheckedMutex a("test.chain.a");
  CheckedMutex b("test.chain.b");
  CheckedMutex c("test.chain.c");
  for (int i = 0; i < 3; ++i) {
    const CheckedLock la(a);
    const CheckedLock lb(b);
    const CheckedLock lc(c);
  }
  {
    // Skipping a level is fine — only reversing order is a cycle.
    const CheckedLock la(a);
    const CheckedLock lc(c);
  }
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Lockcheck, SameClassNestingReportsImmediately) {
  const ScopedChecking checking;
  // Two *instances* of one class (same construction site via a helper):
  // nesting them is self-deadlock-by-class, reported on acquisition.
  struct Deque {
    CheckedMutex mutex{"test.same_class"};
  };
  Deque d1;
  Deque d2;
  const CheckedLock l1(d1.mutex);
  EXPECT_THROW(static_cast<void>(CheckedLock(d2.mutex)), CheckViolation);
  EXPECT_EQ(lockcheck::violation_counts()[lockcheck::kRuleOrderCycle], 1u);
}

TEST(Lockcheck, BlockingUnderLockReported) {
  const ScopedChecking checking;
  CheckedMutex m("test.blocking.strict");
  std::string what;
  try {
    const CheckedLock lock(m);
    lockcheck::blocking_call("wal.append_fsync");
    FAIL() << "blocking call under strict lock not reported";
  } catch (const CheckViolation& v) {
    EXPECT_EQ(v.rule(), lockcheck::kRuleBlockingUnderLock);
    what = v.what();
  }
  EXPECT_NE(what.find("wal.append_fsync"), std::string::npos) << what;
  EXPECT_NE(what.find("test.blocking.strict"), std::string::npos) << what;
  EXPECT_NE(what.find("test_lockcheck.cpp"), std::string::npos) << what;
}

TEST(Lockcheck, BlockingUnderAllowsBlockingLockIsClean) {
  const ScopedChecking checking;
  CheckedMutex m("test.blocking.control_plane",
                 CheckedMutex::kAllowsBlocking);
  {
    const CheckedLock lock(m);
    lockcheck::blocking_call("shard.join");
  }
  // Off-lock blocking is always fine.
  lockcheck::blocking_call("wal.append_fsync");
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Lockcheck, CondvarUntimedWaitWithoutPredicateReported) {
  const ScopedChecking checking;
  CheckedMutex m("test.condvar.mutex");
  CheckedCondVar cv;
  CheckedLock lock(m);
  EXPECT_THROW(cv.wait(lock), CheckViolation);
  EXPECT_EQ(
      lockcheck::violation_counts()[lockcheck::kRuleCondvarNoPredicate],
      1u);
  // The violation is reported before the wait parks, so the lock is
  // still held and usable.
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Lockcheck, CondvarTimedWaitWithoutPredicateIsLegal) {
  const ScopedChecking checking;
  CheckedMutex m("test.condvar.timed");
  CheckedCondVar cv;
  CheckedLock lock(m);
  // The worker pool's bounded idle park: spurious wakeup or missed
  // notify costs at most the timeout.
  static_cast<void>(cv.wait_for(lock, std::chrono::milliseconds(1)));
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Lockcheck, CondvarPredicateWaitReacquiresBookkeeping) {
  const ScopedChecking checking;
  CheckedMutex m("test.condvar.pred");
  CheckedCondVar cv;
  bool ready = false;
  std::thread t([&] {
    {
      const CheckedLock lock(m);
      ready = true;
    }
    cv.notify_one();
  });
  {
    CheckedLock lock(m);
    cv.wait(lock, [&] { return ready; });
    // After the wait returns the instrumented held set must agree with
    // reality: the mutex is held again.
    EXPECT_TRUE(lockcheck::is_held(&m));
  }
  t.join();
  EXPECT_FALSE(lockcheck::is_held(&m));
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Lockcheck, GuardContractReportsUnheldAndAcceptsHeld) {
  const ScopedChecking checking;
  CheckedMutex guard("test.guard");
  std::string what;
  try {
    lockcheck::assert_held(&guard, "FairShareScheduler::admit");
    FAIL() << "unheld guard not reported";
  } catch (const CheckViolation& v) {
    EXPECT_EQ(v.rule(), lockcheck::kRuleGuardUnheld);
    what = v.what();
  }
  EXPECT_NE(what.find("FairShareScheduler::admit"), std::string::npos)
      << what;
  {
    const CheckedLock lock(guard);
    lockcheck::assert_held(&guard, "FairShareScheduler::admit");  // clean
  }
  // A null guard (component not attached to a service) checks nothing.
  lockcheck::assert_held(nullptr, "unattached");
  EXPECT_EQ(lockcheck::violation_counts()[lockcheck::kRuleGuardUnheld],
            1u);
}

TEST(Lockcheck, DisabledModeChecksNothing) {
  const ScopedChecking checking(false);
  CheckedMutex a("test.off.a");
  CheckedMutex b("test.off.b");
  {
    const CheckedLock la(a);
    const CheckedLock lb(b);
    lockcheck::blocking_call("wal.append_fsync");
    lockcheck::assert_held(nullptr, "x");
  }
  {
    const CheckedLock lb(b);
    const CheckedLock la(a);  // reversed — ignored while disabled
  }
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Lockcheck, SummaryJsonCarriesRulesAndSites) {
  const ScopedChecking checking;
  CheckedMutex a("test.summary.a");
  CheckedMutex b("test.summary.b");
  {
    const CheckedLock la(a);
    const CheckedLock lb(b);
  }
  try {
    const CheckedLock lb(b);
    const CheckedLock la(a);
  } catch (const CheckViolation&) {
  }
  const std::string json = lockcheck::summary_json();
  EXPECT_NE(json.find("\"schema\":\"swraman-lockcheck-v1\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lock.order_cycle\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.summary.a\""), std::string::npos) << json;
  EXPECT_NE(json.find("test_lockcheck.cpp"), std::string::npos) << json;
}

TEST(Lockcheck, ScopedCheckingIsolatesCases) {
  {
    const ScopedChecking checking;
    CheckedMutex m("test.isolation");
    try {
      const CheckedLock lock(m);
      lockcheck::blocking_call("fsync");
    } catch (const CheckViolation&) {
    }
    EXPECT_EQ(lockcheck::total_violations(), 1u);
  }
  // Destructor cleared the tally and restored the previous mode.
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Lockcheck, OrderEdgesAreSharedAcrossThreads) {
  const ScopedChecking checking;
  CheckedMutex a("test.xthread.a");
  CheckedMutex b("test.xthread.b");
  std::thread t([&] {
    const CheckedLock la(a);
    const CheckedLock lb(b);
  });
  t.join();
  // The reversed order on *this* thread closes the cycle against the
  // edge the other thread recorded — the classic two-thread AB/BA
  // deadlock, caught without the fatal interleaving ever running.
  bool caught = false;
  try {
    const CheckedLock lb(b);
    const CheckedLock la(a);
  } catch (const CheckViolation& v) {
    caught = true;
    EXPECT_EQ(v.rule(), lockcheck::kRuleOrderCycle);
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace swraman
