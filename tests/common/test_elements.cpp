#include "common/elements.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman {
namespace {

TEST(Elements, SymbolsAndMasses) {
  EXPECT_EQ(element(1).symbol, "H");
  EXPECT_EQ(element(6).symbol, "C");
  EXPECT_EQ(element(8).symbol, "O");
  EXPECT_EQ(element(16).symbol, "S");
  EXPECT_EQ(element(50).symbol, "Sn");
  EXPECT_NEAR(element(6).mass_amu, 12.011, 1e-3);
  EXPECT_NEAR(element(14).mass_amu, 28.085, 1e-3);
}

TEST(Elements, AtomicNumberLookup) {
  EXPECT_EQ(atomic_number("H"), 1);
  EXPECT_EQ(atomic_number("Si"), 14);
  EXPECT_EQ(atomic_number("Te"), 52);
  EXPECT_THROW(atomic_number("Xx"), Error);
}

TEST(Elements, RangeChecks) {
  EXPECT_THROW(element(0), Error);
  EXPECT_THROW(element(55), Error);
  EXPECT_NO_THROW(element(54));
}

class ElementConfig : public ::testing::TestWithParam<int> {};

TEST_P(ElementConfig, ConfigurationSumsToZ) {
  const int z = GetParam();
  const ElementData& e = element(z);
  double total = 0.0;
  for (const Shell& s : e.configuration) {
    EXPECT_GT(s.occ, 0.0);
    EXPECT_LE(s.occ, 2.0 * (2 * s.l + 1) + 1e-12);
    EXPECT_GE(s.n, s.l + 1);
    total += s.occ;
  }
  EXPECT_NEAR(total, static_cast<double>(z), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllSupported, ElementConfig,
                         ::testing::Range(1, 55));

TEST(Elements, KnownConfigurations) {
  // Carbon: 1s2 2s2 2p2.
  const auto& c = element(6).configuration;
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2].l, 1);
  EXPECT_DOUBLE_EQ(c[2].occ, 2.0);

  // Copper exception: 3d10 4s1.
  double cu_4s = -1.0;
  double cu_3d = -1.0;
  for (const Shell& s : element(29).configuration) {
    if (s.n == 4 && s.l == 0) cu_4s = s.occ;
    if (s.n == 3 && s.l == 2) cu_3d = s.occ;
  }
  EXPECT_DOUBLE_EQ(cu_4s, 1.0);
  EXPECT_DOUBLE_EQ(cu_3d, 10.0);

  // Palladium exception: 4d10 5s0.
  for (const Shell& s : element(46).configuration) {
    EXPECT_FALSE(s.n == 5 && s.l == 0) << "Pd must have no 5s shell";
  }
}

TEST(Elements, ValenceCounts) {
  EXPECT_DOUBLE_EQ(valence_electron_count(1), 1.0);   // H: 1s1
  EXPECT_DOUBLE_EQ(valence_electron_count(6), 4.0);   // C: 2s2 2p2
  EXPECT_DOUBLE_EQ(valence_electron_count(14), 4.0);  // Si: 3s2 3p2
  EXPECT_DOUBLE_EQ(valence_electron_count(8), 6.0);   // O: 2s2 2p4
}

TEST(Elements, BraggRadiiPositiveAndOrdered) {
  for (int z = 1; z <= 54; ++z) {
    EXPECT_GT(element(z).bragg_radius_bohr, 0.0);
  }
  // O smaller than C smaller than Si.
  EXPECT_LT(element(8).bragg_radius_bohr, element(6).bragg_radius_bohr);
  EXPECT_LT(element(6).bragg_radius_bohr, element(14).bragg_radius_bohr);
}

}  // namespace
}  // namespace swraman
