#include <gtest/gtest.h>

#include <vector>

#include "common/backoff.hpp"

namespace swraman {
namespace {

TEST(Backoff, ExponentialScheduleDoublesToCap) {
  BackoffOptions o;
  o.base_s = 1e-4;
  o.cap_s = 0.05;
  o.multiplier = 2.0;
  Backoff b(o);
  EXPECT_DOUBLE_EQ(b.next(), 1e-4);
  EXPECT_DOUBLE_EQ(b.next(), 2e-4);
  EXPECT_DOUBLE_EQ(b.next(), 4e-4);
  EXPECT_DOUBLE_EQ(b.next(), 8e-4);
  for (int k = 0; k < 16; ++k) b.next();
  EXPECT_DOUBLE_EQ(b.next(), o.cap_s);  // saturated
  EXPECT_EQ(b.attempt(), 21);
}

TEST(Backoff, ExponentialResetRestartsSchedule) {
  BackoffOptions o;
  o.base_s = 0.01;
  o.cap_s = 1.0;
  Backoff b(o);
  b.next();
  b.next();
  b.reset();
  EXPECT_EQ(b.attempt(), 0);
  EXPECT_DOUBLE_EQ(b.next(), 0.01);
}

TEST(Backoff, DecorrelatedJitterStaysInRange) {
  BackoffOptions o;
  o.base_s = 1e-3;
  o.cap_s = 0.1;
  o.decorrelated = true;
  o.seed = 42;
  Backoff b(o);
  for (int k = 0; k < 100; ++k) {
    const double d = b.next();
    EXPECT_GE(d, o.base_s);
    EXPECT_LE(d, o.cap_s);
  }
}

TEST(Backoff, DecorrelatedJitterIsDeterministicPerSeed) {
  BackoffOptions o;
  o.base_s = 1e-3;
  o.cap_s = 0.5;
  o.decorrelated = true;
  o.seed = 2026;
  Backoff a(o);
  Backoff b(o);
  std::vector<double> seq_a;
  std::vector<double> seq_b;
  for (int k = 0; k < 32; ++k) {
    seq_a.push_back(a.next());
    seq_b.push_back(b.next());
  }
  EXPECT_EQ(seq_a, seq_b);  // same seed, bitwise same schedule

  // reset() replays the identical stream from the start.
  a.reset();
  for (int k = 0; k < 32; ++k) EXPECT_DOUBLE_EQ(a.next(), seq_a[k]);

  // A different seed decorrelates the schedule.
  o.seed = 2027;
  Backoff c(o);
  bool any_diff = false;
  for (int k = 0; k < 32; ++k) any_diff = any_diff || c.next() != seq_a[k];
  EXPECT_TRUE(any_diff);
}

TEST(Backoff, DecorrelatedGrowsFromBaseNotUnbounded) {
  // prev * 3 growth means early delays cluster near base and the cap
  // bounds the tail; the mean over a long run must sit strictly inside
  // (base, cap).
  BackoffOptions o;
  o.base_s = 1e-3;
  o.cap_s = 0.2;
  o.decorrelated = true;
  o.seed = 7;
  Backoff b(o);
  double sum = 0.0;
  for (int k = 0; k < 200; ++k) sum += b.next();
  const double mean = sum / 200.0;
  EXPECT_GT(mean, o.base_s);
  EXPECT_LT(mean, o.cap_s);
}

}  // namespace
}  // namespace swraman
