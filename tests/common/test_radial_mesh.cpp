#include "common/radial_mesh.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman {
namespace {

TEST(RadialMesh, EndpointsAndMonotonicity) {
  RadialMesh mesh(1e-5, 20.0, 400);
  EXPECT_NEAR(mesh.r_min(), 1e-5, 1e-18);
  EXPECT_NEAR(mesh.r_max(), 20.0, 1e-10);
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    EXPECT_GT(mesh.r(i), mesh.r(i - 1));
  }
}

TEST(RadialMesh, FractionalIndexInvertsRadius) {
  RadialMesh mesh(1e-4, 30.0, 300);
  for (std::size_t i = 0; i < mesh.size(); i += 17) {
    EXPECT_NEAR(mesh.fractional_index(mesh.r(i)), static_cast<double>(i),
                1e-9);
  }
}

TEST(RadialMesh, IntegratesExponentialDecay) {
  // integral_0^inf exp(-r) dr = 1; the mesh misses only [0, r_min) and
  // (r_max, inf) tails.
  RadialMesh mesh(1e-6, 40.0, 600);
  std::vector<double> f(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) f[i] = std::exp(-mesh.r(i));
  EXPECT_NEAR(mesh.integrate(f), 1.0, 1e-5);
}

TEST(RadialMesh, IntegratesHydrogenDensityNorm) {
  // n(r) = (1/pi) exp(-2r); integral n * 4 pi r^2 dr = 1.
  RadialMesh mesh = RadialMesh::for_nuclear_charge(1.0);
  std::vector<double> f(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const double r = mesh.r(i);
    f[i] = 4.0 * r * r * std::exp(-2.0 * r);
  }
  EXPECT_NEAR(mesh.integrate(f), 1.0, 1e-6);
}

TEST(RadialMesh, RejectsBadInput) {
  EXPECT_THROW(RadialMesh(0.0, 1.0, 10), Error);
  EXPECT_THROW(RadialMesh(1.0, 0.5, 10), Error);
  EXPECT_THROW(RadialMesh(1e-3, 1.0, 1), Error);
}

}  // namespace
}  // namespace swraman
