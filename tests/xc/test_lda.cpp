#include "xc/lda.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman::xc {
namespace {

TEST(SlaterExchange, KnownValueAtUnitDensity) {
  const XcPoint p = slater_exchange(1.0);
  const double cx = -0.75 * std::cbrt(3.0 / kPi);
  EXPECT_NEAR(p.eps, cx, 1e-14);
  EXPECT_NEAR(p.v, 4.0 / 3.0 * cx, 1e-14);
}

TEST(Pw92, HighDensityLimitIsLogarithmic) {
  // For rs -> 0, ec -> 2A(ln rs - ...); just verify the known reference
  // value ec(rs=1) ~= -0.0598 Ha and ec(rs=2) ~= -0.0448 Ha (PW92 table).
  const double n_rs1 = 3.0 / (kFourPi);  // rs = 1
  const double n_rs2 = 3.0 / (kFourPi * 8.0);
  EXPECT_NEAR(pw92_correlation(n_rs1).eps, -0.0598, 2e-3);
  EXPECT_NEAR(pw92_correlation(n_rs2).eps, -0.0448, 2e-3);
}

TEST(Lda, ZeroDensityIsZero) {
  const XcPoint p = evaluate(Functional::LdaPw92, 0.0);
  EXPECT_DOUBLE_EQ(p.eps, 0.0);
  EXPECT_DOUBLE_EQ(p.v, 0.0);
  EXPECT_DOUBLE_EQ(p.f, 0.0);
}

class XcDensity : public ::testing::TestWithParam<double> {};

TEST_P(XcDensity, PotentialMatchesFiniteDifferenceOfEnergy) {
  const double n = GetParam();
  const double h = 1e-6 * n;
  for (Functional f : {Functional::SlaterX, Functional::LdaPw92}) {
    const double ep = (n + h) * evaluate(f, n + h).eps;
    const double em = (n - h) * evaluate(f, n - h).eps;
    const double v_fd = (ep - em) / (2.0 * h);
    EXPECT_NEAR(evaluate(f, n).v, v_fd, 1e-6 * std::abs(v_fd) + 1e-10)
        << "n=" << n;
  }
}

TEST_P(XcDensity, KernelMatchesFiniteDifferenceOfPotential) {
  const double n = GetParam();
  const double h = 1e-6 * n;
  for (Functional f : {Functional::SlaterX, Functional::LdaPw92}) {
    const double vp = evaluate(f, n + h).v;
    const double vm = evaluate(f, n - h).v;
    const double f_fd = (vp - vm) / (2.0 * h);
    EXPECT_NEAR(evaluate(f, n).f, f_fd,
                1e-5 * std::abs(f_fd) + 1e-10)
        << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, XcDensity,
                         ::testing::Values(1e-6, 1e-4, 1e-2, 0.1, 0.5, 1.0,
                                           5.0, 50.0));

TEST(Lda, ExchangeDominatesAtHighDensity) {
  const XcPoint x = slater_exchange(100.0);
  const XcPoint c = pw92_correlation(100.0);
  EXPECT_LT(x.eps, c.eps);  // both negative, exchange larger in magnitude
  EXPECT_GT(std::abs(x.eps), 5.0 * std::abs(c.eps));
}

TEST(Lda, AllPiecesNegativeForPositiveDensity) {
  for (double n : {1e-3, 0.1, 1.0, 10.0}) {
    EXPECT_LT(slater_exchange(n).eps, 0.0);
    EXPECT_LT(slater_exchange(n).v, 0.0);
    EXPECT_LT(pw92_correlation(n).eps, 0.0);
    EXPECT_LT(pw92_correlation(n).v, 0.0);
  }
}

}  // namespace
}  // namespace swraman::xc
