#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/molecules.hpp"
#include "obs/obs.hpp"
#include "parallel/comm.hpp"
#include "scf/scf_engine.hpp"

// Determinism of the performance accounting: two runs of the same SCF +
// allreduce workload — same seed and inputs, but freely different thread
// interleavings — must produce bit-identical modeled-cycle and event
// counters. Wall-clock counters cannot be deterministic by nature; by
// convention they carry a "_ns" suffix and are excluded. Everything else
// (calls, bytes, iterations, modeled cycles) is integer-valued, and
// integer-valued doubles summed in any order through the counters' CAS
// loop are exact, so the comparison is equality, not tolerance.
//
// This suite runs under the TSan stage of scripts/tier1.sh (test_parallel),
// so the interleaving claim is exercised under an instrumented scheduler.

namespace swraman::parallel {
namespace {

bool is_wall_clock(const std::string& name) {
  return name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

std::map<std::string, double> deterministic_counters() {
  std::map<std::string, double> out;
  for (const auto& [name, value] :
       obs::Registry::instance().counter_values()) {
    if (!is_wall_clock(name)) out[name] = value;
  }
  return out;
}

// One fixed SCF + allreduce workload: 3 ranks, hierarchical blocking
// reductions plus non-blocking density reductions, capped iterations.
void run_workload() {
  const auto mol = molecules::h2();
  scf::ScfOptions options;
  options.max_iterations = 6;  // fixed work, convergence not required
  run_spmd(3, [&](Communicator& comm) {
    scf::GridPartition part;
    part.rank = comm.rank();
    part.n_ranks = comm.size();
    part.allreduce = [&comm](double* data, std::size_t n) {
      std::vector<double> buf(data, data + n);
      comm.allreduce(buf, AllreduceAlgorithm::Hierarchical);
      std::copy(buf.begin(), buf.end(), data);
    };
    part.iallreduce = [&comm](double* data, std::size_t n) {
      std::vector<double> buf(data, data + n);
      auto req = std::make_shared<AllreduceRequest>(
          comm.iallreduce(std::move(buf), AllreduceAlgorithm::Auto));
      return [req, data]() {
        const std::vector<double> out = req->wait();
        std::copy(out.begin(), out.end(), data);
      };
    };
    scf::ScfEngine engine(mol, options, part);
    (void)engine.solve();
  });
}

TEST(Determinism, CountersIdenticalAcrossRuns) {
  obs::Registry::instance().reset_for_testing();
  obs::set_enabled(true);

  run_workload();
  const std::map<std::string, double> first = deterministic_counters();

  obs::Registry::instance().reset_for_testing();
  run_workload();
  const std::map<std::string, double> second = deterministic_counters();

  obs::set_enabled(false);
  obs::Registry::instance().reset_for_testing();

  // The workload must actually have exercised the paths under test.
  ASSERT_TRUE(first.count("comm.allreduce.calls"));
  ASSERT_TRUE(first.count("comm.allreduce.modeled_cycles"));
  ASSERT_TRUE(first.count("comm.iallreduce.calls"));
  ASSERT_GT(first.at("comm.allreduce.modeled_cycles"), 0.0);

  ASSERT_EQ(first.size(), second.size());
  for (const auto& [name, value] : first) {
    ASSERT_TRUE(second.count(name)) << "counter missing in run 2: " << name;
    // Bitwise equality — the determinism contract.
    EXPECT_EQ(value, second.at(name)) << "counter diverged: " << name;
  }
}

TEST(Determinism, ModeledCyclesAreIntegerValued) {
  obs::Registry::instance().reset_for_testing();
  obs::set_enabled(true);
  run_spmd(4, [](Communicator& comm) {
    std::vector<double> data(1000, static_cast<double>(comm.rank()));
    comm.allreduce(data, AllreduceAlgorithm::Hierarchical);
    comm.allreduce(data, AllreduceAlgorithm::ReduceScatterAllgather);
  });
  obs::set_enabled(false);
  const auto counters = obs::Registry::instance().counter_values();
  obs::Registry::instance().reset_for_testing();
  const double cycles = counters.at("comm.allreduce.modeled_cycles");
  EXPECT_EQ(cycles, std::floor(cycles))
      << "modeled cycles must be whole so counter sums stay exact";
  EXPECT_GT(cycles, 0.0);
}

}  // namespace
}  // namespace swraman::parallel
