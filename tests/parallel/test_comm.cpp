#include "parallel/comm.hpp"

#include <atomic>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::parallel {
namespace {

TEST(Spmd, RunsAllRanks) {
  std::atomic<int> count{0};
  run_spmd(7, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 7u);
    EXPECT_LT(comm.rank(), 7u);
    ++count;
  });
  EXPECT_EQ(count.load(), 7);
}

TEST(Spmd, PropagatesExceptions) {
  EXPECT_THROW(run_spmd(3,
                        [](Communicator& comm) {
                          if (comm.rank() == 1) {
                            throw Error("rank 1 failed");
                          }
                        }),
               Error);
}

TEST(Comm, PointToPoint) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, {1.0, 2.0, 3.0}, 5);
      const std::vector<double> back = comm.recv(1, 6);
      EXPECT_EQ(back.size(), 1u);
      EXPECT_DOUBLE_EQ(back[0], 42.0);
    } else {
      const std::vector<double> msg = comm.recv(0, 5);
      EXPECT_EQ(msg.size(), 3u);
      EXPECT_DOUBLE_EQ(msg[2], 3.0);
      comm.send(0, {42.0}, 6);
    }
  });
}

TEST(Comm, Broadcast) {
  run_spmd(5, [](Communicator& comm) {
    std::vector<double> data;
    if (comm.rank() == 2) data = {3.5, -1.0};
    comm.broadcast(data, 2);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_DOUBLE_EQ(data[0], 3.5);
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_spmd(6, [&](Communicator& comm) {
    ++before;
    comm.barrier();
    if (before.load() != 6) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

struct AllreduceCase {
  AllreduceAlgorithm algo;
  std::size_t ranks;
  std::size_t n;
};

class AllreduceSweep : public ::testing::TestWithParam<AllreduceCase> {};

TEST_P(AllreduceSweep, MatchesSerialSum) {
  const AllreduceCase c = GetParam();
  // Reference: sum over ranks of deterministic pseudo-random data.
  std::vector<std::vector<double>> inputs(c.ranks);
  std::vector<double> expected(c.n, 0.0);
  for (std::size_t r = 0; r < c.ranks; ++r) {
    std::mt19937 rng(static_cast<unsigned>(97 * r + c.n));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    inputs[r].resize(c.n);
    for (std::size_t i = 0; i < c.n; ++i) {
      inputs[r][i] = dist(rng);
      expected[i] += inputs[r][i];
    }
  }
  run_spmd(c.ranks, [&](Communicator& comm) {
    std::vector<double> data = inputs[comm.rank()];
    comm.allreduce(data, c.algo);
    ASSERT_EQ(data.size(), c.n);
    for (std::size_t i = 0; i < c.n; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-11)
          << "rank " << comm.rank() << " index " << i;
    }
  });
}

std::vector<AllreduceCase> allreduce_cases() {
  std::vector<AllreduceCase> cases;
  for (AllreduceAlgorithm algo :
       {AllreduceAlgorithm::Linear, AllreduceAlgorithm::Ring,
        AllreduceAlgorithm::RecursiveDoubling,
        AllreduceAlgorithm::ReduceScatterAllgather,
        AllreduceAlgorithm::CpePipelined}) {
    for (std::size_t ranks : {1, 2, 3, 4, 5, 8}) {
      for (std::size_t n : {1, 17, 256, 1000}) {
        cases.push_back({algo, ranks, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AllreduceSweep,
                         ::testing::ValuesIn(allreduce_cases()));

TEST(Comm, SplitFormsSubCommunicators) {
  run_spmd(6, [](Communicator& comm) {
    // Two geometry groups of 3 ranks each (paper Fig. 4 level 1).
    const int color = static_cast<int>(comm.rank() / 3);
    Communicator sub = comm.split(color);
    EXPECT_EQ(sub.size(), 3u);
    EXPECT_EQ(sub.rank(), comm.rank() % 3);
    // Group-local allreduce: sums stay within the group.
    std::vector<double> data{static_cast<double>(comm.rank())};
    sub.allreduce(data, AllreduceAlgorithm::Ring);
    const double expected = (color == 0) ? 0.0 + 1.0 + 2.0 : 3.0 + 4.0 + 5.0;
    EXPECT_DOUBLE_EQ(data[0], expected);
  });
}

TEST(Comm, SplitSingletonColors) {
  run_spmd(4, [](Communicator& comm) {
    Communicator sub = comm.split(static_cast<int>(comm.rank()));
    EXPECT_EQ(sub.size(), 1u);
    std::vector<double> v{1.0};
    sub.allreduce(v, AllreduceAlgorithm::RecursiveDoubling);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
  });
}

}  // namespace
}  // namespace swraman::parallel
// -- appended coverage: message ordering and repeated collectives.

namespace swraman::parallel {
namespace {

TEST(Comm, SameTagMessagesAreFifo) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, {1.0}, 9);
      comm.send(1, {2.0}, 9);
      comm.send(1, {3.0}, 9);
    } else {
      EXPECT_DOUBLE_EQ(comm.recv(0, 9)[0], 1.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 9)[0], 2.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 9)[0], 3.0);
    }
  });
}

TEST(Comm, RepeatedAllreducesStayConsistent) {
  run_spmd(4, [](Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      std::vector<double> data(64, static_cast<double>(comm.rank() + round));
      comm.allreduce(data, AllreduceAlgorithm::Ring);
      const double expected = 4.0 * round + 6.0;  // sum over ranks 0..3
      EXPECT_DOUBLE_EQ(data[0], expected) << "round " << round;
      EXPECT_DOUBLE_EQ(data[63], expected);
    }
  });
}

TEST(Comm, NestedSplits) {
  run_spmd(8, [](Communicator& comm) {
    Communicator half = comm.split(static_cast<int>(comm.rank() / 4));
    Communicator quarter = half.split(static_cast<int>(half.rank() / 2));
    EXPECT_EQ(quarter.size(), 2u);
    std::vector<double> v{1.0};
    quarter.allreduce(v, AllreduceAlgorithm::Linear);
    EXPECT_DOUBLE_EQ(v[0], 2.0);
  });
}

}  // namespace
}  // namespace swraman::parallel
