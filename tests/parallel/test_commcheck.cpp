#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/lockcheck.hpp"
#include "parallel/comm.hpp"
#include "parallel/commcheck.hpp"

// Seeded-violation suite for the p2p protocol verifier: every p2p.* rule
// is deliberately triggered through the real Communicator transport and
// must be caught; the sanctioned escape hatches (abandon, consumed
// messages) must stay clean.

namespace swraman::parallel {
namespace {

using lockcheck::ScopedChecking;

CommConfig fast_timeouts() {
  CommConfig cfg;
  cfg.recv_timeout_s = 0.05;
  cfg.recv_retries = 0;
  return cfg;
}

TEST(Commcheck, OrphanedMessageNotedAtContextDestruction) {
  const ScopedChecking checking;
  {
    std::vector<Communicator> group = make_comm_group(2);
    ASSERT_NE(group[0].context_id(), 0u);
    group[0].send(1, {1.0, 2.0}, /*tag=*/7);
    // Nobody receives it: the context dies with the message in flight.
  }
  const auto counts = lockcheck::violation_counts();
  const auto it = counts.find(lockcheck::kRuleP2pOrphan);
  ASSERT_NE(it, counts.end());
  EXPECT_EQ(it->second, 1u);
}

TEST(Commcheck, ConsumedMessagesLeaveNoOrphans) {
  const ScopedChecking checking;
  {
    std::vector<Communicator> group = make_comm_group(2);
    group[0].send(1, {1.0, 2.0}, /*tag=*/7);
    const std::vector<double> got = group[1].recv(0, /*tag=*/7);
    EXPECT_EQ(got.size(), 2u);
  }
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Commcheck, AbandonedTimeoutRoundTripIsClean) {
  const ScopedChecking checking;
  {
    std::vector<Communicator> group = make_comm_group(2);
    const std::uint64_t ctx = group[0].context_id();
    // A requester that sent, timed out, and walked away declares both
    // halves of the round trip abandoned — the remote-cache idiom.
    group[0].send(1, {42.0}, /*tag=*/3);
    commcheck::abandon(ctx, 0, 1, 3);
    commcheck::abandon(ctx, 1, 0, 9);  // the response that never came
  }
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Commcheck, SendSideTagMismatchThrowsWithProvenance) {
  const ScopedChecking checking;
  std::vector<Communicator> group = make_comm_group(2);
  const std::uint64_t ctx = group[0].context_id();
  commcheck::bind_tag(ctx, /*tag=*/5, /*expect_len=*/3, "test.request");
  group[0].send(1, {1.0, 2.0, 3.0}, 5);  // conforming: fine
  std::string what;
  try {
    group[0].send(1, {1.0, 2.0}, 5);  // wrong arity for the wire type
    FAIL() << "tag mismatch not reported";
  } catch (const CheckViolation& v) {
    EXPECT_EQ(v.rule(), lockcheck::kRuleP2pTagMismatch);
    what = v.what();
  }
  EXPECT_NE(what.find("test.request"), std::string::npos) << what;
  EXPECT_NE(what.find("test_commcheck.cpp"), std::string::npos) << what;
  // Drain the conforming message so destruction stays orphan-free; the
  // mismatched send was rejected before it entered the mailbox.
  static_cast<void>(group[1].recv(0, 5));
  const auto counts = lockcheck::violation_counts();
  EXPECT_EQ(counts.at(lockcheck::kRuleP2pTagMismatch), 1u);
}

TEST(Commcheck, DefaultBindingCoversDynamicResponseTags) {
  const ScopedChecking checking;
  std::vector<Communicator> group = make_comm_group(2);
  const std::uint64_t ctx = group[0].context_id();
  commcheck::bind_tag(ctx, /*tag=*/0, /*expect_len=*/2, "test.request");
  commcheck::bind_default(ctx, /*expect_len=*/4, "test.response");
  // Caller-drawn response tags all inherit the default wire type.
  group[0].send(1, {1.0, 2.0, 3.0, 4.0}, /*tag=*/17);
  static_cast<void>(group[1].recv(0, 17));
  EXPECT_THROW(group[0].send(1, {1.0}, /*tag=*/23), CheckViolation);
  EXPECT_EQ(lockcheck::violation_counts().at(lockcheck::kRuleP2pTagMismatch),
            1u);
}

TEST(Commcheck, RecvSideMismatchIsNotedNotThrown) {
  const ScopedChecking checking;
  std::vector<Communicator> group = make_comm_group(2);
  const std::uint64_t ctx = group[0].context_id();
  group[0].send(1, {1.0, 2.0}, /*tag=*/4);  // sent before the binding
  commcheck::bind_tag(ctx, /*tag=*/4, /*expect_len=*/9, "test.late_bind");
  // The poll-loop side must not unwind: the mismatch is tallied, the
  // message still delivered.
  std::vector<double> out;
  ASSERT_TRUE(group[1].try_recv(0, 4, 0.5, &out));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(lockcheck::violation_counts().at(lockcheck::kRuleP2pTagMismatch),
            1u);
}

TEST(Commcheck, CrossRankRecvCycleNoted) {
  const ScopedChecking checking;
  {
    std::vector<Communicator> group = make_comm_group(2, fast_timeouts());
    // Rank 0 blocks on rank 1 and rank 1 on rank 0 with both mailboxes
    // empty: nobody can make progress until the timeouts break the
    // ring. The wait graph sees the cycle while both are parked.
    std::thread t0([&] {
      try {
        static_cast<void>(group[0].recv(1, /*tag=*/11));
      } catch (const TimeoutError&) {
      }
    });
    std::thread t1([&] {
      try {
        static_cast<void>(group[1].recv(0, /*tag=*/12));
      } catch (const TimeoutError&) {
      }
    });
    t0.join();
    t1.join();
  }
  const auto counts = lockcheck::violation_counts();
  const auto it = counts.find(lockcheck::kRuleP2pRecvCycle);
  ASSERT_NE(it, counts.end());
  EXPECT_GE(it->second, 1u);
}

TEST(Commcheck, PendingMessageSuppressesRecvCycle) {
  const ScopedChecking checking;
  {
    std::vector<Communicator> group = make_comm_group(2, fast_timeouts());
    // Same wait shape, but rank 1's awaited mailbox has data: the ring
    // can drain, so no cycle may be noted.
    group[0].send(1, {5.0}, /*tag=*/12);
    std::thread t0([&] {
      try {
        static_cast<void>(group[0].recv(1, /*tag=*/11));
      } catch (const TimeoutError&) {
      }
    });
    std::thread t1([&] {
      const std::vector<double> got = group[1].recv(0, /*tag=*/12);
      EXPECT_EQ(got.size(), 1u);
    });
    t0.join();
    t1.join();
  }
  const auto counts = lockcheck::violation_counts();
  EXPECT_EQ(counts.count(lockcheck::kRuleP2pRecvCycle), 0u);
  EXPECT_EQ(counts.count(lockcheck::kRuleP2pOrphan), 0u);
}

TEST(Commcheck, DisabledContextsAreFree) {
  const ScopedChecking checking(false);
  std::vector<Communicator> group = make_comm_group(2);
  EXPECT_EQ(group[0].context_id(), 0u);
  group[0].send(1, {1.0}, /*tag=*/2);
  // Unchecked: leftover messages, unbound tags — nothing is tracked.
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

TEST(Commcheck, SpmdCollectivesRunCleanUnderCheck) {
  const ScopedChecking checking;
  run_spmd(4, [](Communicator& comm) {
    std::vector<double> data{static_cast<double>(comm.rank()), 1.0};
    comm.allreduce(data, AllreduceAlgorithm::Ring);
    EXPECT_DOUBLE_EQ(data[0], 6.0);
    EXPECT_DOUBLE_EQ(data[1], 4.0);
    comm.barrier();
  });
  EXPECT_EQ(lockcheck::total_violations(), 0u);
}

}  // namespace
}  // namespace swraman::parallel
