#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "parallel/comm.hpp"

// Non-blocking allreduce: start/test/wait semantics, overlap with other
// collectives (blocking and non-blocking), degenerate cases, and the
// overlap counters.

namespace swraman::parallel {
namespace {

std::vector<double> rank_vector(std::size_t rank, std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(rank) + 0.25 * static_cast<double>(i);
  }
  return v;
}

// sum over ranks r of (r + i/4) = p(p-1)/2 + p*i/4
double expected_sum(std::size_t p, std::size_t i) {
  return static_cast<double>(p * (p - 1)) / 2.0 +
         static_cast<double>(p) * 0.25 * static_cast<double>(i);
}

TEST(Iallreduce, WaitReturnsReducedData) {
  for (const AllreduceAlgorithm alg :
       {AllreduceAlgorithm::Linear, AllreduceAlgorithm::Ring,
        AllreduceAlgorithm::ReduceScatterAllgather,
        AllreduceAlgorithm::Hierarchical, AllreduceAlgorithm::Auto}) {
    run_spmd(4, [alg](Communicator& comm) {
      AllreduceRequest req = comm.iallreduce(rank_vector(comm.rank(), 37), alg);
      ASSERT_TRUE(req.valid());
      const std::vector<double> out = req.wait();
      EXPECT_FALSE(req.valid());  // wait consumes the handle
      ASSERT_EQ(out.size(), 37u);
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_NEAR(out[i], expected_sum(4, i), 1e-12) << "element " << i;
      }
    });
  }
}

TEST(Iallreduce, TestEventuallyTrueAndWaitIsThenImmediate) {
  run_spmd(3, [](Communicator& comm) {
    AllreduceRequest req =
        comm.iallreduce(rank_vector(comm.rank(), 11), AllreduceAlgorithm::Ring);
    while (!req.test()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    const std::vector<double> out = req.wait();
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_NEAR(out[i], expected_sum(3, i), 1e-12);
    }
  });
}

TEST(Iallreduce, OverlapsWithLocalComputeAndOtherCollectives) {
  // Two requests in flight plus a blocking allreduce in between: the
  // per-operation tag bases must keep all three message spaces disjoint.
  run_spmd(4, [](Communicator& comm) {
    AllreduceRequest req_a =
        comm.iallreduce(rank_vector(comm.rank(), 513), AllreduceAlgorithm::Ring);
    AllreduceRequest req_b = comm.iallreduce(
        rank_vector(comm.rank(), 129), AllreduceAlgorithm::Hierarchical);

    std::vector<double> blocking = {static_cast<double>(comm.rank())};
    comm.allreduce(blocking, AllreduceAlgorithm::RecursiveDoubling);
    EXPECT_DOUBLE_EQ(blocking[0], 6.0);

    const std::vector<double> b = req_b.wait();
    const std::vector<double> a = req_a.wait();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], expected_sum(4, i), 1e-11);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      ASSERT_NEAR(b[i], expected_sum(4, i), 1e-11);
    }
  });
}

TEST(Iallreduce, EmptyPayloadCompletesImmediately) {
  run_spmd(3, [](Communicator& comm) {
    AllreduceRequest req = comm.iallreduce({}, AllreduceAlgorithm::Ring);
    EXPECT_TRUE(req.test());  // no communication: done at start
    EXPECT_TRUE(req.wait().empty());
  });
}

TEST(Iallreduce, SingleRankCompletesImmediately) {
  run_spmd(1, [](Communicator& comm) {
    AllreduceRequest req =
        comm.iallreduce({3.5, -1.0}, AllreduceAlgorithm::Hierarchical);
    EXPECT_TRUE(req.test());
    const std::vector<double> out = req.wait();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 3.5);
    EXPECT_DOUBLE_EQ(out[1], -1.0);
  });
}

TEST(Iallreduce, ManyOutstandingRequestsCompleteInAnyWaitOrder) {
  run_spmd(3, [](Communicator& comm) {
    std::vector<AllreduceRequest> reqs;
    for (int k = 0; k < 6; ++k) {
      reqs.push_back(comm.iallreduce(rank_vector(comm.rank(), 17),
                                     AllreduceAlgorithm::Linear));
    }
    // Wait in reverse start order — completion must not depend on it.
    for (auto it = reqs.rbegin(); it != reqs.rend(); ++it) {
      const std::vector<double> out = it->wait();
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_NEAR(out[i], expected_sum(3, i), 1e-12);
      }
    }
  });
}

TEST(Iallreduce, OverlapCountersAccumulate) {
  obs::Registry::instance().reset_for_testing();
  obs::set_enabled(true);
  run_spmd(2, [](Communicator& comm) {
    AllreduceRequest req =
        comm.iallreduce(rank_vector(comm.rank(), 4097), AllreduceAlgorithm::Ring);
    // Represent overlapped local work.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)req.wait();
  });
  obs::set_enabled(false);
  const auto counters = obs::Registry::instance().counter_values();
  EXPECT_GE(counters.at("comm.iallreduce.calls"), 2.0);
  ASSERT_TRUE(counters.count("comm.allreduce.overlap_ns"));
  EXPECT_GT(counters.at("comm.allreduce.overlap_ns"), 0.0);
  obs::Registry::instance().reset_for_testing();
}

}  // namespace
}  // namespace swraman::parallel
