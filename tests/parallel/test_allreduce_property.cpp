#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/allreduce_select.hpp"
#include "parallel/comm.hpp"
#include "robustness/fault.hpp"

// Property-based sweep over the whole collectives surface: every
// AllreduceAlgorithm × rank counts {1, 2, 3, 4, 7, 8} × payload sizes
// {0 (empty), 1, 31 (prime), 1000 (not divisible by most P), 20011
// (large prime)} on seeded random vectors.
//
// Correctness contract (comm.hpp): Linear reduces in ascending rank order
// and must match a serial fold bitwise; the other algorithms reassociate
// the sum, so they are held to a reassociation bound of a few ulp per
// combining level instead.

namespace swraman::parallel {
namespace {

constexpr AllreduceAlgorithm kAll[] = {
    AllreduceAlgorithm::Linear,
    AllreduceAlgorithm::Ring,
    AllreduceAlgorithm::RecursiveDoubling,
    AllreduceAlgorithm::ReduceScatterAllgather,
    AllreduceAlgorithm::CpePipelined,
    AllreduceAlgorithm::Hierarchical,
    AllreduceAlgorithm::Auto,
};

constexpr std::size_t kRankCounts[] = {1, 2, 3, 4, 7, 8};
constexpr std::size_t kSizes[] = {0, 1, 31, 1000};

// Seeded per-(rank, size) input — every rank regenerates the full set, so
// the expected serial fold needs no communication.
std::vector<double> rank_input(std::uint32_t seed, std::size_t rank,
                               std::size_t n) {
  std::mt19937 rng(seed + 1000003u * static_cast<std::uint32_t>(rank));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

// The documented Linear reduction order: ascending ranks, left fold.
std::vector<double> serial_fold(std::uint32_t seed, std::size_t p,
                                std::size_t n) {
  std::vector<double> acc = rank_input(seed, 0, n);
  for (std::size_t r = 1; r < p; ++r) {
    const std::vector<double> in = rank_input(seed, r, n);
    for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
  }
  return acc;
}

// Reassociation bound: |x - ref| for a reordered p-term sum is at most a
// few ulp of the intermediate magnitudes per combining level. Inputs are
// in [-1, 1], so intermediates are bounded by p and eps * p * log2(p) * C
// with a small constant covers every tree shape the algorithms use.
double reassociation_tol(std::size_t p, double ref) {
  const double eps = std::numeric_limits<double>::epsilon();
  const double levels = std::ceil(std::log2(static_cast<double>(p) + 1.0));
  const double magnitude =
      std::max(std::abs(ref), static_cast<double>(p));
  return 8.0 * eps * magnitude * (levels + 1.0);
}

void check_algorithm(AllreduceAlgorithm alg, std::size_t p, std::size_t n,
                     std::uint32_t seed, std::size_t node_size) {
  CommConfig cfg;
  cfg.node_size = node_size;
  const std::vector<double> expected = serial_fold(seed, p, n);
  run_spmd(
      p,
      [&](Communicator& comm) {
        std::vector<double> data = rank_input(seed, comm.rank(), n);
        comm.allreduce(data, alg);
        ASSERT_EQ(data.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
          if (alg == AllreduceAlgorithm::Linear) {
            // Bitwise: documented ascending-rank reduction order.
            ASSERT_EQ(data[i], expected[i])
                << "linear mismatch at element " << i << " (P=" << p
                << ", n=" << n << ")";
          } else {
            ASSERT_NEAR(data[i], expected[i],
                        reassociation_tol(p, expected[i]))
                << allreduce_algorithm_name(alg) << " at element " << i
                << " (P=" << p << ", n=" << n
                << ", node_size=" << node_size << ")";
          }
        }
      },
      cfg);
}

TEST(AllreduceProperty, AllAlgorithmsAllRankCountsAllSizes) {
  std::uint32_t seed = 42;
  for (const AllreduceAlgorithm alg : kAll) {
    for (const std::size_t p : kRankCounts) {
      for (const std::size_t n : kSizes) {
        SCOPED_TRACE(testing::Message()
                     << allreduce_algorithm_name(alg) << " P=" << p
                     << " n=" << n);
        check_algorithm(alg, p, n, seed++, /*node_size=*/4);
      }
    }
  }
}

TEST(AllreduceProperty, LargePayloadNonDivisibleByRanks) {
  // 20011 is prime: no rank count divides it, exercising every uneven
  // chunking path (ring chunks, rsag windows, hierarchical groups).
  std::uint32_t seed = 1234;
  for (const AllreduceAlgorithm alg : kAll) {
    for (const std::size_t p : {std::size_t{3}, std::size_t{8}}) {
      SCOPED_TRACE(testing::Message()
                   << allreduce_algorithm_name(alg) << " P=" << p);
      check_algorithm(alg, p, 20011, seed++, /*node_size=*/4);
    }
  }
}

TEST(AllreduceProperty, HierarchicalNodeSizeSweep) {
  // node_size 1 (every rank a leader — degenerates to the leader rsag),
  // equal to P, larger than P (clamped), and non-divisors of P.
  std::uint32_t seed = 777;
  for (const std::size_t node_size :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{9}}) {
    for (const std::size_t p : {std::size_t{4}, std::size_t{7}}) {
      SCOPED_TRACE(testing::Message()
                   << "node_size=" << node_size << " P=" << p);
      check_algorithm(AllreduceAlgorithm::Hierarchical, p, 257, seed++,
                      node_size);
    }
  }
}

TEST(AllreduceProperty, EmptyPayloadIsANoOpNotABarrier) {
  // Regression for the old Ring behaviour, which turned an empty allreduce
  // into a barrier — deadlocking any rank pair whose collective schedules
  // diverge on empty payloads (and corrupting generation counts when
  // issued from iallreduce communication threads).
  for (const AllreduceAlgorithm alg : kAll) {
    run_spmd(3, [alg](Communicator& comm) {
      std::vector<double> empty;
      comm.allreduce(empty, alg);  // must return immediately on every rank
      EXPECT_TRUE(empty.empty());
    });
  }
}

TEST(AllreduceProperty, SingleRankIsIdentity) {
  for (const AllreduceAlgorithm alg : kAll) {
    run_spmd(1, [alg](Communicator& comm) {
      std::vector<double> data = {1.5, -2.25, 3.125};
      const std::vector<double> orig = data;
      comm.allreduce(data, alg);
      EXPECT_EQ(data, orig);
    });
  }
}

TEST(AllreduceProperty, AutoResolvesIdenticallyOnEveryRank) {
  // Auto must be a pure function of (bytes, P, node_size): all ranks pick
  // the same algorithm, and the pick is reported by the selector.
  const AllreduceChoice choice =
      select_allreduce(1000 * sizeof(double), 7, 4);
  EXPECT_NE(choice.algorithm, AllreduceAlgorithm::Auto);
  EXPECT_GT(choice.modeled_seconds, 0.0);
  const AllreduceChoice again =
      select_allreduce(1000 * sizeof(double), 7, 4);
  EXPECT_EQ(choice.algorithm, again.algorithm);
  EXPECT_EQ(choice.modeled_seconds, again.modeled_seconds);
}

TEST(AllreduceProperty, SelectorPrefersHierarchicalAtScale) {
  // The acceptance regime of the bench: >= 16 ranks, >= 1 MB payloads.
  const AllreduceChoice choice = select_allreduce(1 << 20, 16, 4);
  EXPECT_EQ(choice.algorithm, AllreduceAlgorithm::Hierarchical);
}

TEST(AllreducePropertyFaults, SurvivesInjectedDropsAllAlgorithms) {
  CommConfig cfg;
  cfg.recv_timeout_s = 0.25;
  cfg.recv_retries = 2;
  cfg.send_retries = 10;
  cfg.backoff_base_s = 1e-5;
  cfg.backoff_max_s = 1e-3;
  cfg.node_size = 2;

  std::uint32_t seed = 5150;
  for (const AllreduceAlgorithm alg : kAll) {
    fault::ScopedFaults guard;
    fault::FaultInjector::instance().set_seed(17);
    fault::FaultSpec spec;
    spec.probability = 0.1;  // retry budget 10 makes exhaustion negligible
    fault::FaultInjector::instance().configure(fault::kCommSendDrop, spec);

    const std::size_t p = 4;
    const std::size_t n = 129;
    const std::vector<double> expected = serial_fold(seed, p, n);
    run_spmd(
        p,
        [&](Communicator& comm) {
          std::vector<double> data = rank_input(seed, comm.rank(), n);
          comm.allreduce(data, alg);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_NEAR(data[i], expected[i],
                        reassociation_tol(p, expected[i]))
                << allreduce_algorithm_name(alg) << " under drops, element "
                << i;
          }
        },
        cfg);
    ++seed;
  }
}

TEST(AllreduceProperty, RepeatedMixedAlgorithmCallsStayIsolated) {
  // Back-to-back collectives with different algorithms on one communicator:
  // per-operation tag bases must keep their message namespaces disjoint.
  run_spmd(4, [](Communicator& comm) {
    for (int round = 0; round < 3; ++round) {
      for (const AllreduceAlgorithm alg : kAll) {
        std::vector<double> data = {static_cast<double>(comm.rank() + 1)};
        comm.allreduce(data, alg);
        EXPECT_DOUBLE_EQ(data[0], 10.0);
      }
    }
  });
}

}  // namespace
}  // namespace swraman::parallel
