#include "hartree/multipole.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman::hartree {
namespace {

// Normalized Gaussian density centered at c: V(r) = erf(sqrt(a) |r-c|)/|r-c|.
double gaussian_density(const Vec3& r, const Vec3& c, double a) {
  return std::pow(a / kPi, 1.5) * std::exp(-a * (r - c).norm2());
}

double gaussian_potential(const Vec3& r, const Vec3& c, double a) {
  const double d = (r - c).norm();
  if (d < 1e-8) return 2.0 * std::sqrt(a / kPi);
  return std::erf(std::sqrt(a) * d) / d;
}

grid::MolecularGrid make_grid(const std::vector<grid::AtomSite>& atoms,
                              grid::GridLevel level = grid::GridLevel::Tight) {
  grid::GridSettings s;
  s.level = level;
  return grid::build_molecular_grid(atoms, s);
}

TEST(Multipole, OnCenterGaussianPotential) {
  const std::vector<grid::AtomSite> atoms = {{8, {0.0, 0.0, 0.0}}};
  const grid::MolecularGrid g = make_grid(atoms);
  const MultipoleSolver solver(g, 6);

  std::vector<double> n(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n[p] = gaussian_density(g.points[p], {0, 0, 0}, 1.2);
  }
  const MultipolePotential pot = solver.solve(n);
  EXPECT_NEAR(pot.total_charge(), 1.0, 1e-4);

  for (const Vec3& r : {Vec3{0.5, 0.0, 0.0}, Vec3{0.0, 1.0, 0.5},
                        Vec3{2.0, 1.0, -1.0}, Vec3{6.0, 0.0, 0.0}}) {
    EXPECT_NEAR(pot.value(r), gaussian_potential(r, {0, 0, 0}, 1.2), 5e-4)
        << r;
  }
}

TEST(Multipole, OffCenterGaussianNeedsHigherMultipoles) {
  // A Gaussian displaced from the only atomic center exercises l > 0.
  const std::vector<grid::AtomSite> atoms = {{8, {0.0, 0.0, 0.0}}};
  const grid::MolecularGrid g = make_grid(atoms);
  const MultipoleSolver solver(g, 8);

  const Vec3 c{0.0, 0.0, 0.5};
  std::vector<double> n(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n[p] = gaussian_density(g.points[p], c, 2.0);
  }
  const MultipolePotential pot = solver.solve(n);
  for (const Vec3& r : {Vec3{0.0, 0.0, 3.0}, Vec3{2.0, 0.0, 0.0},
                        Vec3{0.0, -2.5, 1.0}}) {
    EXPECT_NEAR(pot.value(r), gaussian_potential(r, c, 2.0), 5e-3) << r;
  }
}

TEST(Multipole, TwoCenterDensity) {
  const std::vector<grid::AtomSite> atoms = {{1, {0.0, 0.0, 0.0}},
                                             {1, {0.0, 0.0, 1.4}}};
  const grid::MolecularGrid g = make_grid(atoms);
  const MultipoleSolver solver(g, 6);

  std::vector<double> n(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n[p] = gaussian_density(g.points[p], atoms[0].pos, 1.5) +
           gaussian_density(g.points[p], atoms[1].pos, 1.5);
  }
  const MultipolePotential pot = solver.solve(n);
  EXPECT_NEAR(pot.total_charge(), 2.0, 2e-4);
  for (const Vec3& r : {Vec3{0.0, 0.0, 0.7}, Vec3{1.5, 0.0, 0.7},
                        Vec3{0.0, 0.0, 4.0}, Vec3{0.0, 3.0, 0.0}}) {
    const double exact = gaussian_potential(r, atoms[0].pos, 1.5) +
                         gaussian_potential(r, atoms[1].pos, 1.5);
    EXPECT_NEAR(pot.value(r), exact, 5e-3) << r;
  }
}

TEST(Multipole, FarFieldIsMonopole) {
  const std::vector<grid::AtomSite> atoms = {{6, {0.0, 0.0, 0.0}}};
  const grid::MolecularGrid g = make_grid(atoms);
  const MultipoleSolver solver(g, 4);
  std::vector<double> n(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n[p] = gaussian_density(g.points[p], {0, 0, 0}, 0.8);
  }
  const MultipolePotential pot = solver.solve(n);
  for (double r : {15.0, 25.0, 60.0}) {
    EXPECT_NEAR(pot.value({r, 0.0, 0.0}), 1.0 / r, 1e-4 / r);
  }
}

TEST(Multipole, SolveOnGridMatchesPointwiseEvaluation) {
  const std::vector<grid::AtomSite> atoms = {{1, {0.0, 0.0, 0.0}}};
  const grid::MolecularGrid g = make_grid(atoms, grid::GridLevel::Light);
  const MultipoleSolver solver(g, 4);
  std::vector<double> n(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n[p] = gaussian_density(g.points[p], {0, 0, 0}, 1.0);
  }
  const MultipolePotential pot = solver.solve(n);
  const std::vector<double> on_grid = solver.solve_on_grid(n);
  for (std::size_t p = 0; p < g.size(); p += 97) {
    EXPECT_NEAR(on_grid[p], pot.value(g.points[p]), 1e-12);
  }
}

class MultipoleLmax : public ::testing::TestWithParam<int> {};

TEST_P(MultipoleLmax, ErrorDecreasesWithLmax) {
  // Convergence with lmax for an off-center source (property sweep).
  const int lmax = GetParam();
  const std::vector<grid::AtomSite> atoms = {{8, {0.0, 0.0, 0.0}}};
  const grid::MolecularGrid g = make_grid(atoms);
  const MultipoleSolver solver(g, lmax);
  const Vec3 c{0.0, 0.0, 0.4};
  std::vector<double> n(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n[p] = gaussian_density(g.points[p], c, 2.5);
  }
  const MultipolePotential pot = solver.solve(n);
  const Vec3 probe{0.0, 1.5, 1.0};
  const double err =
      std::abs(pot.value(probe) - gaussian_potential(probe, c, 2.5));
  // Tolerance tightens with lmax.
  const double tol = (lmax <= 2) ? 0.05 : (lmax <= 4 ? 0.01 : 3e-3);
  EXPECT_LT(err, tol) << "lmax=" << lmax;
}

INSTANTIATE_TEST_SUITE_P(Orders, MultipoleLmax, ::testing::Values(2, 4, 6, 8));

}  // namespace
}  // namespace swraman::hartree
// -- appended property coverage.

namespace swraman::hartree {
namespace {

TEST(Multipole, SolverIsLinearInTheDensity) {
  const std::vector<grid::AtomSite> atoms = {{8, {0.0, 0.0, 0.0}}};
  const grid::MolecularGrid g = make_grid(atoms, grid::GridLevel::Light);
  const MultipoleSolver solver(g, 4);
  std::vector<double> n1(g.size());
  std::vector<double> n2(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n1[p] = gaussian_density(g.points[p], {0, 0, 0}, 1.0);
    n2[p] = gaussian_density(g.points[p], {0, 0, 0.3}, 2.0);
  }
  std::vector<double> combo(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    combo[p] = 2.0 * n1[p] - 0.5 * n2[p];
  }
  const MultipolePotential pa = solver.solve(n1);
  const MultipolePotential pb = solver.solve(n2);
  const MultipolePotential pc = solver.solve(combo);
  // Exactly linear up to the channel noise-floor filter (the |rho| <
  // 1e-10 max threshold in the solver is deliberately nonlinear).
  for (const Vec3& r : {Vec3{0.5, 0.2, 1.0}, Vec3{2.0, -1.0, 0.0}}) {
    EXPECT_NEAR(pc.value(r), 2.0 * pa.value(r) - 0.5 * pb.value(r), 1e-8);
  }
  EXPECT_NEAR(pc.total_charge(),
              2.0 * pa.total_charge() - 0.5 * pb.total_charge(), 1e-8);
}

TEST(Multipole, ZeroDensityGivesZeroPotential) {
  const std::vector<grid::AtomSite> atoms = {{1, {0.0, 0.0, 0.0}}};
  const grid::MolecularGrid g = make_grid(atoms, grid::GridLevel::Light);
  const MultipoleSolver solver(g, 4);
  const MultipolePotential pot =
      solver.solve(std::vector<double>(g.size(), 0.0));
  EXPECT_DOUBLE_EQ(pot.total_charge(), 0.0);
  EXPECT_DOUBLE_EQ(pot.value({1.0, 1.0, 1.0}), 0.0);
}

}  // namespace
}  // namespace swraman::hartree

// Counting global operator new: the per-point evaluation micro-regression
// below pins the workspace hoisting (no heap traffic per value() call on
// the hot Hartree evaluation path). Counting only; allocation behavior is
// unchanged, so the rest of the binary is unaffected.
namespace {
std::atomic<std::size_t> g_allocation_count{0};

// noinline keeps GCC's new/delete pairing analysis from flagging the
// malloc/free backing as mismatched across inlined call sites.
[[gnu::noinline]] void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
[[gnu::noinline]] void counted_release(void* p) noexcept { std::free(p); }
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { counted_release(p); }
void operator delete(void* p, std::size_t) noexcept { counted_release(p); }
void operator delete[](void* p) noexcept { counted_release(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_release(p); }

namespace swraman::hartree {
namespace {

TEST(Multipole, ValueDoesNotAllocatePerPoint) {
  const std::vector<grid::AtomSite> atoms = {{8, {0.0, 0.0, 0.0}},
                                             {1, {0.0, 0.0, 1.8}}};
  const grid::MolecularGrid g = make_grid(atoms, grid::GridLevel::Light);
  const MultipoleSolver solver(g, 6);
  std::vector<double> n(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    n[p] = gaussian_density(g.points[p], {0, 0, 0}, 1.2);
  }
  const MultipolePotential pot = solver.solve(n);

  // First calls size the (thread_local / explicit) workspaces.
  MultipolePotential::Workspace ws;
  double acc = pot.value({1.0, 0.5, -0.3}) + pot.value({1.0, 0.5, -0.3}, ws);

  const std::size_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) {
    const Vec3 r{0.3 + 0.02 * i, -0.7, 0.4};
    acc += pot.value(r);
    acc += pot.value(r, ws);
    acc += pot.value_atom(0, r, ws);
  }
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), before)
      << "per-point evaluation must not touch the heap (acc=" << acc << ")";
}

}  // namespace
}  // namespace swraman::hartree
