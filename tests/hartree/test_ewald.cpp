#include "hartree/ewald.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::hartree {
namespace {

TEST(Ewald, NaClMadelungConstant) {
  // Rock salt: potential at a cation site is -M / r_nn with M = 1.7476.
  const double a = 2.0;  // nearest-neighbor distance a/2 = 1
  const EwaldSystem sys = rock_salt_cell(a, 1.0);
  const Ewald ewald(sys, 1.0, 8.0, 12.0);
  const double phi = ewald.potential_at_ion(0);
  EXPECT_NEAR(phi, -1.747565, 2e-4);
}

class EwaldEta : public ::testing::TestWithParam<double> {};

TEST_P(EwaldEta, MadelungIndependentOfSplitting) {
  const double eta = GetParam();
  const EwaldSystem sys = rock_salt_cell(2.0, 1.0);
  const Ewald ewald(sys, eta, 10.0 / std::sqrt(eta), 7.0 * std::sqrt(eta));
  EXPECT_NEAR(ewald.potential_at_ion(0), -1.747565, 5e-4) << "eta=" << eta;
}

INSTANTIATE_TEST_SUITE_P(Splittings, EwaldEta,
                         ::testing::Values(0.5, 1.0, 2.0));

TEST(Ewald, ZincBlendeMadelungConstant) {
  // Zinc blende Madelung constant (refered to the nearest-neighbor
  // distance sqrt(3)/4 a): M = 1.6381.
  const double a = 4.0;
  const double rnn = std::sqrt(3.0) / 4.0 * a;
  const EwaldSystem sys = zinc_blende_cell(a, 1.0);
  const Ewald ewald(sys, 0.8, 10.0, 9.0);
  EXPECT_NEAR(ewald.potential_at_ion(0) * rnn, -1.63806, 2e-3);
}

TEST(Ewald, PotentialIsPeriodic) {
  const EwaldSystem sys = rock_salt_cell(2.0, 1.0);
  const Ewald ewald(sys, 1.0, 8.0, 10.0);
  const Vec3 r{0.3, 0.41, 0.17};
  const Vec3 shifted = r + sys.a1 + sys.a3;
  EXPECT_NEAR(ewald.potential(r), ewald.potential(shifted), 1e-6);
}

TEST(Ewald, ReciprocalTablesAreConsistent) {
  const EwaldSystem sys = zinc_blende_cell(4.0, 0.5);
  const Ewald ewald(sys, 1.0, 8.0, 8.0);
  ASSERT_GT(ewald.n_g_vectors(), 100u);
  ASSERT_EQ(ewald.g_vectors().size(), ewald.coefficients().size());
  ASSERT_EQ(ewald.g_vectors().size(), ewald.structure_cos().size());
  // Manual reciprocal evaluation from the tables matches the method.
  const Vec3 r{0.7, -0.3, 1.1};
  double v = 0.0;
  for (std::size_t k = 0; k < ewald.n_g_vectors(); ++k) {
    const double phase = dot(ewald.g_vectors()[k], r);
    v += ewald.coefficients()[k] * (std::cos(phase) * ewald.structure_cos()[k] +
                                    std::sin(phase) * ewald.structure_sin()[k]);
  }
  EXPECT_NEAR(v, ewald.reciprocal(r), 1e-12);
}

TEST(Ewald, RejectsChargedCell) {
  EwaldSystem sys = rock_salt_cell(2.0, 1.0);
  sys.charges[0] += 0.5;
  EXPECT_THROW(Ewald(sys, 1.0, 8.0, 8.0), Error);
}

TEST(Ewald, RejectsBadParameters) {
  const EwaldSystem sys = rock_salt_cell(2.0, 1.0);
  EXPECT_THROW(Ewald(sys, -1.0, 8.0, 8.0), Error);
  EXPECT_THROW(Ewald(sys, 1.0, 0.0, 8.0), Error);
}

}  // namespace
}  // namespace swraman::hartree
