#include "dfpt/dfpt_engine.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::dfpt {
namespace {

std::vector<grid::AtomSite> h2(double bond = 1.4) {
  return {{1, {0.0, 0.0, 0.0}}, {1, {0.0, 0.0, bond}}};
}

std::vector<grid::AtomSite> water() {
  const double oh = 0.9572 * kBohrPerAngstrom;
  const double half = 0.5 * 104.5 * kPi / 180.0;
  return {{8, {0.0, 0.0, 0.0}},
          {1, {oh * std::sin(half), 0.0, oh * std::cos(half)}},
          {1, {-oh * std::sin(half), 0.0, oh * std::cos(half)}}};
}

TEST(DfptEngine, RequiresConvergedGroundState) {
  scf::ScfOptions opt;
  opt.max_iterations = 1;
  scf::ScfEngine eng(h2(), opt);
  const scf::GroundState gs = eng.solve();
  ASSERT_FALSE(gs.converged);
  EXPECT_THROW(DfptEngine(eng, gs), Error);
}

TEST(DfptEngine, H2PolarizabilityAnisotropy) {
  scf::ScfEngine eng(h2(), {});
  const scf::GroundState gs = eng.solve();
  DfptEngine dfpt(eng, gs);
  const linalg::Matrix alpha = dfpt.polarizability();
  // Parallel (zz, along the bond) exceeds perpendicular; both positive.
  EXPECT_GT(alpha(2, 2), alpha(0, 0));
  EXPECT_GT(alpha(0, 0), 0.0);
  EXPECT_NEAR(alpha(0, 0), alpha(1, 1), 1e-4);
  // Off-diagonals vanish by symmetry.
  EXPECT_NEAR(alpha(0, 1), 0.0, 1e-4);
  EXPECT_NEAR(alpha(0, 2), 0.0, 1e-4);
}

// The central DFPT correctness property: the self-consistent response must
// reproduce the numerical derivative of the finite-field dipole moment.
class DfptVsFiniteField : public ::testing::TestWithParam<int> {};

TEST_P(DfptVsFiniteField, WaterMatchesFiniteField) {
  const int axis = GetParam();
  scf::ScfEngine eng(water(), {});
  const scf::GroundState gs = eng.solve();
  DfptEngine dfpt(eng, gs);
  const ResponseResult res = dfpt.solve_response(axis);
  EXPECT_TRUE(res.converged);

  const double f = 2e-3;
  scf::ScfOptions plus;
  plus.electric_field[axis] = f;
  scf::ScfOptions minus;
  minus.electric_field[axis] = -f;
  scf::ScfEngine ep(water(), plus);
  scf::ScfEngine em(water(), minus);
  const Vec3 dp = ep.solve().dipole;
  const Vec3 dm = em.solve().dipole;

  // alpha_(axis,axis) from DFPT vs central difference.
  linalg::Matrix alpha_col(3, 1);
  const double dfpt_val =
      -linalg::trace_product(res.p1, eng.dipole_matrix(axis));
  (void)alpha_col;
  const double ff_val = (dp[axis] - dm[axis]) / (2.0 * f);
  EXPECT_NEAR(dfpt_val, ff_val, 5e-3 * std::abs(ff_val) + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Axes, DfptVsFiniteField, ::testing::Values(0, 1, 2));

TEST(DfptEngine, WaterPolarizabilityTensorShape) {
  scf::ScfEngine eng(water(), {});
  const scf::GroundState gs = eng.solve();
  DfptEngine dfpt(eng, gs);
  const linalg::Matrix alpha = dfpt.polarizability();
  // C2v water in the xz plane: tensor diagonal, all components positive.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(alpha(i, i), 2.0);
    EXPECT_LT(alpha(i, i), 20.0);
    for (int j = 0; j < i; ++j) {
      EXPECT_NEAR(alpha(i, j), 0.0, 1e-3);
    }
  }
  const double iso = DfptEngine::isotropic(alpha);
  EXPECT_GT(iso, 4.0);
  EXPECT_LT(iso, 12.0);
}

TEST(DfptEngine, KernelTimesAreAccumulated) {
  scf::ScfEngine eng(h2(), {});
  const scf::GroundState gs = eng.solve();
  DfptEngine dfpt(eng, gs);
  (void)dfpt.solve_response(2);
  const KernelTimes& kt = dfpt.kernel_times();
  EXPECT_GT(kt.cycles, 1);
  EXPECT_GT(kt.total(), 0.0);
  EXPECT_GE(kt.n1, 0.0);
  EXPECT_GE(kt.v1, 0.0);
  EXPECT_GE(kt.h1, 0.0);
}

TEST(DfptEngine, DielectricTensorFromPolarizability) {
  linalg::Matrix alpha = linalg::Matrix::identity(3);
  alpha *= 10.0;
  const double volume = 100.0;
  const linalg::Matrix eps = DfptEngine::dielectric_tensor(alpha, volume);
  EXPECT_NEAR(eps(0, 0), 1.0 + kFourPi * 10.0 / 100.0, 1e-12);
  EXPECT_NEAR(eps(0, 1), 0.0, 1e-12);
  EXPECT_THROW(DfptEngine::dielectric_tensor(alpha, 0.0), Error);
}

TEST(DfptEngine, ResponseScalesLinearlyAcrossBackends) {
  // GTO backend yields a polarizability in the same range as NAO (Fig. 11
  // agreement at the physics level).
  scf::ScfOptions gto;
  gto.species.backend = basis::Backend::Gto;
  scf::ScfEngine nao_eng(h2(), {});
  scf::ScfEngine gto_eng(h2(), gto);
  const scf::GroundState nao_gs = nao_eng.solve();
  const scf::GroundState gto_gs = gto_eng.solve();
  DfptEngine nao_dfpt(nao_eng, nao_gs);
  DfptEngine gto_dfpt(gto_eng, gto_gs);
  const double a_nao = nao_dfpt.polarizability()(2, 2);
  const double a_gto = gto_dfpt.polarizability()(2, 2);
  EXPECT_NEAR(a_nao, a_gto, 0.35 * a_nao);
}

}  // namespace
}  // namespace swraman::dfpt
// -- appended coverage: dynamic (frequency-dependent) polarizability.

namespace swraman::dfpt {
namespace {

TEST(DynamicPolarizability, StaticLimitAndDispersion) {
  scf::ScfEngine eng(h2(), {});
  const scf::GroundState gs = eng.solve();
  DfptEngine dfpt(eng, gs);
  const linalg::Matrix a_static = dfpt.polarizability();
  const linalg::Matrix a_zero = dfpt.polarizability_at_frequency(0.0);
  EXPECT_NEAR((a_static - a_zero).max_abs(), 0.0, 1e-8);

  // Normal dispersion: alpha grows with omega below the first excitation.
  const linalg::Matrix a_01 = dfpt.polarizability_at_frequency(0.05);
  const linalg::Matrix a_02 = dfpt.polarizability_at_frequency(0.10);
  EXPECT_GT(a_01(2, 2), a_static(2, 2));
  EXPECT_GT(a_02(2, 2), a_01(2, 2));
  // Well below resonance the dispersion is modest.
  EXPECT_LT(a_02(2, 2), 2.0 * a_static(2, 2));
}

TEST(DynamicPolarizability, RejectsNegativeFrequency) {
  scf::ScfEngine eng(h2(), {});
  const scf::GroundState gs = eng.solve();
  DfptEngine dfpt(eng, gs);
  EXPECT_THROW(dfpt.polarizability_at_frequency(-0.1), Error);
}

}  // namespace
}  // namespace swraman::dfpt
