#include "core/workload.hpp"

#include <gtest/gtest.h>

#include "core/reference.hpp"

namespace swraman::core {
namespace {

TEST(Workload, Table1CasesMatchPaper) {
  const auto& cases = table1_cases();
  ASSERT_EQ(cases.size(), 6u);
  EXPECT_EQ(cases[0].grid_points, 35836u);
  EXPECT_EQ(cases[1].grid_points, 56860u);
  EXPECT_EQ(cases[3].n_basis, 50u);
  EXPECT_EQ(cases[4].points_per_batch, 200u);
  EXPECT_EQ(cases[5].points_per_batch, 300u);
}

TEST(Workload, Table1CaseInvariants) {
  // Every Table-1 case must be internally consistent: positive sizes and
  // a batch that fits inside its own grid.
  for (const SiCase& c : table1_cases()) {
    EXPECT_GT(c.grid_points, 0u) << c.name;
    EXPECT_GT(c.n_basis, 0u) << c.name;
    EXPECT_GT(c.points_per_batch, 0u) << c.name;
    EXPECT_LE(c.points_per_batch, c.grid_points) << c.name;
  }
}

TEST(Workload, NRamanPolarizabilitiesIs6NPlus1) {
  EXPECT_EQ(n_raman_polarizabilities(1), 7u);
  EXPECT_EQ(n_raman_polarizabilities(3), 19u);   // water
  EXPECT_EQ(n_raman_polarizabilities(3006), 18037u);  // RBD protein
}

TEST(Workload, MakeDfptJobInvariantsAcrossScales) {
  for (std::size_t n_atoms : {std::size_t{3}, std::size_t{96},
                              std::size_t{3006}}) {
    SystemScale scale;
    scale.n_atoms = n_atoms;
    const scaling::RamanJob job = make_dfpt_job(scale);
    EXPECT_GE(job.n_batches, 1u);
    EXPECT_GT(job.points_per_batch, 0.0);
    // Batch decomposition covers the grid: batches x points/batch equals
    // the scale's total point count (up to the truncated final batch).
    const double points =
        static_cast<double>(scale.n_atoms) * scale.points_per_atom;
    EXPECT_LE(static_cast<double>(job.n_batches) * job.points_per_batch,
              points + job.points_per_batch);
    EXPECT_GE(static_cast<double>(job.n_batches + 1) * job.points_per_batch,
              points);
    // One DFPT iteration's kernels all sweep work and cost something.
    for (const sunway::KernelWorkload* w : {&job.n1, &job.v1, &job.h1}) {
      EXPECT_GT(w->elements, 0.0);
      EXPECT_GT(w->total_flops(), 0.0);
    }
    EXPECT_GT(job.scf_iterations, 0.0);
    EXPECT_GT(job.dfpt_iterations, 0.0);
    EXPECT_DOUBLE_EQ(job.response_directions, 3.0);
    EXPECT_GT(job.allreduce_bytes, 0.0);
    EXPECT_GT(job.mpe_serial_seconds, 0.0);
  }
}

TEST(Workload, RbdJobScale) {
  const scaling::RamanJob job = make_dfpt_job(rbd_protein());
  // 3006 atoms at light-grid density: millions of points, paper-scale
  // batch count, 1175-polarizability default.
  EXPECT_GT(job.n_batches, 10000u);
  EXPECT_EQ(job.n_polarizabilities, 1175u);
  EXPECT_GT(job.v1.total_flops(), 5e10);
  EXPECT_GT(job.n1.total_flops(), 1e10);
  EXPECT_GT(job.h1.total_flops(), 1e10);
  EXPECT_GT(job.allreduce_bytes, 1e5);
  EXPECT_GT(job.mpe_serial_seconds, 0.0);
}

TEST(Workload, V1IndependentOfBasisCount) {
  // Fig. 13: the response-potential kernel touches only the grid.
  const auto& c = table1_cases();
  const sunway::KernelWorkload a = si_case_v1(c[0]);  // 18 basis fns
  const sunway::KernelWorkload b = si_case_v1(c[2]);  // 36 basis fns
  EXPECT_DOUBLE_EQ(a.flops_per_element, b.flops_per_element);
  EXPECT_DOUBLE_EQ(a.stream_bytes_per_element, b.stream_bytes_per_element);
}

TEST(Workload, DensityKernelScalesQuadraticallyWithBasis) {
  const auto& c = table1_cases();
  const sunway::KernelWorkload n18 = si_case_n1(c[0]);  // 18 fns
  const sunway::KernelWorkload n36 = si_case_n1(c[2]);  // 36 fns
  EXPECT_NEAR(n36.flops_per_element / n18.flops_per_element, 4.0, 1e-9);
}

TEST(Workload, HamiltonianCarriesScatterTraffic) {
  const sunway::KernelWorkload h = si_case_h1(table1_cases()[0]);
  const sunway::KernelWorkload n = si_case_n1(table1_cases()[0]);
  EXPECT_GT(h.irregular_bytes_per_element, 0.0);
  EXPECT_DOUBLE_EQ(n.irregular_bytes_per_element, 0.0);
}

TEST(Workload, BatchSize200IsTheSweetSpot) {
  // Fig. 13's observation: 200 points per batch accelerates best.
  const auto& c = table1_cases();
  const sunway::ArchParams sw = sunway::sw26010pro();
  const auto speedup = [&](const sunway::KernelWorkload& w) {
    return modeled_time(w, sw, sunway::Variant::MpeScalar) /
           modeled_time(w, sw, sunway::Variant::CpeTiledDbSimd);
  };
  const double s100 = speedup(si_case_n1(c[2]));  // #3: 100 pts
  const double s200 = speedup(si_case_n1(c[4]));  // #5: 200 pts
  const double s300 = speedup(si_case_n1(c[5]));  // #6: 300 pts
  EXPECT_GT(s200, s100);
  EXPECT_GT(s200, s300);
}

TEST(Workload, DenserGridImprovesV1Speedup) {
  // Fig. 13: ~7% higher V1 acceleration for the denser-grid cases.
  const auto& c = table1_cases();
  const sunway::ArchParams sw = sunway::sw26010pro();
  const auto speedup = [&](const sunway::KernelWorkload& w) {
    return modeled_time(w, sw, sunway::Variant::MpeScalar) /
           modeled_time(w, sw, sunway::Variant::CpeTiled);
  };
  const double sparse = speedup(si_case_v1(c[0]));  // 35836 points
  const double dense = speedup(si_case_v1(c[1]));   // 56860 points
  EXPECT_GT(dense, 1.03 * sparse);
  EXPECT_LT(dense, 1.25 * sparse);
}

TEST(Reference, BandTableAndMaterials) {
  EXPECT_GE(rbd_experimental_bands().size(), 6u);
  EXPECT_EQ(fig10_materials().size(), 19u);
  for (const ZincBlendeMaterial& m : fig10_materials()) {
    EXPECT_GE(m.z_cation, 1);
    EXPECT_LE(m.z_anion, 54);
    EXPECT_GT(m.bond_angstrom, 1.0);
    EXPECT_LT(m.bond_angstrom, 3.0);
  }
  EXPECT_NEAR(paper_targets().fig17_efficiency, 0.845, 1e-12);
}

}  // namespace
}  // namespace swraman::core
