#include "core/molecules.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::molecules {
namespace {

TEST(Molecules, WaterGeometry) {
  const auto atoms = water();
  ASSERT_EQ(atoms.size(), 3u);
  EXPECT_EQ(atoms[0].z, 8);
  const double oh = distance(atoms[0].pos, atoms[1].pos);
  EXPECT_NEAR(oh * kAngstromPerBohr, 0.9572, 1e-6);
  // H-O-H angle.
  const Vec3 a = atoms[1].pos - atoms[0].pos;
  const Vec3 b = atoms[2].pos - atoms[0].pos;
  const double ang =
      std::acos(dot(a, b) / (a.norm() * b.norm())) * 180.0 / kPi;
  EXPECT_NEAR(ang, 104.5, 1e-6);
  EXPECT_DOUBLE_EQ(electron_count(atoms), 10.0);
}

TEST(Molecules, HydrogenDisulfideGeometry) {
  const auto atoms = hydrogen_disulfide();
  ASSERT_EQ(atoms.size(), 4u);
  EXPECT_NEAR(distance(atoms[0].pos, atoms[1].pos) * kAngstromPerBohr, 2.055,
              1e-6);
  EXPECT_NEAR(distance(atoms[0].pos, atoms[2].pos) * kAngstromPerBohr, 1.342,
              1e-6);
  EXPECT_DOUBLE_EQ(electron_count(atoms), 34.0);
}

TEST(Molecules, EthyleneAndFormaldehyde) {
  const auto eth = ethylene();
  ASSERT_EQ(eth.size(), 6u);
  EXPECT_NEAR(distance(eth[0].pos, eth[1].pos) * kAngstromPerBohr, 1.339,
              1e-6);
  EXPECT_DOUBLE_EQ(electron_count(eth), 16.0);

  const auto fa = formaldehyde();
  ASSERT_EQ(fa.size(), 4u);
  EXPECT_NEAR(distance(fa[0].pos, fa[1].pos) * kAngstromPerBohr, 1.205, 1e-6);
  EXPECT_DOUBLE_EQ(electron_count(fa), 16.0);
}

TEST(Molecules, TetrahedralBondLengths) {
  const auto ch4 = methane();
  ASSERT_EQ(ch4.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_NEAR(distance(ch4[0].pos, ch4[i].pos) * kAngstromPerBohr, 1.087,
                1e-9);
  }
  const auto sih4 = silane();
  EXPECT_NEAR(distance(sih4[0].pos, sih4[1].pos) * kAngstromPerBohr, 1.480,
              1e-9);
}

class ChainLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainLength, PolyethyleneComposition) {
  const std::size_t n = GetParam();
  const auto atoms = polyethylene_chain(n);
  // H(C2H4)nH: 2n carbons, 4n+2 hydrogens.
  EXPECT_EQ(atoms.size(), 6 * n + 2);
  std::size_t carbons = 0;
  std::size_t hydrogens = 0;
  for (const AtomSite& a : atoms) {
    if (a.z == 6) ++carbons;
    if (a.z == 1) ++hydrogens;
  }
  EXPECT_EQ(carbons, 2 * n);
  EXPECT_EQ(hydrogens, 4 * n + 2);
  // Atoms never overlap.
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_GT(distance(atoms[i].pos, atoms[j].pos), 1.2)
          << "atoms " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLength,
                         ::testing::Values(1, 2, 3, 6, 12));

TEST(Molecules, ChainLengthMatchesPaperAxis) {
  // Fig. 16 sweeps 14 -> 50 atoms: n = 2 gives 14 atoms, n = 8 gives 50.
  EXPECT_EQ(polyethylene_chain(2).size(), 14u);
  EXPECT_EQ(polyethylene_chain(8).size(), 50u);
}

TEST(Molecules, ZincBlendeCluster) {
  const auto bn = zinc_blende_cluster(5, 7, 1.567);
  ASSERT_EQ(bn.size(), 8u);
  std::size_t boron = 0;
  for (const AtomSite& a : bn) {
    if (a.z == 5) ++boron;
  }
  EXPECT_EQ(boron, 4u);
  // Nearest-neighbor distance between unlike atoms = bond length.
  double min_unlike = 1e9;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < i; ++j)
      if (bn[i].z != bn[j].z)
        min_unlike = std::min(min_unlike, distance(bn[i].pos, bn[j].pos));
  EXPECT_NEAR(min_unlike * kAngstromPerBohr, 1.567, 1e-9);
  EXPECT_DOUBLE_EQ(electron_count(bn), 48.0);
}

TEST(Molecules, RejectsEmptyChain) {
  EXPECT_THROW(polyethylene_chain(0), Error);
}

}  // namespace
}  // namespace swraman::molecules
