#include "core/xyz.hpp"

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "core/molecules.hpp"

namespace swraman::core {
namespace {

TEST(Xyz, ParsesWellFormedInput) {
  const std::string text =
      "3\n"
      "water molecule\n"
      "O   0.000000  0.000000  0.000000\n"
      "H   0.757000  0.000000  0.586000\n"
      "H  -0.757000  0.000000  0.586000\n";
  const auto atoms = parse_xyz(text);
  ASSERT_EQ(atoms.size(), 3u);
  EXPECT_EQ(atoms[0].z, 8);
  EXPECT_EQ(atoms[1].z, 1);
  EXPECT_NEAR(atoms[1].pos.x, 0.757 * kBohrPerAngstrom, 1e-9);
}

TEST(Xyz, RoundTripPreservesGeometry) {
  const auto original = molecules::hydrogen_disulfide();
  const std::string text = write_xyz(original, "H2S2");
  const auto back = parse_xyz(text);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(back[i].z, original[i].z);
    EXPECT_NEAR(distance(back[i].pos, original[i].pos), 0.0, 1e-6);
  }
}

TEST(Xyz, RejectsMalformedInput) {
  EXPECT_THROW(parse_xyz(""), Error);
  EXPECT_THROW(parse_xyz("abc\ncomment\n"), Error);
  EXPECT_THROW(parse_xyz("2\ncomment\nH 0 0 0\n"), Error);  // truncated
  EXPECT_THROW(parse_xyz("1\ncomment\nQq 0 0 0\n"), Error); // unknown symbol
  EXPECT_THROW(parse_xyz("1\ncomment\nH 0 0\n"), Error);    // missing coord
}

TEST(Xyz, LoadRejectsMissingFile) {
  EXPECT_THROW(load_xyz("/nonexistent/path.xyz"), Error);
}

TEST(Xyz, CommentLineMayBeEmpty) {
  const auto atoms = parse_xyz("1\n\nHe 1.0 2.0 3.0\n");
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_EQ(atoms[0].z, 2);
}

}  // namespace
}  // namespace swraman::core
