#include "linalg/cholesky.hpp"

#include <random>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::linalg {
namespace {

Matrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = dist(rng);
  Matrix spd = a_bt(m, m);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Cholesky, FactorizationReconstructs) {
  const Matrix b = random_spd(15, 11);
  const Cholesky chol(b);
  const Matrix l = chol.lower();
  const Matrix rec = a_bt(l, l);
  EXPECT_NEAR((rec - b).max_abs(), 0.0, 1e-10);
  // Strictly lower-triangular factor.
  for (std::size_t i = 0; i < l.rows(); ++i)
    for (std::size_t j = i + 1; j < l.cols(); ++j)
      EXPECT_DOUBLE_EQ(l(i, j), 0.0);
}

TEST(Cholesky, SolveRecoversSolution) {
  const Matrix b = random_spd(10, 5);
  std::vector<double> x_true(10);
  for (std::size_t i = 0; i < 10; ++i)
    x_true[i] = static_cast<double>(i) - 4.5;
  const std::vector<double> rhs = matvec(b, x_true);
  const std::vector<double> x = Cholesky(b).solve(rhs);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Cholesky, TriangularSolves) {
  const Matrix b = random_spd(8, 9);
  const Cholesky chol(b);
  const Matrix x = random_spd(8, 10);
  // L (L^-1 X) = X.
  const Matrix y = chol.solve_lower(x);
  const Matrix lx = chol.lower() * y;
  EXPECT_NEAR((lx - x).max_abs(), 0.0, 1e-10);
  // L^T (L^-T X) = X.
  const Matrix z = chol.solve_lower_transposed(x);
  const Matrix ltz = chol.lower().transposed() * z;
  EXPECT_NEAR((ltz - x).max_abs(), 0.0, 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix m{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{m}, Error);
}

}  // namespace
}  // namespace swraman::linalg
