#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.trace(), 5.0);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, Error);
}

TEST(Matrix, TransposeAndHelpers) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);

  const Matrix b{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const Matrix c1 = at_b(a.transposed(), b);  // (a^T)^T b = a b
  const Matrix c2 = a * b;
  EXPECT_NEAR((c1 - c2).max_abs(), 0.0, 1e-14);

  const Matrix d1 = a_bt(a, b.transposed());  // a (b^T)^T = a b
  EXPECT_NEAR((d1 - c2).max_abs(), 0.0, 1e-14);
}

TEST(Matrix, TraceProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_DOUBLE_EQ(trace_product(a, b), (a * b).trace());
}

TEST(Matrix, Matvec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> y = matvec(a, {1.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, Symmetrize) {
  Matrix a{{1.0, 4.0}, {2.0, 3.0}};
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 3.0);
}

TEST(Matrix, NormAndMaxAbs) {
  const Matrix a{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

}  // namespace
}  // namespace swraman::linalg
