#include "linalg/lu.hpp"

#include <random>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::linalg {
namespace {

TEST(Lu, SolvesSmallSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> x = solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, Determinant) {
  EXPECT_NEAR(Lu(Matrix{{2.0, 0.0}, {0.0, 3.0}}).determinant(), 6.0, 1e-12);
  EXPECT_NEAR(Lu(Matrix{{0.0, 1.0}, {1.0, 0.0}}).determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Matrix a(12, 12);
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j) a(i, j) = dist(rng);
  for (std::size_t i = 0; i < 12; ++i) a(i, i) += 5.0;
  const Matrix inv = Lu(a).inverse();
  const Matrix id = a * inv;
  EXPECT_NEAR((id - Matrix::identity(12)).max_abs(), 0.0, 1e-10);
}

TEST(Lu, DetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const Lu lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve(std::vector<double>{1.0, 1.0}), Error);
}

TEST(Lu, SolvesWithPivotingRequired) {
  // Leading zero forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<double> x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, MatrixRhs) {
  const Matrix a{{3.0, 1.0}, {1.0, 2.0}};
  const Matrix b{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix x = Lu(a).solve(b);
  const Matrix check = a * x;
  EXPECT_NEAR((check - b).max_abs(), 0.0, 1e-12);
}

}  // namespace
}  // namespace swraman::linalg
