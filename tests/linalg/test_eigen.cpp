#include "linalg/eigen.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman::linalg {
namespace {

Matrix random_symmetric(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = dist(rng);
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

TEST(Eigh, DiagonalMatrix) {
  Matrix a{{3.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 2.0}};
  const EigenResult r = eigh(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(Eigh, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 1, 3.
  const EigenResult r = eigh(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
  // Eigenvectors (1,-1)/sqrt2 and (1,1)/sqrt2 up to sign.
  EXPECT_NEAR(std::abs(r.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
}

class EighRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EighRandom, ResidualAndOrthogonality) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 42 + static_cast<unsigned>(n));
  const EigenResult r = eigh(a);

  // Values ascending.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(r.values[i - 1], r.values[i]);

  // ||A v - lambda v|| small for every pair.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = r.vectors(i, j);
    const std::vector<double> av = matvec(a, v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], r.values[j] * v[i], 1e-10) << "n=" << n;
    }
  }

  // V^T V = I.
  const Matrix vtv = at_b(r.vectors, r.vectors);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-10);

  // Trace preserved.
  double sum = 0.0;
  for (double v : r.values) sum += v;
  EXPECT_NEAR(sum, a.trace(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighRandom,
                         ::testing::Values(1, 2, 3, 5, 10, 30, 80));

TEST(EighGeneralized, ReducesToStandardForIdentityMetric) {
  const Matrix a = random_symmetric(12, 7);
  const EigenResult g = eigh_generalized(a, Matrix::identity(12));
  const EigenResult s = eigh(a);
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_NEAR(g.values[i], s.values[i], 1e-10);
}

TEST(EighGeneralized, SolvesSecularEquation) {
  const std::size_t n = 20;
  const Matrix a = random_symmetric(n, 3);
  // SPD metric: B = M M^T + n I.
  Matrix b = random_symmetric(n, 4);
  b = a_bt(b, b);
  for (std::size_t i = 0; i < n; ++i) b(i, i) += static_cast<double>(n);

  const EigenResult r = eigh_generalized(a, b);
  // A V = B V diag(lambda).
  Matrix av = a * r.vectors;
  Matrix bv = b * r.vectors;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av(i, j), r.values[j] * bv(i, j), 1e-9);

  // V^T B V = I.
  const Matrix vbv = at_b(r.vectors, bv);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(vbv(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Tql2, SolvesTridiagonalDirectly) {
  // Second-difference matrix, eigenvalues 2 - 2 cos(k pi / (n+1)).
  const std::size_t n = 25;
  std::vector<double> d(n, 2.0);
  std::vector<double> e(n - 1, -1.0);
  Matrix z = Matrix::identity(n);
  tql2(d, e, &z);
  for (std::size_t k = 0; k < n; ++k) {
    const double exact =
        2.0 - 2.0 * std::cos(static_cast<double>(k + 1) * kPi /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(d[k], exact, 1e-10);
  }
}

}  // namespace
}  // namespace swraman::linalg
// -- appended coverage: degenerate spectra.

namespace swraman::linalg {
namespace {

TEST(Eigh, HandlesDegenerateEigenvalues) {
  // 2x identity block + distinct value: eigenvalues {1, 1, 4}.
  const Matrix a{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 4.0}};
  const EigenResult r = eigh(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
  EXPECT_NEAR(r.values[2], 4.0, 1e-12);
  // Degenerate eigenvectors still orthonormal.
  double dot01 = 0.0;
  for (std::size_t i = 0; i < 3; ++i) dot01 += r.vectors(i, 0) * r.vectors(i, 1);
  EXPECT_NEAR(dot01, 0.0, 1e-12);
}

TEST(Eigh, RotatedDegenerateBlock) {
  // Projector-like matrix with eigenvalues {0, 2, 2}.
  Matrix a{{2.0, 0.0, 0.0}, {0.0, 1.0, 1.0}, {0.0, 1.0, 1.0}};
  const EigenResult r = eigh(a);
  EXPECT_NEAR(r.values[0], 0.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 2.0, 1e-12);
}

}  // namespace
}  // namespace swraman::linalg
