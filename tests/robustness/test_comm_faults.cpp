#include "parallel/comm.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "robustness/fault.hpp"

namespace swraman::parallel {
namespace {

// Fast-failing policy so timeout paths resolve in milliseconds.
CommConfig quick_config() {
  CommConfig cfg;
  cfg.recv_timeout_s = 0.05;
  cfg.recv_retries = 1;
  cfg.send_retries = 8;
  cfg.backoff_base_s = 1e-5;
  cfg.backoff_max_s = 1e-3;
  cfg.stall_s = 1e-4;
  return cfg;
}

TEST(CommFaults, DroppedSendsAreRetransmitted) {
  fault::ScopedFaults guard;
  fault::FaultInjector::instance().set_seed(11);
  fault::FaultSpec spec;
  // Drop a quarter of all message attempts. The retry budget (8) makes
  // exhaustion astronomically unlikely (0.25^9 per send) even though
  // thread interleaving decides which rank consumes which RNG draw.
  spec.probability = 0.25;
  fault::FaultInjector::instance().configure(fault::kCommSendDrop, spec);
  run_spmd(
      2,
      [](Communicator& comm) {
        for (int round = 0; round < 20; ++round) {
          if (comm.rank() == 0) {
            comm.send(1, {1.0 * round, 2.0, 3.0}, round);
            const std::vector<double> back = comm.recv(1, 100 + round);
            ASSERT_EQ(back.size(), 1u);
            EXPECT_DOUBLE_EQ(back[0], round + 0.5);
          } else {
            const std::vector<double> msg = comm.recv(0, round);
            ASSERT_EQ(msg.size(), 3u);
            EXPECT_DOUBLE_EQ(msg[0], 1.0 * round);
            comm.send(0, {round + 0.5}, 100 + round);
          }
        }
      },
      quick_config());
}

TEST(CommFaults, SendRetryBudgetExhaustionThrowsTimeout) {
  fault::ScopedFaults guard;
  fault::FaultSpec spec;
  spec.probability = 1.0;  // every attempt dropped
  fault::FaultInjector::instance().configure(fault::kCommSendDrop, spec);
  EXPECT_THROW(run_spmd(
                   2,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) comm.send(1, {1.0});
                     // rank 1 exits; its mailbox dies with the context.
                   },
                   quick_config()),
               TimeoutError);
}

TEST(CommFaults, RecvFromSilentPeerTimesOut) {
  fault::ScopedFaults guard;  // no faults needed: the peer just never sends
  EXPECT_THROW(run_spmd(
                   2,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) {
                       (void)comm.recv(1, 7);
                     }
                   },
                   quick_config()),
               TimeoutError);
}

TEST(CommFaults, AllreduceSurvivesMessageDrops) {
  fault::ScopedFaults guard;
  fault::FaultInjector::instance().set_seed(3);
  fault::FaultSpec spec;
  spec.probability = 0.1;
  fault::FaultInjector::instance().configure(fault::kCommSendDrop, spec);
  for (const AllreduceAlgorithm alg :
       {AllreduceAlgorithm::Linear, AllreduceAlgorithm::Ring,
        AllreduceAlgorithm::RecursiveDoubling,
        AllreduceAlgorithm::ReduceScatterAllgather}) {
    run_spmd(
        4,
        [alg](Communicator& comm) {
          std::vector<double> data(17);
          for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<double>(comm.rank() + i);
          }
          comm.allreduce(data, alg);
          for (std::size_t i = 0; i < data.size(); ++i) {
            // sum over ranks r of (r + i) = 6 + 4i
            EXPECT_DOUBLE_EQ(data[i], 6.0 + 4.0 * i) << "element " << i;
          }
        },
        quick_config());
  }
}

TEST(CommFaults, BarrierSurvivesInjectedStalls) {
  fault::ScopedFaults guard;
  fault::FaultInjector::instance().set_seed(5);
  fault::FaultSpec spec;
  spec.probability = 0.5;
  fault::FaultInjector::instance().configure(fault::kCommStall, spec);
  run_spmd(
      3,
      [](Communicator& comm) {
        for (int i = 0; i < 5; ++i) comm.barrier();
      },
      quick_config());
}

TEST(CommFaults, RecvDelayInjectionDoesNotLoseData) {
  fault::ScopedFaults guard;
  fault::FaultSpec spec;
  spec.probability = 1.0;  // every recv pays the injected delay
  fault::FaultInjector::instance().configure(fault::kCommRecvDelay, spec);
  run_spmd(
      2,
      [](Communicator& comm) {
        if (comm.rank() == 0) {
          comm.send(1, {4.25}, 1);
        } else {
          const std::vector<double> msg = comm.recv(0, 1);
          ASSERT_EQ(msg.size(), 1u);
          EXPECT_DOUBLE_EQ(msg[0], 4.25);
        }
      },
      quick_config());
}

}  // namespace
}  // namespace swraman::parallel
