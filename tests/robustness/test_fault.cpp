#include "robustness/fault.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::fault {
namespace {

std::vector<bool> sequence(FaultInjector& inj, const char* site, int n) {
  std::vector<bool> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) seq.push_back(inj.should_fire(site));
  return seq;
}

int fires(const std::vector<bool>& seq) {
  int n = 0;
  for (const bool f : seq) n += f ? 1 : 0;
  return n;
}

TEST(FaultInjector, UnarmedNeverFires) {
  ScopedFaults guard;
  EXPECT_FALSE(FaultInjector::instance().armed());
  EXPECT_FALSE(should_fire(kDmaFail));
  EXPECT_FALSE(should_fire(kCpeDeath));
}

TEST(FaultInjector, SameSeedReplaysTheSameSequence) {
  ScopedFaults guard;
  FaultInjector& inj = FaultInjector::instance();
  inj.set_seed(42);
  FaultSpec spec;
  spec.probability = 0.3;
  inj.configure(kDmaFail, spec);
  const std::vector<bool> a = sequence(inj, kDmaFail, 200);
  inj.set_seed(42);  // replay from the beginning of the site's stream
  const std::vector<bool> b = sequence(inj, kDmaFail, 200);
  EXPECT_EQ(a, b);
  // The rate is roughly Binomial(200, 0.3).
  EXPECT_GT(fires(a), 25);
  EXPECT_LT(fires(a), 110);
  // A different seed yields a different stream.
  inj.set_seed(43);
  EXPECT_NE(a, sequence(inj, kDmaFail, 200));
}

TEST(FaultInjector, SitesAreInterleavingIndependent) {
  ScopedFaults guard;
  FaultInjector& inj = FaultInjector::instance();
  inj.set_seed(7);
  FaultSpec spec;
  spec.probability = 0.5;
  inj.configure(kDmaFail, spec);
  inj.configure(kRmaDrop, spec);
  const std::vector<bool> alone = sequence(inj, kDmaFail, 100);
  inj.set_seed(7);
  std::vector<bool> interleaved;
  for (int i = 0; i < 100; ++i) {
    interleaved.push_back(inj.should_fire(kDmaFail));
    (void)inj.should_fire(kRmaDrop);  // extra visits to another site
    (void)inj.should_fire(kRmaDrop);
  }
  // kDmaFail's per-site stream does not see kRmaDrop's draws.
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultInjector, FireAtTriggersExactlyOnThatVisit) {
  ScopedFaults guard;
  FaultInjector& inj = FaultInjector::instance();
  FaultSpec spec;
  spec.fire_at = 5;
  inj.configure(kCpeDeath, spec);
  for (int visit = 1; visit <= 10; ++visit) {
    EXPECT_EQ(inj.should_fire(kCpeDeath), visit == 5) << "visit " << visit;
  }
  const SiteStats s = inj.stats(kCpeDeath);
  EXPECT_EQ(s.visits, 10u);
  EXPECT_EQ(s.fires, 1u);
}

TEST(FaultInjector, MaxCapsTotalFires) {
  ScopedFaults guard;
  FaultInjector& inj = FaultInjector::instance();
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 3;
  inj.configure(kScfDiverge, spec);
  const std::vector<bool> seq = sequence(inj, kScfDiverge, 10);
  EXPECT_EQ(fires(seq), 3);
  EXPECT_TRUE(seq[0] && seq[1] && seq[2]);
  EXPECT_FALSE(seq[3]);
}

TEST(FaultInjector, ParsesTheSpecGrammar) {
  ScopedFaults guard;
  FaultInjector& inj = FaultInjector::instance();
  inj.configure_from_string(
      "sunway.dma.fail:p=1.0,max=2;scf.diverge:at=2");
  EXPECT_TRUE(inj.armed());
  EXPECT_TRUE(inj.should_fire(kDmaFail));
  EXPECT_TRUE(inj.should_fire(kDmaFail));
  EXPECT_FALSE(inj.should_fire(kDmaFail));  // max=2 reached
  EXPECT_FALSE(inj.should_fire(kScfDiverge));
  EXPECT_TRUE(inj.should_fire(kScfDiverge));  // at=2
  EXPECT_FALSE(inj.should_fire(kScfDiverge));  // at implies max=1
}

TEST(FaultInjector, RejectsMalformedSpecs) {
  ScopedFaults guard;
  FaultInjector& inj = FaultInjector::instance();
  EXPECT_THROW(inj.configure_from_string("no-colon-here"), Error);
  EXPECT_THROW(inj.configure_from_string("site:novalue"), Error);
  EXPECT_THROW(inj.configure_from_string("site:bogus=1"), Error);
  EXPECT_THROW(inj.configure_from_string(":p=0.5"), Error);
  FaultSpec bad;
  bad.probability = 1.5;
  EXPECT_THROW(inj.configure("site", bad), Error);
}

TEST(FaultInjector, RaiseThrowsFaultInjected) {
  EXPECT_THROW(FaultInjector::raise(kRamanKill), FaultInjected);
  EXPECT_THROW(FaultInjector::raise(kRamanKill), Error);  // derives from Error
  try {
    FaultInjector::raise(kRamanKill);
  } catch (const FaultInjected& e) {
    EXPECT_NE(std::string(e.what()).find(kRamanKill), std::string::npos);
  }
}

TEST(FaultInjector, ScopedFaultsClearsOnExit) {
  {
    ScopedFaults guard;
    FaultSpec spec;
    spec.probability = 1.0;
    FaultInjector::instance().configure(kDmaFail, spec);
    EXPECT_TRUE(FaultInjector::instance().armed());
  }
  EXPECT_FALSE(FaultInjector::instance().armed());
  EXPECT_FALSE(should_fire(kDmaFail));
}

}  // namespace
}  // namespace swraman::fault
