// End-to-end fault-tolerance coverage: the stack must produce the same
// physics with faults injected (retried DMA, dropped RMA messages, dead
// CPEs, forced SCF/DFPT divergence) as without, and a killed Raman run
// must resume from its checkpoint re-evaluating only the missing
// geometries.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "raman/raman.hpp"
#include "robustness/fault.hpp"
#include "scf/scf_engine.hpp"
#include "sunway/cpe_cluster.hpp"
#include "sunway/rma_reduce.hpp"

namespace swraman {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using fault::ScopedFaults;

// Coarse-but-stable settings keep the many SCF solutions in these tests
// cheap; both the clean and the faulty run use the same settings, so the
// comparisons are exact up to the injected-fault recovery.
scf::ScfOptions fast_scf() {
  scf::ScfOptions o;
  o.species.tier = basis::Tier::Minimal;
  o.grid.n_radial = 16;
  o.grid.angular_order = 7;
  return o;
}

std::vector<grid::AtomSite> h2() {
  return {{1, {0.0, 0.0, 0.0}}, {1, {0.0, 0.0, 1.45}}};
}

std::vector<grid::AtomSite> water() {
  return {{8, {0.0, 0.0, 0.2217}},
          {1, {0.0, 1.4309, -0.8867}},
          {1, {0.0, -1.4309, -0.8867}}};
}

raman::RamanOptions fast_raman() {
  raman::RamanOptions o;
  o.vibrations.scf = fast_scf();
  // Tight response tolerance: a recovered DFPT cycle must land on the
  // same polarizability to well under the 1e-8 the activity comparison
  // demands after the 1/(2*0.01) finite-difference amplification.
  o.dfpt.tol = 1e-10;
  return o;
}

// --- Sunway layer -------------------------------------------------------

TEST(SunwayFaults, DmaRetriesAreChargedAndSurvivable) {
  ScopedFaults guard;
  FaultInjector::instance().set_seed(17);
  FaultSpec spec;
  spec.probability = 0.05;
  FaultInjector::instance().configure(fault::kDmaFail, spec);

  sunway::CpeCluster cluster(sunway::sw26010pro());
  std::vector<double> src(1024, 1.5);
  std::vector<double> sums(64, 0.0);
  cluster.run([&](sunway::CpeContext& ctx) {
    const auto [lo, hi] = ctx.my_slice(src.size());
    std::vector<double> ldm(hi - lo);
    ctx.dma_get(ldm.data(), src.data() + lo, hi - lo);
    double s = 0.0;
    for (const double v : ldm) s += v;
    ctx.dma_put(&s, &sums[static_cast<std::size_t>(ctx.id())], 1);
  });
  // Numerics unaffected by the retried transfers.
  const double total = std::accumulate(sums.begin(), sums.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 1024 * 1.5);
  // Failed attempts occupied the DMA engine: more transfers than the
  // fault-free 2 per CPE.
  EXPECT_GT(cluster.total().dma_transfers, 128.0);
}

TEST(SunwayFaults, PersistentDmaFailureThrowsTimeout) {
  ScopedFaults guard;
  FaultSpec spec;
  spec.probability = 1.0;
  FaultInjector::instance().configure(fault::kDmaFail, spec);
  sunway::CpeCluster cluster(sunway::sw26010pro());
  double x = 0.0;
  EXPECT_THROW(cluster.run([&](sunway::CpeContext& ctx) {
    double ldm = 0.0;
    ctx.dma_get(&ldm, &x, 1);
  }),
               TimeoutError);
}

TEST(SunwayFaults, DeadCpeWorkIsAdoptedBySurvivors) {
  ScopedFaults guard;
  FaultSpec spec;
  spec.fire_at = 3;  // the third CPE rolled dies on the first launch
  FaultInjector::instance().configure(fault::kCpeDeath, spec);

  sunway::CpeCluster cluster(sunway::sw26010pro());
  std::vector<double> out(64, 0.0);
  const auto kernel = [&](sunway::CpeContext& ctx) {
    out[static_cast<std::size_t>(ctx.id())] =
        static_cast<double>(ctx.id()) + 1.0;
    ctx.charge_flops(10.0);
  };
  cluster.run(kernel);
  EXPECT_EQ(cluster.n_dead(), 1);
  // Every logical CPE's result is present — the dead CPE's slice was
  // re-run by a survivor under the dead CPE's logical id.
  for (std::size_t id = 0; id < 64; ++id) {
    EXPECT_DOUBLE_EQ(out[id], static_cast<double>(id) + 1.0) << "id " << id;
  }
  // The adopter was charged for the extra run: total flops unchanged, one
  // counter slot empty (the dead CPE's own) and one doubled.
  EXPECT_DOUBLE_EQ(cluster.total().flops, 640.0);
  const auto& per = cluster.per_cpe();
  int empty = 0;
  int doubled = 0;
  for (const auto& c : per) {
    if (c.flops == 0.0) ++empty;
    if (c.flops == 20.0) ++doubled;
  }
  EXPECT_EQ(empty, 1);
  EXPECT_EQ(doubled, 1);

  // Death is sticky across launches until reset().
  cluster.run(kernel);
  EXPECT_EQ(cluster.n_dead(), 1);
  cluster.reset();
  EXPECT_EQ(cluster.n_dead(), 0);
}

TEST(SunwayFaults, AllCpesDeadRaisesFaultInjected) {
  ScopedFaults guard;
  FaultSpec spec;
  spec.probability = 1.0;
  FaultInjector::instance().configure(fault::kCpeDeath, spec);
  sunway::CpeCluster cluster(sunway::sw26010pro());
  EXPECT_THROW(cluster.run([](sunway::CpeContext&) {}), FaultInjected);
}

TEST(SunwayFaults, RmaDropsAreRetransmittedExactly) {
  ScopedFaults guard;
  FaultInjector::instance().set_seed(23);
  FaultSpec spec;
  spec.probability = 0.05;
  FaultInjector::instance().configure(fault::kRmaDrop, spec);

  std::vector<std::vector<sunway::Contribution>> contributions(8);
  for (std::size_t cpe = 0; cpe < 8; ++cpe) {
    for (std::size_t k = 0; k < 200; ++k) {
      contributions[cpe].push_back(
          {(cpe * 97 + k * 13) % 500, 0.25 * static_cast<double>(cpe + k)});
    }
  }
  std::vector<double> expected(500, 0.0);
  sunway::serial_array_reduction(contributions, expected);

  std::vector<double> got(500, 0.0);
  const sunway::RmaReduceStats stats =
      sunway::rma_array_reduction(contributions, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    // fp associativity: routed accumulation order differs from serial.
    EXPECT_NEAR(got[i], expected[i], 1e-9) << "index " << i;
  }
  // Retransmissions happened and were charged against the mesh.
  EXPECT_GT(stats.rma_retransmits, 0.0);
  EXPECT_GT(stats.rma_messages, stats.updates / 64.0);
}

// --- Numerics layer -----------------------------------------------------

TEST(NumericsFaults, ScfRecoversFromInjectedDivergence) {
  const auto atoms = h2();
  scf::GroundState clean;
  {
    ScopedFaults guard;
    scf::ScfEngine engine(atoms, fast_scf());
    clean = engine.solve();
    ASSERT_TRUE(clean.converged);
  }
  ScopedFaults guard;
  FaultSpec spec;
  spec.fire_at = 3;  // poison the density mid-cycle, once
  FaultInjector::instance().configure(fault::kScfDiverge, spec);
  scf::ScfEngine engine(atoms, fast_scf());
  const scf::GroundState recovered = engine.solve();
  EXPECT_TRUE(recovered.converged);
  EXPECT_EQ(FaultInjector::instance().stats(fault::kScfDiverge).fires, 1u);
  // The restarted cycle converges to the same ground state.
  EXPECT_NEAR(recovered.total_energy, clean.total_energy, 1e-6);
}

TEST(NumericsFaults, ScfExhaustedRecoveryThrowsConvergenceError) {
  ScopedFaults guard;
  FaultSpec spec;
  spec.probability = 1.0;  // every attempt diverges immediately
  FaultInjector::instance().configure(fault::kScfDiverge, spec);
  scf::ScfEngine engine(h2(), fast_scf());
  EXPECT_THROW(engine.solve(), ConvergenceError);
}

TEST(NumericsFaults, DfptRecoversFromInjectedDivergence) {
  const auto atoms = h2();
  scf::ScfOptions so = fast_scf();
  scf::ScfEngine engine(atoms, so);
  const scf::GroundState gs = engine.solve();
  ASSERT_TRUE(gs.converged);
  dfpt::DfptOptions dopt;
  dopt.tol = 1e-10;

  linalg::Matrix clean;
  {
    ScopedFaults guard;
    dfpt::DfptEngine dfpt(engine, gs, dopt);
    clean = dfpt.polarizability();
  }
  ScopedFaults guard;
  FaultSpec spec;
  spec.fire_at = 1;  // first response iteration blows up
  FaultInjector::instance().configure(fault::kDfptDiverge, spec);
  dfpt::DfptEngine dfpt(engine, gs, dopt);
  const linalg::Matrix recovered = dfpt.polarizability();
  EXPECT_EQ(FaultInjector::instance().stats(fault::kDfptDiverge).fires, 1u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(recovered(i, j), clean(i, j), 1e-8)
          << "alpha(" << i << "," << j << ")";
    }
  }
}

TEST(NumericsFaults, DfptExhaustedRecoveryThrowsConvergenceError) {
  scf::ScfEngine engine(h2(), fast_scf());
  const scf::GroundState gs = engine.solve();
  ASSERT_TRUE(gs.converged);
  ScopedFaults guard;
  FaultSpec spec;
  spec.probability = 1.0;
  FaultInjector::instance().configure(fault::kDfptDiverge, spec);
  dfpt::DfptEngine dfpt(engine, gs);
  EXPECT_THROW(dfpt.polarizability(), ConvergenceError);
}

// --- Full pipeline ------------------------------------------------------

raman::RamanSpectrum clean_water_spectrum() {
  static const raman::RamanSpectrum spec = [] {
    ScopedFaults guard;
    raman::RamanCalculator calc(water(), fast_raman());
    return calc.compute();
  }();
  return spec;
}

TEST(PipelineFaults, WaterRamanMatchesFaultFreeUnderInjectedFaults) {
  const raman::RamanSpectrum clean = clean_water_spectrum();
  ASSERT_FALSE(clean.modes.empty());

  ScopedFaults guard;
  FaultInjector& inj = FaultInjector::instance();
  inj.set_seed(5);
  // The ISSUE's acceptance scenario: ~1% DMA failures, ~1% RMA drops, one
  // CPE death, one DFPT divergence. The sunway sites stay armed for any
  // kernel the pipeline touches; the DFPT divergence forces an actual
  // recovery inside the displaced-geometry loop.
  inj.configure_from_string(
      "sunway.dma.fail:p=0.01;sunway.rma.drop:p=0.01;"
      "sunway.cpe.death:at=1;dfpt.diverge:at=1");

  raman::RamanCalculator calc(water(), fast_raman());
  const raman::RamanSpectrum faulty = calc.compute();
  EXPECT_EQ(inj.stats(fault::kDfptDiverge).fires, 1u);

  ASSERT_EQ(faulty.modes.size(), clean.modes.size());
  EXPECT_EQ(faulty.n_polarizabilities, clean.n_polarizabilities);
  for (std::size_t m = 0; m < clean.modes.size(); ++m) {
    // The Hessian path is untouched, so frequencies are bit-identical;
    // activities go through the recovered DFPT solution and must agree
    // to 1e-8.
    EXPECT_DOUBLE_EQ(faulty.modes[m].frequency_cm,
                     clean.modes[m].frequency_cm);
    EXPECT_NEAR(faulty.modes[m].activity, clean.modes[m].activity, 1e-8)
        << "mode " << m;
    EXPECT_NEAR(faulty.modes[m].depolarization,
                clean.modes[m].depolarization, 1e-8);
  }
}

TEST(PipelineFaults, CheckpointResumeRecomputesOnlyMissingGeometries) {
  const std::string path = ::testing::TempDir() + "raman_resume_ckpt.txt";
  std::remove(path.c_str());
  const auto atoms = h2();  // 3N = 6 coordinates, 12 displaced geometries

  raman::RamanOptions opt = fast_raman();
  raman::RamanSpectrum clean;
  {
    ScopedFaults guard;
    raman::RamanCalculator calc(atoms, opt);
    clean = calc.compute();
    EXPECT_EQ(calc.n_polarizabilities(), 12);
  }

  opt.checkpoint_path = path;
  {
    // First run is killed after 5 freshly computed geometries.
    ScopedFaults guard;
    FaultSpec spec;
    spec.fire_at = 5;
    FaultInjector::instance().configure(fault::kRamanKill, spec);
    raman::RamanCalculator calc(atoms, opt);
    EXPECT_THROW(calc.compute(), FaultInjected);
    EXPECT_EQ(calc.n_polarizabilities(), 5);
  }
  {
    // The restarted run replays the checkpoint and evaluates only the
    // 12 - 5 missing geometries, reproducing the clean spectrum exactly.
    ScopedFaults guard;
    raman::RamanCalculator calc(atoms, opt);
    const raman::RamanSpectrum resumed = calc.compute();
    EXPECT_EQ(calc.n_polarizabilities(), 7);
    ASSERT_EQ(resumed.modes.size(), clean.modes.size());
    for (std::size_t m = 0; m < clean.modes.size(); ++m) {
      EXPECT_DOUBLE_EQ(resumed.modes[m].frequency_cm,
                       clean.modes[m].frequency_cm);
      EXPECT_NEAR(resumed.modes[m].activity, clean.modes[m].activity, 1e-10);
      EXPECT_NEAR(resumed.modes[m].ir_intensity, clean.modes[m].ir_intensity,
                  1e-10);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swraman
