#include "raman/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace swraman::raman {
namespace {

std::vector<grid::AtomSite> water() {
  return {{8, {0.0, 0.0, 0.2217}},
          {1, {0.0, 1.4309, -0.8867}},
          {1, {0.0, -1.4309, -0.8867}}};
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

GeometryRecord sample_record(double base) {
  GeometryRecord r;
  for (std::size_t i = 0; i < 9; ++i) {
    // Awkward non-representable values exercise the %.17g round-trip.
    r.alpha[i] = base + static_cast<double>(i) / 3.0;
  }
  r.dipole = {base * 0.1, -base * 0.2, base / 7.0};
  return r;
}

TEST(Checkpoint, InactiveByDefault) {
  Checkpoint ckpt;
  EXPECT_FALSE(ckpt.active());
  EXPECT_EQ(ckpt.lookup(0, +1), nullptr);
  ckpt.record(0, +1, sample_record(1.0));  // no-op, no crash
  EXPECT_EQ(ckpt.size(), 0u);
}

TEST(Checkpoint, RoundTripsRecordsAtFullPrecision) {
  const std::string path = temp_path("ckpt_roundtrip.txt");
  std::remove(path.c_str());
  const auto atoms = water();
  {
    Checkpoint ckpt(path, atoms, 0.01);
    EXPECT_TRUE(ckpt.active());
    EXPECT_EQ(ckpt.size(), 0u);
    ckpt.record(0, +1, sample_record(1.0));
    ckpt.record(0, -1, sample_record(-2.0));
    ckpt.record(7, +1, sample_record(0.125));
  }
  Checkpoint resumed(path, atoms, 0.01);
  EXPECT_EQ(resumed.size(), 3u);
  EXPECT_EQ(resumed.lookup(1, +1), nullptr);
  EXPECT_EQ(resumed.lookup(7, -1), nullptr);
  const GeometryRecord* rec = resumed.lookup(0, -1);
  ASSERT_NE(rec, nullptr);
  const GeometryRecord expect = sample_record(-2.0);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(rec->alpha[i], expect.alpha[i]) << "alpha " << i;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rec->dipole[i], expect.dipole[i]) << "dipole " << i;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsDifferentGeometryOrDisplacement) {
  const std::string path = temp_path("ckpt_mismatch.txt");
  std::remove(path.c_str());
  const auto atoms = water();
  { Checkpoint ckpt(path, atoms, 0.01); }

  // Different displacement step.
  EXPECT_THROW(Checkpoint(path, atoms, 0.02), CheckpointError);
  // Moved atom.
  auto moved = atoms;
  moved[1].pos[2] += 0.1;
  EXPECT_THROW(Checkpoint(path, moved, 0.01), CheckpointError);
  // Different element.
  auto mutated = atoms;
  mutated[0].z = 7;
  EXPECT_THROW(Checkpoint(path, mutated, 0.01), CheckpointError);
  // Different atom count.
  auto fewer = atoms;
  fewer.pop_back();
  EXPECT_THROW(Checkpoint(path, fewer, 0.01), CheckpointError);
  // Original configuration still resumes fine.
  EXPECT_NO_THROW(Checkpoint(path, atoms, 0.01));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsForeignOrFutureFiles) {
  const std::string path = temp_path("ckpt_foreign.txt");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "not a checkpoint at all\n";
  }
  EXPECT_THROW(Checkpoint(path, water(), 0.01), CheckpointError);
  {
    std::ofstream out(path, std::ios::trunc);
    out << "swraman-raman-checkpoint 999\nsystem 9 0.01 0\n";
  }
  EXPECT_THROW(Checkpoint(path, water(), 0.01), CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, ToleratesTruncatedTrailingRecord) {
  const std::string path = temp_path("ckpt_truncated.txt");
  std::remove(path.c_str());
  const auto atoms = water();
  {
    Checkpoint ckpt(path, atoms, 0.01);
    ckpt.record(2, +1, sample_record(3.0));
    ckpt.record(2, -1, sample_record(4.0));
  }
  {
    // Simulate a crash mid-append: a half-written record at the tail.
    std::ofstream out(path, std::ios::app);
    out << "geom 3 + 1.5 2.5";
  }
  Checkpoint resumed(path, atoms, 0.01);
  EXPECT_EQ(resumed.size(), 2u);
  EXPECT_NE(resumed.lookup(2, +1), nullptr);
  EXPECT_EQ(resumed.lookup(3, +1), nullptr);  // truncated record dropped
  // Recording over a truncated tail keeps the file parseable.
  resumed.record(3, +1, sample_record(5.0));
  Checkpoint again(path, atoms, 0.01);
  EXPECT_EQ(again.size(), 3u);
  ASSERT_NE(again.lookup(3, +1), nullptr);
  EXPECT_EQ(again.lookup(3, +1)->alpha[0], sample_record(5.0).alpha[0]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swraman::raman
