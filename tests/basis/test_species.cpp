#include "basis/species.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::basis {
namespace {

TEST(Species, HydrogenMinimalHasOnly1s) {
  SpeciesOptions opt;
  opt.tier = Tier::Minimal;
  const Species sp = build_species(1, opt);
  ASSERT_EQ(sp.fns.size(), 1u);
  EXPECT_EQ(sp.fns[0].l, 0);
  EXPECT_EQ(sp.n_basis_functions(), 1u);
  EXPECT_DOUBLE_EQ(sp.z_valence, 1.0);
}

TEST(Species, HydrogenStandardAddsPolarization) {
  const Species& sp = species(1, {});
  ASSERT_EQ(sp.fns.size(), 2u);  // 1s + p
  EXPECT_EQ(sp.lmax(), 1);
  EXPECT_EQ(sp.n_basis_functions(), 4u);  // 1 + 3
}

TEST(Species, CarbonStandardShellCount) {
  const Species& sp = species(6, {});
  // 1s, 2s, 2p + d polarization.
  ASSERT_EQ(sp.fns.size(), 4u);
  EXPECT_EQ(sp.lmax(), 2);
  EXPECT_EQ(sp.n_basis_functions(), 1u + 1u + 3u + 5u);
}

TEST(Species, RadialFunctionsAreNormalized) {
  const Species& sp = species(8, {});
  for (const RadialFn& fn : sp.fns) {
    double norm = 0.0;
    for (std::size_t i = 0; i < sp.mesh.size(); ++i) {
      const double r = sp.mesh.r(i);
      const double v = sp.radial_value(fn, r);
      norm += v * v * r * r * sp.mesh.weight(i);
    }
    EXPECT_NEAR(norm, 1.0, 2e-2) << fn.label;
  }
}

TEST(Species, CutoffsAreRespected) {
  const Species& sp = species(6, {});
  for (const RadialFn& fn : sp.fns) {
    EXPECT_GT(fn.cutoff, 1.0);
    EXPECT_LE(fn.cutoff, sp.mesh.r_max());
    EXPECT_DOUBLE_EQ(sp.radial_value(fn, fn.cutoff + 0.1), 0.0);
  }
}

TEST(Species, FreeDensityIntegratesToElectronCount) {
  for (int z : {1, 6, 8}) {
    const Species& sp = species(z, {});
    double q = 0.0;
    for (std::size_t i = 0; i < sp.mesh.size(); ++i) {
      const double r = sp.mesh.r(i);
      q += sp.density_value(r) * kFourPi * r * r * sp.mesh.weight(i);
    }
    EXPECT_NEAR(q, static_cast<double>(z), 1e-3) << "Z=" << z;
  }
}

TEST(Species, PseudizedSpeciesValenceOnly) {
  SpeciesOptions opt;
  opt.pseudized = true;
  const Species& sp = species(14, opt);  // Si
  EXPECT_TRUE(sp.has_v_ion);
  EXPECT_DOUBLE_EQ(sp.z_valence, 4.0);
  // Only 3s/3p-derived functions (+ polarization d).
  for (const RadialFn& fn : sp.fns) {
    EXPECT_TRUE(fn.n >= 3 || fn.n >= 90) << fn.label;
  }
  // Ionic potential: Coulomb tail of the valence charge.
  EXPECT_NEAR(sp.v_ion_value(10.0), -4.0 / 10.0, 0.02);
  EXPECT_NEAR(sp.v_ion_value(40.0), -4.0 / 40.0, 1e-6);
}

TEST(Species, GtoBackendSplitsValence) {
  SpeciesOptions nao;
  SpeciesOptions gto;
  gto.backend = Backend::Gto;
  const Species& sp_nao = species(6, nao);
  const Species& sp_gto = species(6, gto);
  // GTO variant carries more functions (split valence), like 6-31G** vs a
  // minimal+pol NAO set.
  EXPECT_GT(sp_gto.n_basis_functions(), sp_nao.n_basis_functions());
}

TEST(Species, GtoFitReproducesSmoothOrbital) {
  // The 2s-like NAO of carbon is smooth away from the nucleus; its GTO fit
  // must track it closely there (Gaussians cannot do the cusp).
  SpeciesOptions gto;
  gto.backend = Backend::Gto;
  const Species& sp_gto = species(1, gto);
  const Species& sp_nao = species(1, {});
  const RadialFn& nao_1s = sp_nao.fns[0];
  const RadialFn& gto_1s = sp_gto.fns[0];
  for (double r : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    EXPECT_NEAR(sp_gto.radial_value(gto_1s, r), sp_nao.radial_value(nao_1s, r),
                0.05 * std::abs(sp_nao.radial_value(nao_1s, r)) + 5e-3)
        << "r=" << r;
  }
}

TEST(FitGaussians, ExactForGaussianInput) {
  const RadialMesh mesh(1e-4, 20.0, 400);
  std::vector<double> radial(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    radial[i] = std::exp(-0.7 * mesh.r(i) * mesh.r(i));
  }
  const std::vector<double> expo{0.3, 0.7, 1.5};
  const std::vector<double> c = fit_gaussians(mesh, radial, 0, expo);
  EXPECT_NEAR(c[0], 0.0, 1e-6);
  EXPECT_NEAR(c[1], 1.0, 1e-6);
  EXPECT_NEAR(c[2], 0.0, 1e-6);
}

TEST(Species, RejectsBadRequests) {
  EXPECT_THROW(build_species(0, {}), Error);
  SpeciesOptions bad;
  bad.backend = Backend::Gto;
  bad.pseudized = true;
  EXPECT_THROW(build_species(6, bad), Error);
}

}  // namespace
}  // namespace swraman::basis
