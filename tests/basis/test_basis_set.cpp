#include "basis/basis_set.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "grid/atom_grid.hpp"

namespace swraman::basis {
namespace {

std::vector<grid::AtomSite> h2() {
  return {{1, {0.0, 0.0, 0.0}}, {1, {0.0, 0.0, 1.4}}};
}

TEST(BasisSet, FunctionCountAndElectronCount) {
  const BasisSet bs(h2(), {});
  // Two H atoms, standard tier: (1s + 3 p) each.
  EXPECT_EQ(bs.size(), 8u);
  EXPECT_DOUBLE_EQ(bs.n_electrons(), 2.0);
}

TEST(BasisSet, LocalFunctionsFiltersByDistance) {
  std::vector<grid::AtomSite> far = {{1, {0.0, 0.0, 0.0}},
                                     {1, {0.0, 0.0, 40.0}}};
  const BasisSet bs(far, {});
  const std::vector<std::size_t> near_origin =
      bs.local_functions({0.0, 0.0, 0.0}, 1.0);
  for (std::size_t id : near_origin) {
    EXPECT_EQ(bs.functions()[id].atom, 0);
  }
  const std::vector<std::size_t> all =
      bs.local_functions({0.0, 0.0, 20.0}, 30.0);
  EXPECT_EQ(all.size(), bs.size());
}

TEST(BasisSet, OverlapOfNormalizedFunctionIsOne) {
  const std::vector<grid::AtomSite> atom = {{1, {0.0, 0.0, 0.0}}};
  const BasisSet bs(atom, {});
  const grid::MolecularGrid g = grid::build_molecular_grid(atom, {});

  linalg::Matrix values;
  std::vector<std::size_t> ids(bs.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  bs.evaluate(ids, g.points.data(), g.size(), values, nullptr);

  for (std::size_t k = 0; k < bs.size(); ++k) {
    double s = 0.0;
    for (std::size_t p = 0; p < g.size(); ++p) {
      s += g.weights[p] * values(k, p) * values(k, p);
    }
    EXPECT_NEAR(s, 1.0, 2e-2) << "fn " << k;
  }
}

TEST(BasisSet, DifferentMOnSameShellAreOrthogonal) {
  const std::vector<grid::AtomSite> atom = {{6, {0.0, 0.0, 0.0}}};
  const BasisSet bs(atom, {});
  grid::GridSettings gs;
  gs.level = grid::GridLevel::Tight;
  const grid::MolecularGrid g = grid::build_molecular_grid(atom, gs);

  linalg::Matrix values;
  std::vector<std::size_t> ids(bs.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  bs.evaluate(ids, g.points.data(), g.size(), values, nullptr);

  for (std::size_t a = 0; a < bs.size(); ++a) {
    for (std::size_t b = 0; b < a; ++b) {
      const BasisSet::Fn& fa = bs.functions()[a];
      const BasisSet::Fn& fb = bs.functions()[b];
      if (fa.l == fb.l && fa.m == fb.m) continue;  // same angular channel
      double s = 0.0;
      for (std::size_t p = 0; p < g.size(); ++p) {
        s += g.weights[p] * values(a, p) * values(b, p);
      }
      EXPECT_NEAR(s, 0.0, 1e-6) << "fns " << a << "," << b;
    }
  }
}

TEST(BasisSet, LaplacianGivesHydrogenicKineticEnergy) {
  // For the H-atom-like 1s NAO, <chi|-1/2 nabla^2|chi> should be close to
  // the free-atom kinetic energy (~0.28 Ha for the LDA H atom with mild
  // confinement; bounded well away from 0 and from 1).
  const std::vector<grid::AtomSite> atom = {{1, {0.0, 0.0, 0.0}}};
  SpeciesOptions opt;
  opt.tier = Tier::Minimal;
  const BasisSet bs(atom, opt);
  grid::GridSettings gs;
  gs.level = grid::GridLevel::Tight;
  const grid::MolecularGrid g = grid::build_molecular_grid(atom, gs);

  linalg::Matrix values;
  linalg::Matrix lap;
  const std::vector<std::size_t> ids{0};
  bs.evaluate(ids, g.points.data(), g.size(), values, &lap);
  double t = 0.0;
  for (std::size_t p = 0; p < g.size(); ++p) {
    t += -0.5 * g.weights[p] * values(0, p) * lap(0, p);
  }
  EXPECT_GT(t, 0.15);
  EXPECT_LT(t, 0.8);
}

TEST(BasisSet, FreeAtomDensitySuperposition) {
  const BasisSet bs(h2(), {});
  const grid::MolecularGrid g = grid::build_molecular_grid(h2(), {});
  double q = 0.0;
  for (std::size_t p = 0; p < g.size(); ++p) {
    q += g.weights[p] * bs.free_atom_density(g.points[p]);
  }
  EXPECT_NEAR(q, 2.0, 5e-3);
}

TEST(BasisSet, EvaluateEmptySelectionYieldsZeroSizedMatrix) {
  const BasisSet bs(h2(), {});
  linalg::Matrix values(1, 1, 7.0);
  const Vec3 p{0.0, 0.0, 0.0};
  bs.evaluate({}, &p, 1, values, nullptr);
  EXPECT_EQ(values.rows(), 0u);
}

}  // namespace
}  // namespace swraman::basis
