#include "scaling/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/workload.hpp"

namespace swraman::scaling {
namespace {

MachineModel sunway_machine() {
  MachineModel m;
  m.node = sunway::sw26010pro();
  return m;
}

RamanJob rbd_job() { return core::make_dfpt_job(core::rbd_protein()); }

TEST(GeometryJitter, DeterministicAndBounded) {
  for (std::size_t id = 0; id < 2000; ++id) {
    const double j = geometry_jitter(id);
    EXPECT_GE(j, -1.0);
    EXPECT_LE(j, 1.0);
    EXPECT_DOUBLE_EQ(j, geometry_jitter(id));
  }
  // Not constant.
  EXPECT_NE(geometry_jitter(1), geometry_jitter(2));
}

TEST(Simulator, IterationTimeDecreasesWithGroupSize) {
  const ScalabilitySimulator sim(rbd_job(), sunway_machine());
  const double t64 = sim.dfpt_iteration_time(64);
  const double t128 = sim.dfpt_iteration_time(128);
  const double t256 = sim.dfpt_iteration_time(256);
  EXPECT_GT(t64, t128);
  EXPECT_GT(t128, t256);
  // Not super-linear: halving processes cannot better-than-halve time.
  EXPECT_LT(t64, 2.2 * t128);
}

TEST(Simulator, StrongScalingMatchesPaperShape) {
  const ScalabilitySimulator sim(rbd_job(), sunway_machine(), 256);
  const std::vector<ScalingPoint> pts =
      sim.strong_scaling({10240, 20480, 51200, 153600, 300800});
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_EQ(pts.back().n_cores, 19552000u);  // the paper's headline count
  // Efficiency stays >= 80% up to 300,800 processes (paper: 84.5%).
  for (const ScalingPoint& p : pts) {
    EXPECT_GE(p.efficiency, 0.78) << p.n_processes;
    EXPECT_LE(p.efficiency, 1.001) << p.n_processes;
  }
  EXPECT_NEAR(pts.back().efficiency, 0.845, 0.07);
  // ~25x speedup from 10,240 to 300,800 processes.
  EXPECT_NEAR(pts.back().speedup, 25.0, 3.0);
  // Monotone time decrease.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].time_seconds, pts[i - 1].time_seconds);
  }
}

TEST(Simulator, WeakScalingMatchesPaperShape) {
  const ScalabilitySimulator sim(rbd_job(), sunway_machine(), 256);
  const std::vector<ScalingPoint> pts =
      sim.weak_scaling({2560, 10240, 48640, 138240, 300800});
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front().efficiency, 1.0);
  // Monotone efficiency decay ending near the paper's 84.4%.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i].efficiency, pts[i - 1].efficiency + 1e-12);
  }
  EXPECT_NEAR(pts.back().efficiency, 0.844, 0.06);
  // Times grow mildly (paper: 22345 -> 26472 s, +18%).
  EXPECT_GT(pts.back().time_seconds, pts.front().time_seconds);
  EXPECT_LT(pts.back().time_seconds, 1.4 * pts.front().time_seconds);
}

TEST(Simulator, SunwayVsXeonPerProcessRatio) {
  // Fig. 14: 9.7x at 64 tasks falling to ~7.8x at 256.
  const RamanJob job = rbd_job();
  MachineModel cpu;
  cpu.cpu = true;
  cpu.node = sunway::xeon_e5_2692v2();
  cpu.node.n_pes = 1;
  cpu.node.node_mem_bw_gbs /= 12.0;
  cpu.cores_per_process = 1;
  const ScalabilitySimulator sw(job, sunway_machine());
  const ScalabilitySimulator xe(job, cpu);
  const double r64 = xe.dfpt_iteration_time(64) / sw.dfpt_iteration_time(64);
  const double r256 =
      xe.dfpt_iteration_time(256) / sw.dfpt_iteration_time(256);
  EXPECT_NEAR(r64, 9.7, 1.5);
  EXPECT_NEAR(r256, 7.8, 1.2);
  EXPECT_GT(r64, r256);  // the declining trend
}

TEST(Simulator, MoreGroupsRaiseContention) {
  const ScalabilitySimulator sim(rbd_job(), sunway_machine());
  EXPECT_GT(sim.dfpt_iteration_time(256, 1000),
            sim.dfpt_iteration_time(256, 1));
}

TEST(Simulator, RejectsBadInput) {
  EXPECT_THROW(ScalabilitySimulator(rbd_job(), sunway_machine(), 0), Error);
  const ScalabilitySimulator sim(rbd_job(), sunway_machine());
  EXPECT_THROW(sim.simulate(0), Error);
  EXPECT_THROW(sim.strong_scaling({}), Error);
}

}  // namespace
}  // namespace swraman::scaling
