#include "scf/analysis.hpp"

#include <gtest/gtest.h>

#include "core/molecules.hpp"

namespace swraman::scf {
namespace {

struct WaterFixture {
  ScfEngine engine{molecules::water(), ScfOptions{}};
  GroundState gs = engine.solve();
};

const WaterFixture& water_fixture() {
  static const WaterFixture f;
  return f;
}

TEST(Mulliken, PopulationsSumToElectronCount) {
  const WaterFixture& f = water_fixture();
  const MullikenAnalysis m = mulliken(f.engine, f.gs);
  ASSERT_EQ(m.populations.size(), 3u);
  EXPECT_NEAR(m.total_electrons, 10.0, 1e-8);
  double qsum = 0.0;
  for (double q : m.charges) qsum += q;
  EXPECT_NEAR(qsum, 0.0, 1e-8);  // neutral molecule
}

TEST(Mulliken, OxygenIsNegativeHydrogensPositive) {
  const WaterFixture& f = water_fixture();
  const MullikenAnalysis m = mulliken(f.engine, f.gs);
  EXPECT_LT(m.charges[0], -0.1);  // O pulls density
  EXPECT_GT(m.charges[1], 0.05);
  EXPECT_GT(m.charges[2], 0.05);
  // C2v symmetry: both hydrogens identical.
  EXPECT_NEAR(m.charges[1], m.charges[2], 1e-6);
}

TEST(Mulliken, HomonuclearIsNeutral) {
  ScfEngine engine(molecules::h2(), {});
  const GroundState gs = engine.solve();
  const MullikenAnalysis m = mulliken(engine, gs);
  EXPECT_NEAR(m.charges[0], 0.0, 1e-6);
  EXPECT_NEAR(m.charges[1], 0.0, 1e-6);
}

TEST(OrbitalOnAtom, FractionsSumToOne) {
  const WaterFixture& f = water_fixture();
  // The O 1s core MO lives entirely on oxygen.
  EXPECT_NEAR(orbital_on_atom(f.engine, f.gs, 0, 0), 1.0, 1e-3);
  // Every occupied MO's atomic fractions sum to 1 (normalization).
  for (std::size_t mo = 0; mo < 5; ++mo) {
    double sum = 0.0;
    for (std::size_t a = 0; a < 3; ++a) {
      sum += orbital_on_atom(f.engine, f.gs, mo, a);
    }
    EXPECT_NEAR(sum, 1.0, 1e-8) << "MO " << mo;
  }
}

}  // namespace
}  // namespace swraman::scf
