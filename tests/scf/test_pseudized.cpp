#include <cmath>

#include <gtest/gtest.h>

#include "core/molecules.hpp"
#include "dfpt/dfpt_engine.hpp"
#include "scf/scf_engine.hpp"

// Integration tests of the pseudized (valence-only) molecular path — the
// Fig. 10 "Quantum ESPRESSO stand-in" (DESIGN.md).

namespace swraman::scf {
namespace {

struct Variants {
  GroundState ae;
  GroundState ps;
  double alpha_ae = 0.0;
  double alpha_ps = 0.0;
};

const Variants& silane_variants() {
  static const Variants v = [] {
    Variants out;
    const auto mol = molecules::silane();
    ScfOptions ae_opt;
    ae_opt.species.tier = basis::Tier::Minimal;
    ScfEngine ae_eng(mol, ae_opt);
    out.ae = ae_eng.solve();
    dfpt::DfptEngine ae_dfpt(ae_eng, out.ae);
    out.alpha_ae = dfpt::DfptEngine::isotropic(ae_dfpt.polarizability());

    ScfOptions ps_opt = ae_opt;
    ps_opt.species.pseudized = true;
    ScfEngine ps_eng(mol, ps_opt);
    out.ps = ps_eng.solve();
    dfpt::DfptEngine ps_dfpt(ps_eng, out.ps);
    out.alpha_ps = dfpt::DfptEngine::isotropic(ps_dfpt.polarizability());
    return out;
  }();
  return v;
}

TEST(Pseudized, SilaneBothVariantsConverge) {
  const Variants& v = silane_variants();
  EXPECT_TRUE(v.ae.converged);
  EXPECT_TRUE(v.ps.converged);
  // All-electron total energy carries the Si core (~ -280 Ha); the
  // valence-only energy is far shallower.
  EXPECT_LT(v.ae.total_energy, -200.0);
  EXPECT_GT(v.ps.total_energy, -50.0);
  EXPECT_LT(v.ps.total_energy, -1.0);
}

TEST(Pseudized, ValenceSpectraAgree) {
  // Occupied valence eigenvalues of SiH4: the pseudized spectrum tracks
  // the all-electron one to ~0.1 Ha (local single-channel potential).
  const Variants& v = silane_variants();
  std::vector<double> ae_val;
  for (std::size_t j = 0; j < v.ae.eigenvalues.size(); ++j) {
    if (v.ae.occupations[j] > 1.0 && v.ae.eigenvalues[j] > -2.0) {
      ae_val.push_back(v.ae.eigenvalues[j]);
    }
  }
  std::vector<double> ps_val;
  for (std::size_t j = 0; j < v.ps.eigenvalues.size(); ++j) {
    if (v.ps.occupations[j] > 1.0) ps_val.push_back(v.ps.eigenvalues[j]);
  }
  ASSERT_EQ(ae_val.size(), 4u);  // 4 valence MOs (8 valence electrons)
  ASSERT_EQ(ps_val.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(ps_val[j], ae_val[j], 0.15) << "MO " << j;
  }
}

TEST(Pseudized, PolarizabilityAgreesWithinModelError) {
  // Fig. 10's physics claim at the level our local pseudopotential can
  // deliver: same order, within ~15%.
  const Variants& v = silane_variants();
  EXPECT_GT(v.alpha_ae, 5.0);
  EXPECT_GT(v.alpha_ps, 5.0);
  EXPECT_NEAR(v.alpha_ps, v.alpha_ae, 0.18 * v.alpha_ae);
}

TEST(Pseudized, ElectronCounts) {
  const Variants& v = silane_variants();
  // AE: 14 + 4 = 18 electrons; pseudized: 4 + 4 = 8 valence electrons.
  double ae_n = 0.0;
  for (std::size_t j = 0; j < v.ae.occupations.size(); ++j) {
    ae_n += v.ae.occupations[j];
  }
  double ps_n = 0.0;
  for (std::size_t j = 0; j < v.ps.occupations.size(); ++j) {
    ps_n += v.ps.occupations[j];
  }
  EXPECT_NEAR(ae_n, 18.0, 1e-6);
  EXPECT_NEAR(ps_n, 8.0, 1e-6);
}

}  // namespace
}  // namespace swraman::scf
