#include <cmath>

#include <gtest/gtest.h>

#include "core/molecules.hpp"
#include "dfpt/dfpt_engine.hpp"
#include "parallel/comm.hpp"
#include "scf/scf_engine.hpp"

// Level-2 parallelization (paper Fig. 4): the SCF and DFPT engines
// distributed over thread ranks with Algorithm-1 batch ownership must
// reproduce the serial results to summation-order rounding.

namespace swraman::scf {
namespace {

GridPartition partition_for(parallel::Communicator& comm) {
  GridPartition p;
  p.rank = comm.rank();
  p.n_ranks = comm.size();
  p.allreduce = [&comm](double* data, std::size_t n) {
    std::vector<double> buf(data, data + n);
    comm.allreduce(buf, parallel::AllreduceAlgorithm::ReduceScatterAllgather);
    std::copy(buf.begin(), buf.end(), data);
  };
  return p;
}

// Full overlap wiring: blocking reductions go hierarchical, and the
// engine's *_async paths start genuine non-blocking collectives.
GridPartition overlapped_partition_for(parallel::Communicator& comm) {
  GridPartition p;
  p.rank = comm.rank();
  p.n_ranks = comm.size();
  p.allreduce = [&comm](double* data, std::size_t n) {
    std::vector<double> buf(data, data + n);
    comm.allreduce(buf, parallel::AllreduceAlgorithm::Hierarchical);
    std::copy(buf.begin(), buf.end(), data);
  };
  p.iallreduce = [&comm](double* data, std::size_t n) {
    std::vector<double> buf(data, data + n);
    auto req = std::make_shared<parallel::AllreduceRequest>(
        comm.iallreduce(std::move(buf), parallel::AllreduceAlgorithm::Auto));
    return [req, data]() {
      const std::vector<double> out = req->wait();
      std::copy(out.begin(), out.end(), data);
    };
  };
  return p;
}

class ParallelScfRanks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelScfRanks, MatchesSerialGroundState) {
  const std::size_t n_ranks = GetParam();
  const auto mol = molecules::water();

  ScfEngine serial(mol, {});
  const GroundState ref = serial.solve();

  std::vector<double> energies(n_ranks, 0.0);
  std::vector<double> dipoles(n_ranks, 0.0);
  parallel::run_spmd(n_ranks, [&](parallel::Communicator& comm) {
    ScfEngine engine(mol, {}, partition_for(comm));
    const GroundState gs = engine.solve();
    EXPECT_TRUE(gs.converged);
    energies[comm.rank()] = gs.total_energy;
    dipoles[comm.rank()] = gs.dipole.z;
  });
  for (std::size_t r = 0; r < n_ranks; ++r) {
    EXPECT_NEAR(energies[r], ref.total_energy, 1e-8) << "rank " << r;
    EXPECT_NEAR(dipoles[r], ref.dipole.z, 1e-8) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelScfRanks,
                         ::testing::Values(2, 3, 4));

TEST(ParallelScf, MatricesMatchSerial) {
  const auto mol = molecules::h2();
  ScfEngine serial(mol, {});
  parallel::run_spmd(2, [&](parallel::Communicator& comm) {
    ScfEngine engine(mol, {}, partition_for(comm));
    EXPECT_NEAR((engine.overlap() - serial.overlap()).max_abs(), 0.0, 1e-12);
    EXPECT_NEAR((engine.kinetic() - serial.kinetic()).max_abs(), 0.0, 1e-12);
    // Grid kernels agree too.
    const linalg::Matrix d_par = engine.dipole_matrix(2);
    const linalg::Matrix d_ser = serial.dipole_matrix(2);
    EXPECT_NEAR((d_par - d_ser).max_abs(), 0.0, 1e-12);
  });
}

TEST(ParallelScf, DfptPolarizabilityMatchesSerial) {
  // The DFPT engine inherits the distribution through density_on_grid /
  // integrate_matrix — the paper's three kernels run distributed.
  const auto mol = molecules::h2();
  ScfEngine serial(mol, {});
  const GroundState ref_gs = serial.solve();
  dfpt::DfptEngine ref_dfpt(serial, ref_gs);
  const double ref_zz = ref_dfpt.polarizability()(2, 2);

  parallel::run_spmd(3, [&](parallel::Communicator& comm) {
    ScfEngine engine(mol, {}, partition_for(comm));
    const GroundState gs = engine.solve();
    dfpt::DfptEngine dfpt(engine, gs);
    EXPECT_NEAR(dfpt.polarizability()(2, 2), ref_zz, 5e-6);  // DIIS path noise
  });
}

TEST(ParallelScf, GeometryLevelSubGroups) {
  // Level 1 + level 2 together: four ranks split into two geometry
  // sub-communicators, each solving a different geometry with distributed
  // batches (the paper's sub-group scheme).
  std::vector<double> results(2, 0.0);
  parallel::run_spmd(4, [&](parallel::Communicator& comm) {
    const int geometry = static_cast<int>(comm.rank() / 2);
    parallel::Communicator group = comm.split(geometry);
    const auto mol = molecules::h2(geometry == 0 ? 1.40 : 1.50);
    GridPartition part;
    part.rank = group.rank();
    part.n_ranks = group.size();
    part.allreduce = [&group](double* data, std::size_t n) {
      std::vector<double> buf(data, data + n);
      group.allreduce(buf, parallel::AllreduceAlgorithm::Ring);
      std::copy(buf.begin(), buf.end(), data);
    };
    ScfEngine engine(mol, {}, part);
    const GroundState gs = engine.solve();
    if (group.rank() == 0) results[geometry] = gs.total_energy;
  });
  // Both geometries solved; 1.50 Bohr is closer to this basis's minimum.
  EXPECT_LT(results[0], -1.0);
  EXPECT_LT(results[1], results[0]);
}

TEST(ParallelScf, OverlappedHierarchicalReductionsMatchSerial) {
  // The overlapped loop (iallreduce under the SCF bookkeeping, hierarchical
  // blocking reductions elsewhere) must reproduce the serial ground state
  // and response — overlap changes scheduling, never numerics.
  const auto mol = molecules::h2();
  ScfEngine serial(mol, {});
  const GroundState ref = serial.solve();
  dfpt::DfptEngine ref_dfpt(serial, ref);
  const double ref_zz = ref_dfpt.polarizability()(2, 2);

  parallel::CommConfig cfg;
  cfg.node_size = 2;  // 3 ranks -> groups {0,1} and {2}
  parallel::run_spmd(
      3,
      [&](parallel::Communicator& comm) {
        ScfEngine engine(mol, {}, overlapped_partition_for(comm));
        const GroundState gs = engine.solve();
        EXPECT_TRUE(gs.converged);
        // Hierarchical reductions re-associate the grid sums (RMA mesh fold
        // + Rabenseifner), so the SCF fixed point shifts within the
        // convergence threshold rather than to rounding.
        EXPECT_NEAR(gs.total_energy, ref.total_energy, 5e-7);
        dfpt::DfptEngine dfpt(engine, gs);
        EXPECT_NEAR(dfpt.polarizability()(2, 2), ref_zz, 5e-6);
      },
      cfg);
}

TEST(ParallelScf, RejectsBadPartition) {
  GridPartition bad;
  bad.rank = 5;
  bad.n_ranks = 2;  // rank out of range, and no allreduce
  EXPECT_THROW(ScfEngine(molecules::h2(), {}, bad), Error);
}

}  // namespace
}  // namespace swraman::scf
