#include "scf/scf_engine.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace swraman::scf {
namespace {

std::vector<grid::AtomSite> h2(double bond = 1.4) {
  return {{1, {0.0, 0.0, 0.0}}, {1, {0.0, 0.0, bond}}};
}

std::vector<grid::AtomSite> water() {
  const double oh = 0.9572 * kBohrPerAngstrom;
  const double half = 0.5 * 104.5 * kPi / 180.0;
  return {{8, {0.0, 0.0, 0.0}},
          {1, {oh * std::sin(half), 0.0, oh * std::cos(half)}},
          {1, {-oh * std::sin(half), 0.0, oh * std::cos(half)}}};
}

TEST(ScfEngine, HydrogenAtomMatchesAtomicSolver) {
  ScfOptions opt;
  const ScfEngine eng({{1, {0.0, 0.0, 0.0}}}, opt);
  // Molecular machinery on a single atom must land near the radial
  // solver's LDA reference (-0.4457 Ha; the confined species basis and
  // finite grid shift it slightly).
  // Smearing puts one electron in a doubly-degenerate level: fine in
  // restricted KS.
  GroundState gs = const_cast<ScfEngine&>(eng).solve();
  EXPECT_TRUE(gs.converged);
  EXPECT_NEAR(gs.total_energy, -0.4457, 0.03);
}

TEST(ScfEngine, H2GroundState) {
  ScfEngine eng(h2(), {});
  const GroundState gs = eng.solve();
  EXPECT_TRUE(gs.converged);
  EXPECT_LT(gs.iterations, 40);
  // Minimal+pol NAO basis: E between the atomic limit and the
  // complete-basis LDA value (-1.137).
  EXPECT_LT(gs.total_energy, -1.00);
  EXPECT_GT(gs.total_energy, -1.20);
  // Homonuclear: no dipole.
  EXPECT_NEAR(gs.dipole.norm(), 0.0, 1e-3);
  EXPECT_GT(gs.homo_lumo_gap, 0.3);
}

TEST(ScfEngine, H2BindingCurveHasMinimum) {
  double e_short = 0.0, e_eq = 0.0, e_long = 0.0;
  {
    ScfEngine eng(h2(1.0), {});
    e_short = eng.solve().total_energy;
  }
  {
    ScfEngine eng(h2(1.45), {});
    e_eq = eng.solve().total_energy;
  }
  {
    ScfEngine eng(h2(2.2), {});
    e_long = eng.solve().total_energy;
  }
  EXPECT_LT(e_eq, e_short);
  EXPECT_LT(e_eq, e_long);
}

TEST(ScfEngine, ElectronCountFromDensityMatrix) {
  ScfEngine eng(water(), {});
  const GroundState gs = eng.solve();
  // Tr(P S) = number of electrons.
  EXPECT_NEAR(linalg::trace_product(gs.density, eng.overlap()), 10.0, 1e-6);
  // The grid-integrated density also carries 10 electrons.
  const std::vector<double> n = eng.density_on_grid(gs.density);
  double q = 0.0;
  for (std::size_t p = 0; p < eng.grid().size(); ++p) {
    q += eng.grid().weights[p] * n[p];
  }
  EXPECT_NEAR(q, 10.0, 5e-3);
}

TEST(ScfEngine, WaterGroundState) {
  ScfEngine eng(water(), {});
  const GroundState gs = eng.solve();
  EXPECT_TRUE(gs.converged);
  // LDA water: about -75.9 Ha at basis-set convergence.
  EXPECT_NEAR(gs.total_energy, -75.85, 0.15);
  // Dipole along +z (C2v axis pointing at the hydrogens), about 1.4-1.9 D.
  EXPECT_GT(gs.dipole.z, 0.4);
  EXPECT_LT(gs.dipole.z, 0.85);
  EXPECT_NEAR(gs.dipole.x, 0.0, 1e-3);
  EXPECT_NEAR(gs.dipole.y, 0.0, 1e-3);
  EXPECT_GT(gs.homo_lumo_gap, 0.2);
}

TEST(ScfEngine, OverlapIsPositiveDefiniteAndNormalized) {
  ScfEngine eng(h2(), {});
  const linalg::Matrix& s = eng.overlap();
  for (std::size_t i = 0; i < s.rows(); ++i) {
    EXPECT_NEAR(s(i, i), 1.0, 2e-2) << "diagonal " << i;
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_LT(std::abs(s(i, j)), 1.0) << i << "," << j;
    }
  }
}

TEST(ScfEngine, KineticEnergyPositive) {
  ScfEngine eng(water(), {});
  const GroundState gs = eng.solve();
  const double ts = linalg::trace_product(gs.density, eng.kinetic());
  EXPECT_GT(ts, 0.0);
  // Virial-like sanity: kinetic comparable to |total| for LDA water.
  EXPECT_GT(ts, 40.0);
  EXPECT_LT(ts, 110.0);
}

TEST(ScfEngine, FiniteFieldShiftsDipole) {
  ScfOptions plus;
  plus.electric_field = {0.0, 0.0, 0.005};
  ScfOptions minus;
  minus.electric_field = {0.0, 0.0, -0.005};
  ScfEngine ep(h2(), plus);
  ScfEngine em(h2(), minus);
  const GroundState gp = ep.solve();
  const GroundState gm = em.solve();
  // Polarizability alpha_zz = d(mu_z)/dF_z must be positive.
  const double alpha = (gp.dipole.z - gm.dipole.z) / 0.01;
  EXPECT_GT(alpha, 1.0);
  EXPECT_LT(alpha, 30.0);
}

TEST(ScfEngine, DipoleMatrixMatchesGridIntegral) {
  ScfEngine eng(h2(), {});
  const linalg::Matrix d = eng.dipole_matrix(2);
  // <chi_0 | z | chi_0> for the 1s on atom 0 at origin: the density is
  // symmetric around z=0, so the matrix element is ~0... the atom sits at
  // z=0 so <z> = 0; for the atom at z=1.4, <z> = 1.4.
  double diag_atom1 = 0.0;
  for (std::size_t k = 0; k < eng.basis().size(); ++k) {
    const auto& fn = eng.basis().functions()[k];
    if (fn.atom == 1 && fn.l == 0) diag_atom1 = d(k, k);
  }
  EXPECT_NEAR(diag_atom1, 1.4, 5e-2);
}

class ScfGridLevel : public ::testing::TestWithParam<grid::GridLevel> {};

TEST_P(ScfGridLevel, EnergyStableAcrossGridLevels) {
  ScfOptions opt;
  opt.grid.level = GetParam();
  ScfEngine eng(h2(), opt);
  const GroundState gs = eng.solve();
  EXPECT_TRUE(gs.converged);
  EXPECT_NEAR(gs.total_energy, -1.07, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Levels, ScfGridLevel,
                         ::testing::Values(grid::GridLevel::Light,
                                           grid::GridLevel::Tight));

TEST(ScfEngine, GtoBackendAgreesRoughlyWithNao) {
  ScfOptions gto;
  gto.species.backend = basis::Backend::Gto;
  ScfEngine nao_eng(h2(), {});
  ScfEngine gto_eng(h2(), gto);
  const double e_nao = nao_eng.solve().total_energy;
  const double e_gto = gto_eng.solve().total_energy;
  // Different radial representations, same physics: within ~0.1 Ha.
  EXPECT_NEAR(e_nao, e_gto, 0.1);
}

}  // namespace
}  // namespace swraman::scf
// -- appended coverage: SCF restart from a previous density matrix.

namespace swraman::scf {
namespace {

TEST(ScfRestart, SameEnergyFewerIterations) {
  const auto eq = water();
  ScfEngine eq_engine(eq, {});
  const GroundState eq_gs = eq_engine.solve();

  // Displaced geometry, cold start vs restart from the equilibrium density.
  auto moved = eq;
  moved[1].pos.x += 0.02;
  ScfEngine cold_engine(moved, {});
  const GroundState cold = cold_engine.solve();
  ScfEngine warm_engine(moved, {});
  const GroundState warm = warm_engine.solve(&eq_gs.density);

  EXPECT_TRUE(cold.converged);
  EXPECT_TRUE(warm.converged);
  EXPECT_NEAR(warm.total_energy, cold.total_energy, 1e-7);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(ScfRestart, WrongDimensionFallsBackToSuperposition) {
  ScfEngine engine(water(), {});
  const linalg::Matrix junk(3, 3, 1.0);  // wrong basis dimension
  const GroundState gs = engine.solve(&junk);
  EXPECT_TRUE(gs.converged);
  EXPECT_NEAR(gs.total_energy, -75.8084, 2e-3);
}

}  // namespace
}  // namespace swraman::scf
