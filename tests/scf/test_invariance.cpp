#include <cmath>

#include <gtest/gtest.h>

#include "core/molecules.hpp"
#include "scf/scf_engine.hpp"

// Physical-invariance property tests: the total energy must be unchanged
// (to grid egg-box tolerance — the atom-centered grid moves with the
// atoms) under rigid translations and rotations, and variational under
// basis enlargement.

namespace swraman::scf {
namespace {

double energy_of(std::vector<grid::AtomSite> atoms,
                 const ScfOptions& opt = {}) {
  ScfEngine engine(std::move(atoms), opt);
  const GroundState gs = engine.solve();
  EXPECT_TRUE(gs.converged);
  return gs.total_energy;
}

class RigidTranslation : public ::testing::TestWithParam<Vec3> {};

TEST_P(RigidTranslation, EnergyInvariant) {
  const Vec3 shift = GetParam();
  std::vector<grid::AtomSite> mol = molecules::water();
  const double e0 = energy_of(mol);
  for (grid::AtomSite& a : mol) a.pos += shift;
  const double e1 = energy_of(mol);
  EXPECT_NEAR(e1, e0, 2e-4);  // egg-box bound at light settings
}

INSTANTIATE_TEST_SUITE_P(Shifts, RigidTranslation,
                         ::testing::Values(Vec3{1.0, 0.0, 0.0},
                                           Vec3{0.3, -0.7, 0.45},
                                           Vec3{10.0, 10.0, 10.0}));

TEST(RigidRotation, EnergyInvariant) {
  std::vector<grid::AtomSite> mol = molecules::water();
  const double e0 = energy_of(mol);
  // Rotate 30 degrees about x.
  const double c = std::cos(0.5235987755982988);
  const double s = std::sin(0.5235987755982988);
  for (grid::AtomSite& a : mol) {
    const Vec3 p = a.pos;
    a.pos = {p.x, c * p.y - s * p.z, s * p.y + c * p.z};
  }
  const double e1 = energy_of(mol);
  // Rotational egg-box: the angular quadrature axes are lab-fixed, so a
  // rotated molecule samples the integrand differently. ~5e-4 Ha at light
  // settings (tight grids shrink it).
  EXPECT_NEAR(e1, e0, 1.5e-3);
}

TEST(RigidRotation, DipoleMagnitudeInvariant) {
  std::vector<grid::AtomSite> mol = molecules::water();
  ScfEngine e0(mol, {});
  const double mu0 = e0.solve().dipole.norm();
  const double c = std::cos(1.1);
  const double s = std::sin(1.1);
  for (grid::AtomSite& a : mol) {
    const Vec3 p = a.pos;
    a.pos = {c * p.x - s * p.y, s * p.x + c * p.y, p.z};
  }
  ScfEngine e1(mol, {});
  EXPECT_NEAR(e1.solve().dipole.norm(), mu0, 8e-3);
}

TEST(Variational, LargerBasisLowersTheEnergy) {
  ScfOptions minimal;
  minimal.species.tier = basis::Tier::Minimal;
  ScfOptions standard;
  standard.species.tier = basis::Tier::Standard;
  ScfOptions extended;
  extended.species.tier = basis::Tier::Extended;
  const double e_min = energy_of(molecules::h2(), minimal);
  const double e_std = energy_of(molecules::h2(), standard);
  const double e_ext = energy_of(molecules::h2(), extended);
  EXPECT_LT(e_std, e_min + 1e-5);
  EXPECT_LT(e_ext, e_std + 1e-5);
}

TEST(Variational, TighterGridChangesEnergyLittle) {
  ScfOptions light;
  ScfOptions tight;
  tight.grid.level = grid::GridLevel::Tight;
  const double e_l = energy_of(molecules::water(), light);
  const double e_t = energy_of(molecules::water(), tight);
  EXPECT_NEAR(e_l, e_t, 5e-2);
}

}  // namespace
}  // namespace swraman::scf
// -- appended coverage: Hirshfeld vs Becke partitioning in the full SCF.

namespace swraman::scf {
namespace {

TEST(Partitioning, HirshfeldMatchesBeckeEnergy) {
  ScfOptions becke;
  ScfOptions hirshfeld;
  hirshfeld.grid.partition = grid::PartitionScheme::Hirshfeld;
  const double e_b = energy_of(molecules::water(), becke);
  const double e_h = energy_of(molecules::water(), hirshfeld);
  // Same integrals, different partition-of-unity. Hirshfeld puts more
  // weight on foreign-nucleus cusp regions than the size-adjusted Becke
  // cells, so light-grid quadrature differs at the few-10-mHa level
  // (tight grids close the gap); both describe the same physics.
  EXPECT_NEAR(e_b, e_h, 0.06);
}

}  // namespace
}  // namespace swraman::scf
