#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sunway/rma_reduce.hpp"

// Golden-reference regression for the CPE RMA-mesh reduction (paper
// Fig. 8, the engine under the hierarchical allreduce's intra-node stage):
// a seeded synthetic workload must produce the exact communication stats
// snapshot checked in next to this test. The counters are integer-valued
// by design, so the comparison is equality — any change to the send-buffer
// flush policy, block cache, or message accounting shows up as a diff
// here, not as a silent perf-model drift.
//
// Regenerate deliberately with SWRAMAN_GOLDEN_REGEN=1 ./test_golden and
// commit the diff of tests/golden/golden_rma_stats.txt.

namespace swraman::sunway {
namespace {

std::string golden_path() {
  return std::string(SWRAMAN_GOLDEN_DIR) + "/golden_rma_stats.txt";
}

// Deterministic workload: 8 lanes of clustered contributions into a 4096
// entry array — large enough to exercise block-cache eviction and the
// send-buffer flush, small enough to run in milliseconds.
std::vector<std::vector<Contribution>> seeded_lanes() {
  std::mt19937 rng(20210814);  // SC'21 vintage
  std::uniform_int_distribution<std::size_t> cluster(0, 4095 - 16);
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::vector<std::vector<Contribution>> lanes(8);
  for (std::vector<Contribution>& lane : lanes) {
    for (int c = 0; c < 40; ++c) {
      const std::size_t base = cluster(rng);
      for (std::size_t k = 0; k < 16; ++k) {
        lane.push_back({base + k, value(rng)});
      }
    }
  }
  return lanes;
}

std::vector<std::pair<std::string, double>> stats_rows(
    const RmaReduceStats& s) {
  return {{"rma_messages", s.rma_messages},
          {"rma_bytes", s.rma_bytes},
          {"dma_block_transfers", s.dma_block_transfers},
          {"dma_bytes", s.dma_bytes},
          {"updates", s.updates},
          {"rma_retransmits", s.rma_retransmits}};
}

TEST(GoldenRmaStats, SeededReductionStatsExactlyMatchSnapshot) {
  std::vector<double> arr(4096, 0.0);
  const RmaReduceStats stats = rma_array_reduction(seeded_lanes(), arr);
  const auto rows = stats_rows(stats);

  if (std::getenv("SWRAMAN_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(golden_path());
    out << "# RMA-mesh reduction stats for the seeded workload defined in\n"
        << "# tests/golden/test_golden_rma_stats.cpp. Exact integers.\n";
    for (const auto& [name, value] : rows) {
      out << name << " " << static_cast<long long>(value) << "\n";
    }
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "golden file missing: " << golden_path();
  std::map<std::string, double> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string name;
    double value = 0.0;
    ASSERT_TRUE(static_cast<bool>(ss >> name >> value))
        << "malformed golden line: " << line;
    golden[name] = value;
  }
  ASSERT_EQ(golden.size(), rows.size());
  for (const auto& [name, value] : rows) {
    ASSERT_TRUE(golden.count(name)) << "stat missing from golden: " << name;
    // Exact: the stats are event counts, not timings.
    EXPECT_EQ(value, golden.at(name)) << "stat drifted: " << name;
  }

  // The reduction itself must agree with the serial reference exactly
  // per summation order — here just check it is non-trivial and finite.
  double sum = 0.0;
  for (double v : arr) sum += v;
  EXPECT_TRUE(std::isfinite(sum));
  EXPECT_NE(sum, 0.0);
}

}  // namespace
}  // namespace swraman::sunway
