#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/molecules.hpp"
#include "raman/raman.hpp"

// Golden-reference regression: the water Raman spectrum (frequencies,
// activities, depolarization ratios) is pinned to a checked-in snapshot.
// Any change to the SCF, DFPT, grid, Hessian, or collectives layers that
// shifts a peak beyond the stated tolerances fails here — including
// "harmless" reassociation bugs that every per-layer test is too local to
// see.
//
// Regenerate deliberately (after verifying the physics) with
//   SWRAMAN_GOLDEN_REGEN=1 ./test_golden
// and commit the diff of tests/golden/golden_water_raman.txt.

namespace swraman::raman {
namespace {

// Tolerances are intentionally explicit and asymmetric in kind: absolute
// for positions (instrument-like resolution), relative for intensities.
constexpr double kFreqTolCm = 1.0;     // cm^-1, absolute
constexpr double kActivityRelTol = 0.02;  // 2 percent
constexpr double kDepolTol = 0.02;     // dimensionless, absolute

std::string golden_path() {
  return std::string(SWRAMAN_GOLDEN_DIR) + "/golden_water_raman.txt";
}

// Fixed geometry, spelled out rather than taken from core/molecules so an
// (intentional) change to the library geometry cannot silently move the
// golden. This is molecules::water() BFGS-relaxed at exactly the golden
// numerics below (then symmetrized to C2v): harmonic analysis is only
// meaningful at a stationary point of the calculated surface, and pinning
// the relaxed coordinates keeps the 163-solve relaxation out of the test.
std::vector<grid::AtomSite> water_atoms() {
  return {{8, {0.0, 0.0, 0.3268247149}},
          {1, {1.2518316921, 0.0, 0.9437281316}},
          {1, {-1.2518316921, 0.0, 0.9437281316}}};
}

// Reduced-cost numerics: a coarse but fully converged grid keeps the 6N
// displaced-geometry pipeline at test-suite speed. The golden pins the
// result OF THESE settings; they are part of the reference definition.
RamanOptions golden_options() {
  RamanOptions opt;
  opt.vibrations.scf.grid.n_radial = 16;
  opt.vibrations.scf.grid.angular_order = 7;
  return opt;
}

struct GoldenMode {
  double frequency_cm = 0.0;
  double activity = 0.0;
  double depolarization = 0.0;
};

std::vector<GoldenMode> load_golden() {
  std::ifstream in(golden_path());
  SWRAMAN_REQUIRE(in.good(), "golden file missing: " + golden_path());
  std::vector<GoldenMode> modes;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    GoldenMode m;
    SWRAMAN_REQUIRE(static_cast<bool>(ss >> m.frequency_cm >> m.activity >>
                                      m.depolarization),
                    "golden file: malformed line '" + line + "'");
    modes.push_back(m);
  }
  return modes;
}

void write_golden(const RamanSpectrum& spec) {
  std::ofstream out(golden_path());
  out << "# Water Raman golden reference (geometry + numerics pinned in\n"
      << "# tests/golden/test_golden_spectrum.cpp). Columns:\n"
      << "# frequency_cm activity_A4_amu depolarization\n";
  out << std::setprecision(12);
  for (const RamanMode& m : spec.modes) {
    out << m.frequency_cm << " " << m.activity << " " << m.depolarization
        << "\n";
  }
}

TEST(GoldenSpectrum, WaterRamanPeaksMatchSnapshot) {
  RamanCalculator calc(water_atoms(), golden_options());
  const RamanSpectrum spec = calc.compute();

  if (std::getenv("SWRAMAN_GOLDEN_REGEN") != nullptr) {
    write_golden(spec);
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  const std::vector<GoldenMode> golden = load_golden();
  ASSERT_EQ(spec.modes.size(), golden.size())
      << "mode count changed — water must keep its 3 vibrational modes";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    SCOPED_TRACE("mode " + std::to_string(i));
    EXPECT_NEAR(spec.modes[i].frequency_cm, golden[i].frequency_cm,
                kFreqTolCm);
    EXPECT_NEAR(spec.modes[i].activity, golden[i].activity,
                kActivityRelTol * std::abs(golden[i].activity));
    EXPECT_NEAR(spec.modes[i].depolarization, golden[i].depolarization,
                kDepolTol);
  }
}

// The FMM Hartree backend must be a drop-in: the same golden water
// spectrum, against the same snapshot, within the same tolerances — only
// ScfOptions::hartree_backend differs. Water is small enough that most of
// the evaluation is exact near field (P2P), which is precisely the claim
// worth pinning: switching backends on a system below the crossover must
// not move the physics.
TEST(GoldenSpectrum, WaterRamanUnderFmmBackendMatchesSnapshot) {
  if (std::getenv("SWRAMAN_GOLDEN_REGEN") != nullptr) {
    GTEST_SKIP() << "regen runs the Direct reference only";
  }
  RamanOptions opt = golden_options();
  opt.vibrations.scf.hartree_backend = fmm::HartreeBackend::Fmm;
  RamanCalculator calc(water_atoms(), opt);
  const RamanSpectrum spec = calc.compute();

  const std::vector<GoldenMode> golden = load_golden();
  ASSERT_EQ(spec.modes.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    SCOPED_TRACE("mode " + std::to_string(i));
    EXPECT_NEAR(spec.modes[i].frequency_cm, golden[i].frequency_cm,
                kFreqTolCm);
    EXPECT_NEAR(spec.modes[i].activity, golden[i].activity,
                kActivityRelTol * std::abs(golden[i].activity));
    EXPECT_NEAR(spec.modes[i].depolarization, golden[i].depolarization,
                kDepolTol);
  }
}

// Silane under both backends at identical (reduced) numerics: the FMM
// spectrum must sit within the golden tolerance kinds of the Direct one.
// A second element (Si) and tetrahedral symmetry exercise heavier-Z spline
// channels than water does. The pseudized valence-only variant keeps the
// 451-solve Hessian at test-suite speed and is well-conditioned on the
// coarse grid (no steep Si 1s core to resolve).
TEST(GoldenSpectrum, SilaneRamanFmmBackendMatchesDirect) {
  RamanOptions opt;
  opt.vibrations.scf.grid.n_radial = 12;
  opt.vibrations.scf.grid.angular_order = 5;
  opt.vibrations.scf.species.tier = basis::Tier::Minimal;
  opt.vibrations.scf.species.pseudized = true;
  const std::vector<grid::AtomSite> atoms = molecules::silane();

  RamanCalculator direct_calc(atoms, opt);
  const RamanSpectrum direct = direct_calc.compute();

  opt.vibrations.scf.hartree_backend = fmm::HartreeBackend::Fmm;
  RamanCalculator fmm_calc(atoms, opt);
  const RamanSpectrum fmm = fmm_calc.compute();

  ASSERT_EQ(fmm.modes.size(), direct.modes.size());
  ASSERT_FALSE(direct.modes.empty());
  for (std::size_t i = 0; i < direct.modes.size(); ++i) {
    SCOPED_TRACE("mode " + std::to_string(i));
    EXPECT_NEAR(fmm.modes[i].frequency_cm, direct.modes[i].frequency_cm,
                kFreqTolCm);
    EXPECT_NEAR(fmm.modes[i].activity, direct.modes[i].activity,
                kActivityRelTol * std::abs(direct.modes[i].activity) + 1e-12);
    EXPECT_NEAR(fmm.modes[i].depolarization, direct.modes[i].depolarization,
                kDepolTol);
  }
}

TEST(GoldenSpectrum, WaterModesAreTheExpectedBands) {
  // Sanity constraints independent of the snapshot: water has the bend
  // around the lowest frequency and two O-H stretches above it, and the
  // symmetric stretch is strongly polarized.
  const std::vector<GoldenMode> golden = load_golden();
  ASSERT_EQ(golden.size(), 3u);
  EXPECT_LT(golden[0].frequency_cm, golden[1].frequency_cm);
  EXPECT_LT(golden[1].frequency_cm, golden[2].frequency_cm);
  for (const GoldenMode& m : golden) {
    EXPECT_GT(m.frequency_cm, 100.0);
    EXPECT_GT(m.activity, 0.0);
    EXPECT_GE(m.depolarization, 0.0);
    EXPECT_LE(m.depolarization, 0.75 + 1e-9);
  }
}

}  // namespace
}  // namespace swraman::raman
