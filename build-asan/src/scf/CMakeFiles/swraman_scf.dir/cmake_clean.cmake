file(REMOVE_RECURSE
  "CMakeFiles/swraman_scf.dir/analysis.cpp.o"
  "CMakeFiles/swraman_scf.dir/analysis.cpp.o.d"
  "CMakeFiles/swraman_scf.dir/scf_engine.cpp.o"
  "CMakeFiles/swraman_scf.dir/scf_engine.cpp.o.d"
  "libswraman_scf.a"
  "libswraman_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
