file(REMOVE_RECURSE
  "libswraman_scf.a"
)
