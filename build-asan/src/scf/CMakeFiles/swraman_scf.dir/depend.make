# Empty dependencies file for swraman_scf.
# This may be replaced when dependencies are built.
