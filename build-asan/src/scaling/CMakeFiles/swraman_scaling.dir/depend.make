# Empty dependencies file for swraman_scaling.
# This may be replaced when dependencies are built.
