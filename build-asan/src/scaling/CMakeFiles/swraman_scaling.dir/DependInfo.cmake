
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scaling/simulator.cpp" "src/scaling/CMakeFiles/swraman_scaling.dir/simulator.cpp.o" "gcc" "src/scaling/CMakeFiles/swraman_scaling.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sunway/CMakeFiles/swraman_sunway.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/swraman_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hartree/CMakeFiles/swraman_hartree.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/grid/CMakeFiles/swraman_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simd/CMakeFiles/swraman_simd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/robustness/CMakeFiles/swraman_robustness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
