file(REMOVE_RECURSE
  "libswraman_scaling.a"
)
