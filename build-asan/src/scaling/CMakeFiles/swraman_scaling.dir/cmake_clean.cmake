file(REMOVE_RECURSE
  "CMakeFiles/swraman_scaling.dir/simulator.cpp.o"
  "CMakeFiles/swraman_scaling.dir/simulator.cpp.o.d"
  "libswraman_scaling.a"
  "libswraman_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
