
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/angular.cpp" "src/grid/CMakeFiles/swraman_grid.dir/angular.cpp.o" "gcc" "src/grid/CMakeFiles/swraman_grid.dir/angular.cpp.o.d"
  "/root/repo/src/grid/atom_grid.cpp" "src/grid/CMakeFiles/swraman_grid.dir/atom_grid.cpp.o" "gcc" "src/grid/CMakeFiles/swraman_grid.dir/atom_grid.cpp.o.d"
  "/root/repo/src/grid/batch.cpp" "src/grid/CMakeFiles/swraman_grid.dir/batch.cpp.o" "gcc" "src/grid/CMakeFiles/swraman_grid.dir/batch.cpp.o.d"
  "/root/repo/src/grid/loadbalance.cpp" "src/grid/CMakeFiles/swraman_grid.dir/loadbalance.cpp.o" "gcc" "src/grid/CMakeFiles/swraman_grid.dir/loadbalance.cpp.o.d"
  "/root/repo/src/grid/ylm.cpp" "src/grid/CMakeFiles/swraman_grid.dir/ylm.cpp.o" "gcc" "src/grid/CMakeFiles/swraman_grid.dir/ylm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/swraman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
