# Empty dependencies file for swraman_grid.
# This may be replaced when dependencies are built.
