file(REMOVE_RECURSE
  "libswraman_grid.a"
)
