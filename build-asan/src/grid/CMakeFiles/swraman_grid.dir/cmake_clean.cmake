file(REMOVE_RECURSE
  "CMakeFiles/swraman_grid.dir/angular.cpp.o"
  "CMakeFiles/swraman_grid.dir/angular.cpp.o.d"
  "CMakeFiles/swraman_grid.dir/atom_grid.cpp.o"
  "CMakeFiles/swraman_grid.dir/atom_grid.cpp.o.d"
  "CMakeFiles/swraman_grid.dir/batch.cpp.o"
  "CMakeFiles/swraman_grid.dir/batch.cpp.o.d"
  "CMakeFiles/swraman_grid.dir/loadbalance.cpp.o"
  "CMakeFiles/swraman_grid.dir/loadbalance.cpp.o.d"
  "CMakeFiles/swraman_grid.dir/ylm.cpp.o"
  "CMakeFiles/swraman_grid.dir/ylm.cpp.o.d"
  "libswraman_grid.a"
  "libswraman_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
