file(REMOVE_RECURSE
  "CMakeFiles/swraman_simd.dir/vec8d.cpp.o"
  "CMakeFiles/swraman_simd.dir/vec8d.cpp.o.d"
  "libswraman_simd.a"
  "libswraman_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
