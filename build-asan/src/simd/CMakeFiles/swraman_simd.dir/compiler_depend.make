# Empty compiler generated dependencies file for swraman_simd.
# This may be replaced when dependencies are built.
