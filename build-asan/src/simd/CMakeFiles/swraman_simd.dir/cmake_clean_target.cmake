file(REMOVE_RECURSE
  "libswraman_simd.a"
)
