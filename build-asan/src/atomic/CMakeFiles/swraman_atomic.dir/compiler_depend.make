# Empty compiler generated dependencies file for swraman_atomic.
# This may be replaced when dependencies are built.
