file(REMOVE_RECURSE
  "libswraman_atomic.a"
)
