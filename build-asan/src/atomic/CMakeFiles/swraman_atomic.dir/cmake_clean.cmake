file(REMOVE_RECURSE
  "CMakeFiles/swraman_atomic.dir/atom_solver.cpp.o"
  "CMakeFiles/swraman_atomic.dir/atom_solver.cpp.o.d"
  "CMakeFiles/swraman_atomic.dir/pseudo.cpp.o"
  "CMakeFiles/swraman_atomic.dir/pseudo.cpp.o.d"
  "CMakeFiles/swraman_atomic.dir/radial_solver.cpp.o"
  "CMakeFiles/swraman_atomic.dir/radial_solver.cpp.o.d"
  "libswraman_atomic.a"
  "libswraman_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
