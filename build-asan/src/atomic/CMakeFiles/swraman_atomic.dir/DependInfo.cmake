
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atomic/atom_solver.cpp" "src/atomic/CMakeFiles/swraman_atomic.dir/atom_solver.cpp.o" "gcc" "src/atomic/CMakeFiles/swraman_atomic.dir/atom_solver.cpp.o.d"
  "/root/repo/src/atomic/pseudo.cpp" "src/atomic/CMakeFiles/swraman_atomic.dir/pseudo.cpp.o" "gcc" "src/atomic/CMakeFiles/swraman_atomic.dir/pseudo.cpp.o.d"
  "/root/repo/src/atomic/radial_solver.cpp" "src/atomic/CMakeFiles/swraman_atomic.dir/radial_solver.cpp.o" "gcc" "src/atomic/CMakeFiles/swraman_atomic.dir/radial_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/swraman_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/linalg/CMakeFiles/swraman_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/xc/CMakeFiles/swraman_xc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
