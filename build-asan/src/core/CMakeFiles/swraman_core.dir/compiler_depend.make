# Empty compiler generated dependencies file for swraman_core.
# This may be replaced when dependencies are built.
