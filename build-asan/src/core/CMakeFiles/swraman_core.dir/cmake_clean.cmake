file(REMOVE_RECURSE
  "CMakeFiles/swraman_core.dir/molecules.cpp.o"
  "CMakeFiles/swraman_core.dir/molecules.cpp.o.d"
  "CMakeFiles/swraman_core.dir/reference.cpp.o"
  "CMakeFiles/swraman_core.dir/reference.cpp.o.d"
  "CMakeFiles/swraman_core.dir/workload.cpp.o"
  "CMakeFiles/swraman_core.dir/workload.cpp.o.d"
  "CMakeFiles/swraman_core.dir/xyz.cpp.o"
  "CMakeFiles/swraman_core.dir/xyz.cpp.o.d"
  "libswraman_core.a"
  "libswraman_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
