file(REMOVE_RECURSE
  "libswraman_core.a"
)
