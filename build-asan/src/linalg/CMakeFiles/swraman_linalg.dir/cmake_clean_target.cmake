file(REMOVE_RECURSE
  "libswraman_linalg.a"
)
