# Empty compiler generated dependencies file for swraman_linalg.
# This may be replaced when dependencies are built.
