file(REMOVE_RECURSE
  "CMakeFiles/swraman_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/swraman_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/swraman_linalg.dir/eigen.cpp.o"
  "CMakeFiles/swraman_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/swraman_linalg.dir/lu.cpp.o"
  "CMakeFiles/swraman_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/swraman_linalg.dir/matrix.cpp.o"
  "CMakeFiles/swraman_linalg.dir/matrix.cpp.o.d"
  "libswraman_linalg.a"
  "libswraman_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
