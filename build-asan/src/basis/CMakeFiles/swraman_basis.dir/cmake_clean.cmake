file(REMOVE_RECURSE
  "CMakeFiles/swraman_basis.dir/basis_set.cpp.o"
  "CMakeFiles/swraman_basis.dir/basis_set.cpp.o.d"
  "CMakeFiles/swraman_basis.dir/species.cpp.o"
  "CMakeFiles/swraman_basis.dir/species.cpp.o.d"
  "libswraman_basis.a"
  "libswraman_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
