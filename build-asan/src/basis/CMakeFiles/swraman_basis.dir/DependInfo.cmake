
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/basis/basis_set.cpp" "src/basis/CMakeFiles/swraman_basis.dir/basis_set.cpp.o" "gcc" "src/basis/CMakeFiles/swraman_basis.dir/basis_set.cpp.o.d"
  "/root/repo/src/basis/species.cpp" "src/basis/CMakeFiles/swraman_basis.dir/species.cpp.o" "gcc" "src/basis/CMakeFiles/swraman_basis.dir/species.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/atomic/CMakeFiles/swraman_atomic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/grid/CMakeFiles/swraman_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/linalg/CMakeFiles/swraman_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/swraman_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/xc/CMakeFiles/swraman_xc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
