file(REMOVE_RECURSE
  "libswraman_basis.a"
)
