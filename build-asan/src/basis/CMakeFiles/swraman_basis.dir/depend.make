# Empty dependencies file for swraman_basis.
# This may be replaced when dependencies are built.
