
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sunway/arch.cpp" "src/sunway/CMakeFiles/swraman_sunway.dir/arch.cpp.o" "gcc" "src/sunway/CMakeFiles/swraman_sunway.dir/arch.cpp.o.d"
  "/root/repo/src/sunway/cost_model.cpp" "src/sunway/CMakeFiles/swraman_sunway.dir/cost_model.cpp.o" "gcc" "src/sunway/CMakeFiles/swraman_sunway.dir/cost_model.cpp.o.d"
  "/root/repo/src/sunway/cpe_cluster.cpp" "src/sunway/CMakeFiles/swraman_sunway.dir/cpe_cluster.cpp.o" "gcc" "src/sunway/CMakeFiles/swraman_sunway.dir/cpe_cluster.cpp.o.d"
  "/root/repo/src/sunway/double_buffer.cpp" "src/sunway/CMakeFiles/swraman_sunway.dir/double_buffer.cpp.o" "gcc" "src/sunway/CMakeFiles/swraman_sunway.dir/double_buffer.cpp.o.d"
  "/root/repo/src/sunway/kernels.cpp" "src/sunway/CMakeFiles/swraman_sunway.dir/kernels.cpp.o" "gcc" "src/sunway/CMakeFiles/swraman_sunway.dir/kernels.cpp.o.d"
  "/root/repo/src/sunway/rma_reduce.cpp" "src/sunway/CMakeFiles/swraman_sunway.dir/rma_reduce.cpp.o" "gcc" "src/sunway/CMakeFiles/swraman_sunway.dir/rma_reduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/hartree/CMakeFiles/swraman_hartree.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/grid/CMakeFiles/swraman_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simd/CMakeFiles/swraman_simd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/robustness/CMakeFiles/swraman_robustness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/swraman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
