file(REMOVE_RECURSE
  "libswraman_sunway.a"
)
