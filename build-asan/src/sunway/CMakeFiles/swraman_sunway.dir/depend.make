# Empty dependencies file for swraman_sunway.
# This may be replaced when dependencies are built.
