file(REMOVE_RECURSE
  "CMakeFiles/swraman_sunway.dir/arch.cpp.o"
  "CMakeFiles/swraman_sunway.dir/arch.cpp.o.d"
  "CMakeFiles/swraman_sunway.dir/cost_model.cpp.o"
  "CMakeFiles/swraman_sunway.dir/cost_model.cpp.o.d"
  "CMakeFiles/swraman_sunway.dir/cpe_cluster.cpp.o"
  "CMakeFiles/swraman_sunway.dir/cpe_cluster.cpp.o.d"
  "CMakeFiles/swraman_sunway.dir/double_buffer.cpp.o"
  "CMakeFiles/swraman_sunway.dir/double_buffer.cpp.o.d"
  "CMakeFiles/swraman_sunway.dir/kernels.cpp.o"
  "CMakeFiles/swraman_sunway.dir/kernels.cpp.o.d"
  "CMakeFiles/swraman_sunway.dir/rma_reduce.cpp.o"
  "CMakeFiles/swraman_sunway.dir/rma_reduce.cpp.o.d"
  "libswraman_sunway.a"
  "libswraman_sunway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_sunway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
