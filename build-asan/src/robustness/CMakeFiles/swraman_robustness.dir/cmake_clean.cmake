file(REMOVE_RECURSE
  "CMakeFiles/swraman_robustness.dir/fault.cpp.o"
  "CMakeFiles/swraman_robustness.dir/fault.cpp.o.d"
  "libswraman_robustness.a"
  "libswraman_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
