file(REMOVE_RECURSE
  "libswraman_robustness.a"
)
