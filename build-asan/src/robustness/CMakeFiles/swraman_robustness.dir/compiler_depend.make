# Empty compiler generated dependencies file for swraman_robustness.
# This may be replaced when dependencies are built.
