# Empty dependencies file for swraman_xc.
# This may be replaced when dependencies are built.
