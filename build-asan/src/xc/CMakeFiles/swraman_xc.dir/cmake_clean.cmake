file(REMOVE_RECURSE
  "CMakeFiles/swraman_xc.dir/lda.cpp.o"
  "CMakeFiles/swraman_xc.dir/lda.cpp.o.d"
  "libswraman_xc.a"
  "libswraman_xc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_xc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
