file(REMOVE_RECURSE
  "libswraman_xc.a"
)
