# Empty dependencies file for swraman_parallel.
# This may be replaced when dependencies are built.
