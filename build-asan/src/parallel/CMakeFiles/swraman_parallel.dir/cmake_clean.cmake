file(REMOVE_RECURSE
  "CMakeFiles/swraman_parallel.dir/comm.cpp.o"
  "CMakeFiles/swraman_parallel.dir/comm.cpp.o.d"
  "libswraman_parallel.a"
  "libswraman_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
