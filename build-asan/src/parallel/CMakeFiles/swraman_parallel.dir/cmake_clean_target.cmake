file(REMOVE_RECURSE
  "libswraman_parallel.a"
)
