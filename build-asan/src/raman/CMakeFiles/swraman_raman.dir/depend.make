# Empty dependencies file for swraman_raman.
# This may be replaced when dependencies are built.
