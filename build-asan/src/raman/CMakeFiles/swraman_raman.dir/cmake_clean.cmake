file(REMOVE_RECURSE
  "CMakeFiles/swraman_raman.dir/checkpoint.cpp.o"
  "CMakeFiles/swraman_raman.dir/checkpoint.cpp.o.d"
  "CMakeFiles/swraman_raman.dir/raman.cpp.o"
  "CMakeFiles/swraman_raman.dir/raman.cpp.o.d"
  "CMakeFiles/swraman_raman.dir/relax.cpp.o"
  "CMakeFiles/swraman_raman.dir/relax.cpp.o.d"
  "CMakeFiles/swraman_raman.dir/thermochemistry.cpp.o"
  "CMakeFiles/swraman_raman.dir/thermochemistry.cpp.o.d"
  "CMakeFiles/swraman_raman.dir/vibrations.cpp.o"
  "CMakeFiles/swraman_raman.dir/vibrations.cpp.o.d"
  "libswraman_raman.a"
  "libswraman_raman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_raman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
