file(REMOVE_RECURSE
  "libswraman_raman.a"
)
