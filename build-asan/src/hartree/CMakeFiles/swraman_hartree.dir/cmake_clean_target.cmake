file(REMOVE_RECURSE
  "libswraman_hartree.a"
)
