file(REMOVE_RECURSE
  "CMakeFiles/swraman_hartree.dir/ewald.cpp.o"
  "CMakeFiles/swraman_hartree.dir/ewald.cpp.o.d"
  "CMakeFiles/swraman_hartree.dir/multipole.cpp.o"
  "CMakeFiles/swraman_hartree.dir/multipole.cpp.o.d"
  "libswraman_hartree.a"
  "libswraman_hartree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_hartree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
