# Empty dependencies file for swraman_hartree.
# This may be replaced when dependencies are built.
