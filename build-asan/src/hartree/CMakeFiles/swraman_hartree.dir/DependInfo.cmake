
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hartree/ewald.cpp" "src/hartree/CMakeFiles/swraman_hartree.dir/ewald.cpp.o" "gcc" "src/hartree/CMakeFiles/swraman_hartree.dir/ewald.cpp.o.d"
  "/root/repo/src/hartree/multipole.cpp" "src/hartree/CMakeFiles/swraman_hartree.dir/multipole.cpp.o" "gcc" "src/hartree/CMakeFiles/swraman_hartree.dir/multipole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/grid/CMakeFiles/swraman_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/swraman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
