
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/elements.cpp" "src/common/CMakeFiles/swraman_common.dir/elements.cpp.o" "gcc" "src/common/CMakeFiles/swraman_common.dir/elements.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/swraman_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/swraman_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/quadrature.cpp" "src/common/CMakeFiles/swraman_common.dir/quadrature.cpp.o" "gcc" "src/common/CMakeFiles/swraman_common.dir/quadrature.cpp.o.d"
  "/root/repo/src/common/radial_mesh.cpp" "src/common/CMakeFiles/swraman_common.dir/radial_mesh.cpp.o" "gcc" "src/common/CMakeFiles/swraman_common.dir/radial_mesh.cpp.o.d"
  "/root/repo/src/common/spline.cpp" "src/common/CMakeFiles/swraman_common.dir/spline.cpp.o" "gcc" "src/common/CMakeFiles/swraman_common.dir/spline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
