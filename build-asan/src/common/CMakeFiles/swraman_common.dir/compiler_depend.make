# Empty compiler generated dependencies file for swraman_common.
# This may be replaced when dependencies are built.
