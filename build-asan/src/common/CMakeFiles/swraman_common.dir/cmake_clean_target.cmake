file(REMOVE_RECURSE
  "libswraman_common.a"
)
