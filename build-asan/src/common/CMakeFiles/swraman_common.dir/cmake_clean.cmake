file(REMOVE_RECURSE
  "CMakeFiles/swraman_common.dir/elements.cpp.o"
  "CMakeFiles/swraman_common.dir/elements.cpp.o.d"
  "CMakeFiles/swraman_common.dir/logging.cpp.o"
  "CMakeFiles/swraman_common.dir/logging.cpp.o.d"
  "CMakeFiles/swraman_common.dir/quadrature.cpp.o"
  "CMakeFiles/swraman_common.dir/quadrature.cpp.o.d"
  "CMakeFiles/swraman_common.dir/radial_mesh.cpp.o"
  "CMakeFiles/swraman_common.dir/radial_mesh.cpp.o.d"
  "CMakeFiles/swraman_common.dir/spline.cpp.o"
  "CMakeFiles/swraman_common.dir/spline.cpp.o.d"
  "libswraman_common.a"
  "libswraman_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
