file(REMOVE_RECURSE
  "libswraman_dfpt.a"
)
