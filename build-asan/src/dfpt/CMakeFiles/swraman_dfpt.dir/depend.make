# Empty dependencies file for swraman_dfpt.
# This may be replaced when dependencies are built.
