file(REMOVE_RECURSE
  "CMakeFiles/swraman_dfpt.dir/dfpt_engine.cpp.o"
  "CMakeFiles/swraman_dfpt.dir/dfpt_engine.cpp.o.d"
  "libswraman_dfpt.a"
  "libswraman_dfpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swraman_dfpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
