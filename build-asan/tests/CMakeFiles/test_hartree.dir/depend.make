# Empty dependencies file for test_hartree.
# This may be replaced when dependencies are built.
