file(REMOVE_RECURSE
  "CMakeFiles/test_hartree.dir/hartree/test_ewald.cpp.o"
  "CMakeFiles/test_hartree.dir/hartree/test_ewald.cpp.o.d"
  "CMakeFiles/test_hartree.dir/hartree/test_multipole.cpp.o"
  "CMakeFiles/test_hartree.dir/hartree/test_multipole.cpp.o.d"
  "test_hartree"
  "test_hartree.pdb"
  "test_hartree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hartree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
