# Empty compiler generated dependencies file for test_raman.
# This may be replaced when dependencies are built.
