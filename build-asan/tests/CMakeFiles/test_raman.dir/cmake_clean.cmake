file(REMOVE_RECURSE
  "CMakeFiles/test_raman.dir/raman/test_raman.cpp.o"
  "CMakeFiles/test_raman.dir/raman/test_raman.cpp.o.d"
  "CMakeFiles/test_raman.dir/raman/test_relax.cpp.o"
  "CMakeFiles/test_raman.dir/raman/test_relax.cpp.o.d"
  "CMakeFiles/test_raman.dir/raman/test_thermochemistry.cpp.o"
  "CMakeFiles/test_raman.dir/raman/test_thermochemistry.cpp.o.d"
  "CMakeFiles/test_raman.dir/raman/test_vibrations.cpp.o"
  "CMakeFiles/test_raman.dir/raman/test_vibrations.cpp.o.d"
  "test_raman"
  "test_raman.pdb"
  "test_raman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
