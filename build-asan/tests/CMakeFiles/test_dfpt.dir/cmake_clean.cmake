file(REMOVE_RECURSE
  "CMakeFiles/test_dfpt.dir/dfpt/test_dfpt_engine.cpp.o"
  "CMakeFiles/test_dfpt.dir/dfpt/test_dfpt_engine.cpp.o.d"
  "test_dfpt"
  "test_dfpt.pdb"
  "test_dfpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
