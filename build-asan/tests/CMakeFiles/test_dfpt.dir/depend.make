# Empty dependencies file for test_dfpt.
# This may be replaced when dependencies are built.
