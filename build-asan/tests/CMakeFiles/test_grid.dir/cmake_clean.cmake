file(REMOVE_RECURSE
  "CMakeFiles/test_grid.dir/grid/test_angular.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_angular.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_atom_grid.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_atom_grid.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_batch.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_batch.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_loadbalance.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_loadbalance.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_ylm.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_ylm.cpp.o.d"
  "test_grid"
  "test_grid.pdb"
  "test_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
