file(REMOVE_RECURSE
  "CMakeFiles/test_robustness.dir/robustness/test_checkpoint.cpp.o"
  "CMakeFiles/test_robustness.dir/robustness/test_checkpoint.cpp.o.d"
  "CMakeFiles/test_robustness.dir/robustness/test_comm_faults.cpp.o"
  "CMakeFiles/test_robustness.dir/robustness/test_comm_faults.cpp.o.d"
  "CMakeFiles/test_robustness.dir/robustness/test_fault.cpp.o"
  "CMakeFiles/test_robustness.dir/robustness/test_fault.cpp.o.d"
  "CMakeFiles/test_robustness.dir/robustness/test_pipeline_faults.cpp.o"
  "CMakeFiles/test_robustness.dir/robustness/test_pipeline_faults.cpp.o.d"
  "test_robustness"
  "test_robustness.pdb"
  "test_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
