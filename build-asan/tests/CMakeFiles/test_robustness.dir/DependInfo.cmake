
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/robustness/test_checkpoint.cpp" "tests/CMakeFiles/test_robustness.dir/robustness/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/test_robustness.dir/robustness/test_checkpoint.cpp.o.d"
  "/root/repo/tests/robustness/test_comm_faults.cpp" "tests/CMakeFiles/test_robustness.dir/robustness/test_comm_faults.cpp.o" "gcc" "tests/CMakeFiles/test_robustness.dir/robustness/test_comm_faults.cpp.o.d"
  "/root/repo/tests/robustness/test_fault.cpp" "tests/CMakeFiles/test_robustness.dir/robustness/test_fault.cpp.o" "gcc" "tests/CMakeFiles/test_robustness.dir/robustness/test_fault.cpp.o.d"
  "/root/repo/tests/robustness/test_pipeline_faults.cpp" "tests/CMakeFiles/test_robustness.dir/robustness/test_pipeline_faults.cpp.o" "gcc" "tests/CMakeFiles/test_robustness.dir/robustness/test_pipeline_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/swraman_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/raman/CMakeFiles/swraman_raman.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/scaling/CMakeFiles/swraman_scaling.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dfpt/CMakeFiles/swraman_dfpt.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/scf/CMakeFiles/swraman_scf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/basis/CMakeFiles/swraman_basis.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/atomic/CMakeFiles/swraman_atomic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/xc/CMakeFiles/swraman_xc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sunway/CMakeFiles/swraman_sunway.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hartree/CMakeFiles/swraman_hartree.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/grid/CMakeFiles/swraman_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/parallel/CMakeFiles/swraman_parallel.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simd/CMakeFiles/swraman_simd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/linalg/CMakeFiles/swraman_linalg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/robustness/CMakeFiles/swraman_robustness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/swraman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
