file(REMOVE_RECURSE
  "CMakeFiles/test_sunway.dir/sunway/test_arch.cpp.o"
  "CMakeFiles/test_sunway.dir/sunway/test_arch.cpp.o.d"
  "CMakeFiles/test_sunway.dir/sunway/test_double_buffer.cpp.o"
  "CMakeFiles/test_sunway.dir/sunway/test_double_buffer.cpp.o.d"
  "CMakeFiles/test_sunway.dir/sunway/test_kernels.cpp.o"
  "CMakeFiles/test_sunway.dir/sunway/test_kernels.cpp.o.d"
  "CMakeFiles/test_sunway.dir/sunway/test_ldm_cost.cpp.o"
  "CMakeFiles/test_sunway.dir/sunway/test_ldm_cost.cpp.o.d"
  "CMakeFiles/test_sunway.dir/sunway/test_rma_reduce.cpp.o"
  "CMakeFiles/test_sunway.dir/sunway/test_rma_reduce.cpp.o.d"
  "test_sunway"
  "test_sunway.pdb"
  "test_sunway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sunway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
