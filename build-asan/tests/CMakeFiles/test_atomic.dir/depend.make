# Empty dependencies file for test_atomic.
# This may be replaced when dependencies are built.
