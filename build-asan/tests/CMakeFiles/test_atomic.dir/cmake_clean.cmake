file(REMOVE_RECURSE
  "CMakeFiles/test_atomic.dir/atomic/test_atom_solver.cpp.o"
  "CMakeFiles/test_atomic.dir/atomic/test_atom_solver.cpp.o.d"
  "CMakeFiles/test_atomic.dir/atomic/test_pseudo.cpp.o"
  "CMakeFiles/test_atomic.dir/atomic/test_pseudo.cpp.o.d"
  "CMakeFiles/test_atomic.dir/atomic/test_radial_solver.cpp.o"
  "CMakeFiles/test_atomic.dir/atomic/test_radial_solver.cpp.o.d"
  "test_atomic"
  "test_atomic.pdb"
  "test_atomic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
