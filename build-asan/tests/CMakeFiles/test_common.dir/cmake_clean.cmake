file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_elements.cpp.o"
  "CMakeFiles/test_common.dir/common/test_elements.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_logging.cpp.o"
  "CMakeFiles/test_common.dir/common/test_logging.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_quadrature.cpp.o"
  "CMakeFiles/test_common.dir/common/test_quadrature.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_radial_mesh.cpp.o"
  "CMakeFiles/test_common.dir/common/test_radial_mesh.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_spline.cpp.o"
  "CMakeFiles/test_common.dir/common/test_spline.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_vec3.cpp.o"
  "CMakeFiles/test_common.dir/common/test_vec3.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
