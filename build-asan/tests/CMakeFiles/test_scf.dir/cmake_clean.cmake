file(REMOVE_RECURSE
  "CMakeFiles/test_scf.dir/scf/test_analysis.cpp.o"
  "CMakeFiles/test_scf.dir/scf/test_analysis.cpp.o.d"
  "CMakeFiles/test_scf.dir/scf/test_invariance.cpp.o"
  "CMakeFiles/test_scf.dir/scf/test_invariance.cpp.o.d"
  "CMakeFiles/test_scf.dir/scf/test_parallel_scf.cpp.o"
  "CMakeFiles/test_scf.dir/scf/test_parallel_scf.cpp.o.d"
  "CMakeFiles/test_scf.dir/scf/test_pseudized.cpp.o"
  "CMakeFiles/test_scf.dir/scf/test_pseudized.cpp.o.d"
  "CMakeFiles/test_scf.dir/scf/test_scf_engine.cpp.o"
  "CMakeFiles/test_scf.dir/scf/test_scf_engine.cpp.o.d"
  "test_scf"
  "test_scf.pdb"
  "test_scf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
