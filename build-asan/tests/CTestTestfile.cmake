# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_common[1]_include.cmake")
include("/root/repo/build-asan/tests/test_grid[1]_include.cmake")
include("/root/repo/build-asan/tests/test_linalg[1]_include.cmake")
include("/root/repo/build-asan/tests/test_simd[1]_include.cmake")
include("/root/repo/build-asan/tests/test_xc[1]_include.cmake")
include("/root/repo/build-asan/tests/test_scf[1]_include.cmake")
include("/root/repo/build-asan/tests/test_dfpt[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core[1]_include.cmake")
include("/root/repo/build-asan/tests/test_scaling[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sunway[1]_include.cmake")
include("/root/repo/build-asan/tests/test_parallel[1]_include.cmake")
include("/root/repo/build-asan/tests/test_robustness[1]_include.cmake")
include("/root/repo/build-asan/tests/test_raman[1]_include.cmake")
include("/root/repo/build-asan/tests/test_hartree[1]_include.cmake")
include("/root/repo/build-asan/tests/test_basis[1]_include.cmake")
include("/root/repo/build-asan/tests/test_atomic[1]_include.cmake")
